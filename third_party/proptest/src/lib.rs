//! Vendored minimal re-implementation of the subset of `proptest` this
//! workspace uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`Just`], `any`,
//! `collection::vec`, `prop_oneof!`, `prop_assert!` / `prop_assert_eq!`,
//! and the [`proptest!`] test macro with `ProptestConfig::with_cases`.
//!
//! Cases are sampled from a deterministic per-test RNG (no shrinking): a
//! failing case panics with its case index, which reproduces exactly on
//! re-run since seeding is fixed.

/// A failed test-case assertion (the `Err` type of a property body).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic case RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x6a09_e667_f3bc_c909 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound == 1 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (what `prop_oneof!` unions over).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// Uniform choice among equally-typed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].sample(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Whole-domain strategy for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — sample `T` uniformly over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec`]: an exact count or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange { lo: exact, hi: exact + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    use super::ProptestConfig;

    /// Drives the per-test case loop (no shrinking).
    pub struct Runner {
        cases: u32,
        seed: u64,
    }

    impl Runner {
        pub fn new(config: ProptestConfig, test_name: &str) -> Runner {
            // Stable per-test seed: FNV-1a of the test path.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Runner { cases: config.cases, seed }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        pub fn rng_for(&self, case: u32) -> super::TestRng {
            super::TestRng::new(self.seed ^ (u64::from(case) << 32) ^ u64::from(case))
        }
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let runner =
                    $crate::test_runner::Runner::new(config, concat!(module_path!(), "::", stringify!($name)));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $(let $p = $crate::Strategy::sample(&($s), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of {} failed: {}",
                            case + 1,
                            runner.cases(),
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The convenience prelude mirrored from upstream.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_within_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..500 {
            let x = crate::Strategy::sample(&(3u32..9), &mut rng);
            assert!((3..9).contains(&x));
            let v = crate::Strategy::sample(&collection::vec(0usize..4, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 4));
        }
    }

    #[test]
    fn map_flat_map_and_oneof_compose() {
        let mut rng = crate::TestRng::new(2);
        let s = (1u64..5)
            .prop_flat_map(|n| (Just(n), collection::vec(0u64..10, n as usize)))
            .prop_map(|(n, v)| (n, v.len()));
        for _ in 0..200 {
            let (n, len) = crate::Strategy::sample(&s, &mut rng);
            assert_eq!(n as usize, len);
        }
        let choice = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[crate::Strategy::sample(&choice, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_passing_tests(x in 0u32..100, (a, b) in (0u8..4, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert_eq!(a < 4, true, "a = {}", a);
            if b {
                return Ok(());
            }
            prop_assert!(!b);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        always_fails();
    }
}
