//! Vendored minimal re-implementation of the subset of `criterion` this
//! workspace's benches use: [`Criterion::benchmark_group`], per-group
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_with_input`
//! with [`BenchmarkId`], [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros. Reports the median wall-clock time per
//! sample to stdout — no statistics engine, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus a
/// parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        // Warm-up: run single iterations until the warm-up budget is spent,
        // which also calibrates how many iterations fit in one sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_elapsed = Duration::ZERO;
        while warm_elapsed < self.warm_up_time {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 1 };
            f(&mut b, input);
            warm_elapsed = warm_start.elapsed();
            warm_iters += 1;
        }

        let per_iter = warm_elapsed.checked_div(warm_iters.max(1) as u32).unwrap_or_default();
        let budget_per_sample =
            self.measurement_time.checked_div(self.sample_size as u32).unwrap_or_default();
        let iters_per_sample = if per_iter.is_zero() {
            1
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128)
                as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: iters_per_sample };
            f(&mut b, input);
            samples.push(b.elapsed.checked_div(iters_per_sample as u32).unwrap_or_default());
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "{}/{}: median {:?}/iter over {} samples x {} iters",
            self.name, id, median, self.sample_size, iters_per_sample
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(500),
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_samples_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("add", 7), &7u64, |b, &n| {
            calls += 1;
            b.iter(|| black_box(n) + 1);
        });
        group.finish();
        assert!(calls >= 3, "benchmark closure ran {calls} times");
    }

    fn bench_noop(c: &mut Criterion) {
        let mut g = c.benchmark_group("noop");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        g.bench_with_input(BenchmarkId::new("id", "x"), &(), |b, _| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(smoke_group, bench_noop);

    #[test]
    fn criterion_group_macro_produces_runner() {
        smoke_group();
    }
}
