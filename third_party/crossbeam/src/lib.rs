//! Vendored minimal re-implementation of the subset of `crossbeam` this
//! workspace uses: unbounded MPSC channels. Delegates to `std::sync::mpsc`,
//! whose unbounded-channel semantics (FIFO per sender, disconnect on last
//! sender/receiver drop, `recv_timeout`) match crossbeam's for the covered
//! surface.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel. Cloneable; the channel
    /// disconnects when every sender is dropped.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_preserves_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap()).join().unwrap();
        tx.send(8).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 8]);
    }

    #[test]
    fn recv_timeout_times_out_then_disconnects() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
