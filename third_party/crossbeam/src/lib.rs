//! Vendored minimal re-implementation of the subset of `crossbeam` this
//! workspace uses: unbounded and bounded MPSC channels. Delegates to
//! `std::sync::mpsc` (`channel` / `sync_channel`), whose semantics (FIFO per
//! sender, disconnect on last sender/receiver drop, `recv_timeout`, blocking
//! `send` on a full bounded channel) match crossbeam's for the covered
//! surface.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderKind<T> {
        fn clone(&self) -> Self {
            match self {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel. Cloneable; the channel disconnects
    /// when every sender is dropped. For bounded channels `send` blocks
    /// while the queue is full and `try_send` fails fast.
    pub struct Sender<T> {
        inner: SenderKind<T>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderKind::Unbounded(tx) => tx.send(msg),
                SenderKind::Bounded(tx) => tx.send(msg),
            }
        }

        /// Non-blocking send: `Err(TrySendError::Full)` when a bounded
        /// channel is at capacity (unbounded channels never report full).
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                SenderKind::Unbounded(tx) => {
                    tx.send(msg).map_err(|SendError(m)| TrySendError::Disconnected(m))
                }
                SenderKind::Bounded(tx) => tx.try_send(msg),
            }
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: SenderKind::Unbounded(tx) }, Receiver { inner: rx })
    }

    /// Create a bounded channel holding at most `cap` queued messages.
    /// `send` blocks while full; `try_send` returns `TrySendError::Full`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: SenderKind::Bounded(tx) }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TrySendError};
    use std::time::Duration;

    #[test]
    fn send_recv_preserves_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap()).join().unwrap();
        tx.send(8).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 8]);
    }

    #[test]
    fn recv_timeout_times_out_then_disconnects() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_try_send_reports_full_until_drained() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn bounded_blocking_send_waits_for_capacity() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let writer = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        writer.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn unbounded_try_send_never_full() {
        let (tx, rx) = unbounded();
        for i in 0..1000 {
            tx.try_send(i).unwrap();
        }
        drop(rx);
        assert!(matches!(tx.try_send(0), Err(TrySendError::Disconnected(0))));
    }
}
