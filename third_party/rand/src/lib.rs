//! Vendored minimal re-implementation of the subset of `rand` 0.8 this
//! workspace uses: a seedable [`rngs::StdRng`], the [`Rng`] extension
//! methods (`gen`, `gen_bool`, `gen_range`) and [`seq::SliceRandom`]
//! shuffling. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic for a given seed, which is all the workspace relies on
//! (seeded dataset generation and seeded fault schedules); the exact
//! stream differs from upstream `StdRng`, which no test depends on.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution in upstream terms).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Types with a uniform sampler over an arbitrary sub-range. The generic
/// `SampleRange` impls below link a range's element type to `gen_range`'s
/// return type, so literal ranges infer their type from context exactly
/// like upstream (`x_f32 + rng.gen_range(-0.1..0.1)` samples `f32`).
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range in gen_range");
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Unbiased uniform draw from `[0, span)` via rejection sampling.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide < zone {
            return wide % span;
        }
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — the workspace's deterministic
    /// standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling/selection, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
