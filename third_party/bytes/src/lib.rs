//! Vendored minimal re-implementation of the subset of the `bytes` crate
//! this workspace uses: [`Bytes`] (cheaply cloneable immutable buffer),
//! [`BytesMut`] (growable buffer), and the [`Buf`]/[`BufMut`] read/write
//! traits with little-endian accessors. Semantics match the upstream crate
//! for the covered surface; anything outside it is intentionally absent so
//! accidental reliance fails loudly at compile time.

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer with a read
/// cursor (consuming reads advance `start`).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wrap a static byte slice (copied; upstream borrows, but the
    /// observable behavior is identical for this workspace).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Remaining length of the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-range view (relative to the current cursor).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer; freeze it into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut { vec: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> BytesMut {
        BytesMut { vec: data.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

/// Read side: consuming accessors over a byte source. All multi-byte
/// accessors used by this workspace are little-endian.
///
/// # Panics
/// Like upstream `bytes`, reading past the end panics; callers bound their
/// reads with [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write side: appending accessors. Little-endian like [`Buf`].
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }

    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    fn put_f32_le(&mut self, n: f32) {
        self.put_u32_le(n.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_accessors() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(0xbeef);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(2.5);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xbeef);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), u64::MAX - 3);
        assert_eq!(b.get_f32_le(), 2.5);
        let mut rest = [0u8; 3];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    fn bytes_clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn cursor_advances_relative_to_slice() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.remaining(), 2);
        let s = b.slice(0..1);
        assert_eq!(&s[..], &[8]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn read_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
