//! Distributed-vs-centralized demonstration on a larger synthetic network:
//! scaling with the number of machines, per-machine load balance
//! (Theorem 6), and the communication contrast against the BSP baseline.
//!
//! ```text
//! cargo run --release --example distributed_cluster
//! ```

use std::time::Instant;

use disks::baseline::{bsp_sgkq, CentralizedEngine};
use disks::prelude::*;

fn main() {
    let cfg = GridNetworkConfig {
        width: 80,
        height: 80,
        vocab_size: 300,
        ..GridNetworkConfig::small(2024)
    };
    let net = cfg.generate();
    println!(
        "network: {} nodes ({} objects), {} edges",
        net.num_nodes(),
        net.num_objects(),
        net.num_edges()
    );
    let e = net.avg_edge_weight();
    let max_r = 40 * e;

    // A frequency-biased query: the 5 most frequent keywords within 10ē.
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    let keywords: Vec<KeywordId> = ranked.iter().take(5).map(|&k| KeywordId(k as u32)).collect();
    let query = SgkQuery::new(keywords, 10 * e);

    let mut centralized = CentralizedEngine::new(&net);
    let (expect, central_time) = centralized.run_sgkq(&query).expect("centralized");
    println!("\ncentralized (no index, 1 machine): {central_time:?}, {} results", expect.len());

    println!("\nmachines  index-build  slowest-task  modeled-response  U     speedup");
    for k in [2usize, 4, 8, 16] {
        let partitioning = MultilevelPartitioner::default().partition(&net, k);
        let t0 = Instant::now();
        let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::with_max_r(max_r));
        let build = t0.elapsed();
        let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());
        let outcome = cluster.run_sgkq(&query).expect("query");
        assert_eq!(outcome.results, expect, "distributed must equal centralized");
        let speedup =
            central_time.as_secs_f64() / outcome.stats.slowest_task.as_secs_f64().max(1e-9);
        println!(
            "{k:>8}  {build:>11.2?}  {:>12.2?}  {:>16.2?}  {:<5.2} {speedup:>6.1}x",
            outcome.stats.slowest_task,
            outcome.stats.modeled_response_time,
            outcome.stats.unbalance_factor,
        );
        cluster.shutdown();
    }

    // Communication contrast with the Pregel-style BSP baseline (§2.3).
    let partitioning = MultilevelPartitioner::default().partition(&net, 8);
    let (bsp_nodes, bsp_run) = bsp_sgkq(&net, &partitioning, &query.keywords, query.radius);
    assert_eq!(bsp_nodes, expect);
    println!(
        "\nBSP baseline on 8 fragments: {} supersteps, {} inter-fragment messages \
         ({} bytes) — the NPD-index needs 1 round and 0 inter-worker bytes.",
        bsp_run.supersteps, bsp_run.inter_fragment_messages, bsp_run.inter_fragment_bytes
    );
}
