//! Future-work extension from the paper's conclusion: *"it would be
//! interesting to extend our method to handle other types of graphs such as
//! relational database graphs and social networks."*
//!
//! ```text
//! cargo run --release -p disks --example social_network
//! ```
//!
//! The NPD-index only needs a positive-weight labelled graph, so it applies
//! unchanged to a small-world "who-talks-to-whom" graph where edge weights
//! are interaction distances and labels are user interests. This example
//! runs a group-keyword query ("nodes within distance r of users interested
//! in every one of these topics") distributed over 4 partitions and checks
//! it against the centralized evaluation.

use disks::prelude::*;
use disks::roadnet::generator::SmallWorldConfig;

fn main() {
    let net = SmallWorldConfig { nodes: 2000, vocab_size: 60, ..Default::default() }.generate();
    println!(
        "small-world graph: {} nodes ({} labelled), {} edges, avg degree {:.1}",
        net.num_nodes(),
        net.num_objects(),
        net.num_edges(),
        2.0 * net.num_edges() as f64 / net.num_nodes() as f64
    );

    // Partition by topology (coordinates are synthetic here, so use the
    // region-growing partitioner rather than the geometric one).
    let partitioning = BfsPartitioner::default().partition(&net, 4);
    println!(
        "partitioning: 4 fragments, {} cut edges ({}% — small-world graphs cut badly!)",
        partitioning.cut_edges(),
        100 * partitioning.cut_edges() / net.num_edges()
    );

    let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::unbounded());
    for idx in &indexes {
        let s = idx.stats();
        println!(
            "  {}: |SC|={} DL pairs={} ({} bytes)",
            s.fragment, s.shortcuts, s.dl_pairs, s.encoded_bytes
        );
    }
    let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());

    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    let topics: Vec<KeywordId> = ranked.iter().take(2).map(|&k| KeywordId(k as u32)).collect();
    let query = SgkQuery::new(topics.clone(), 6);
    let outcome = cluster.run_sgkq(&query).expect("query");
    println!(
        "\nnodes within 6 of users interested in each of {:?}: {} results \
         (1 round, {} inter-worker bytes)",
        topics.iter().map(|&k| net.vocab().word(k).unwrap_or("?")).collect::<Vec<_>>(),
        outcome.results.len(),
        outcome.stats.inter_worker_bytes
    );

    let mut central = disks::core::CentralizedCoverage::new(&net);
    assert_eq!(outcome.results, central.sgkq(&query).expect("centralized"));
    println!("centralized cross-check: OK");
    cluster.shutdown();
}
