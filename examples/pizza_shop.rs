//! Paper query Q2 — competitive site selection with a *subtraction*
//! D-function: *"open a new pizza shop in a shopping mall that must be at
//! least 1 km away from any existing pizza shop."*
//!
//! ```text
//! cargo run --release --example pizza_shop
//! ```
//!
//! Lowered per §3.1 to `R("shopping mall", 0) − R("pizza shop", 1 km)`.

use disks::demo::demo_city;
use disks::prelude::*;

fn main() {
    let (net, names) = demo_city();
    let partitioning = MultilevelPartitioner::default().partition(&net, 2);
    let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::unbounded());
    let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());

    let mall = net.vocab().get("shopping mall").expect("keyword");
    let pizza = net.vocab().get("pizza").expect("keyword");
    let query = QClassQuery::near_but_far(mall, pizza, 1000);
    println!("Q2 as a D-function: {}", query.to_dfunction());

    let outcome = cluster.run_qclass(&query).expect("query");
    let poi_name = |n: NodeId| {
        names
            .iter()
            .find(|&(_, &v)| v == n)
            .map(|(k, _)| (*k).to_string())
            .unwrap_or_else(|| format!("junction {n}"))
    };
    println!("\nmalls at least 1 km from every pizza shop ({}):", outcome.results.len());
    for &node in &outcome.results {
        println!("  - {}", poi_name(node));
    }

    // Show the rejected malls and why.
    let mut central = disks::core::CentralizedCoverage::new(&net);
    let all_malls = net.nodes_with_keyword(mall).to_vec();
    let pizza_table = central.distance_table(disks::core::Term::Keyword(pizza));
    println!("\nall malls with their distance to the nearest pizza shop:");
    for m in all_malls {
        let d = pizza_table.get(&m).copied().unwrap_or(u64::MAX);
        let verdict = if outcome.results.contains(&m) { "OK" } else { "too close" };
        println!("  - {:<10} d(pizza) = {:>5} m  [{verdict}]", poi_name(m), d);
    }

    assert_eq!(outcome.results, central.qclass(&query).expect("centralized"));
    println!("\ncentralized cross-check: OK");
    cluster.shutdown();
}
