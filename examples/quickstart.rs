//! Quickstart: the full DISKS pipeline on a synthetic road network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Steps: generate a network → partition it → build the NPD-index per
//! fragment → start the share-nothing cluster → run an SGKQ → inspect the
//! communication and load-balance statistics.

use disks::prelude::*;

fn main() {
    // 1. A synthetic road network (substitute for an OSM extract).
    let net = GridNetworkConfig::small(7).generate();
    println!(
        "network: {} nodes ({} objects), {} edges, {} keywords",
        net.num_nodes(),
        net.num_objects(),
        net.num_edges(),
        net.vocab().len()
    );

    // 2. Partition into 4 fragments — one per simulated machine.
    let partitioning = MultilevelPartitioner::default().partition(&net, 4);
    println!(
        "partitioning: {} fragments, {} cut edges, balance {:.3}",
        partitioning.num_fragments(),
        partitioning.cut_edges(),
        partitioning.balance()
    );

    // 3. Build the NPD-index for every fragment (maxR = 40·ē, §3.7).
    let max_r = 40 * net.avg_edge_weight();
    let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::with_max_r(max_r));
    for idx in &indexes {
        let s = idx.stats();
        println!(
            "  {}: |SC|={} DL entries={} distances={} ({} bytes)",
            s.fragment, s.shortcuts, s.dl_entries, s.distances_recorded, s.encoded_bytes
        );
    }

    // 4. Start the cluster and query it.
    let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    let keywords: Vec<KeywordId> = ranked.iter().take(2).map(|&k| KeywordId(k as u32)).collect();
    let query = SgkQuery::new(keywords.clone(), max_r / 4);
    println!(
        "\nSGKQ: nodes within {} of all of {:?}",
        query.radius,
        keywords.iter().map(|&k| net.vocab().word(k).unwrap_or("?")).collect::<Vec<_>>()
    );

    let outcome = cluster.run_sgkq(&query).expect("query");
    println!("results: {} nodes", outcome.results.len());
    println!("  wall time             : {:?}", outcome.stats.wall_time);
    println!("  slowest task          : {:?}", outcome.stats.slowest_task);
    println!("  modeled response      : {:?}", outcome.stats.modeled_response_time);
    println!("  unbalance factor U    : {:.2}", outcome.stats.unbalance_factor);
    println!("  coordinator→worker    : {} bytes", outcome.stats.coordinator_to_worker_bytes);
    println!("  worker→coordinator    : {} bytes", outcome.stats.worker_to_coordinator_bytes);
    println!(
        "  inter-worker          : {} bytes (Theorem 3: always zero)",
        outcome.stats.inter_worker_bytes
    );

    // 5. Cross-check against the centralized ground truth.
    let mut central = disks::core::CentralizedCoverage::new(&net);
    let expect = central.sgkq(&query).expect("centralized");
    assert_eq!(outcome.results, expect, "distributed result must equal centralized");
    println!("\ncentralized cross-check: OK ({} nodes)", expect.len());

    cluster.shutdown();
}
