//! Paper query Q3 — a Range Keyword Query: *"find a restaurant offering
//! both seafood and Chinese food within 500 meters from my hotel."*
//!
//! ```text
//! cargo run --release --example tourist_rkq
//! ```
//!
//! Lowered per §3.1 (Example 2): the hotel's node id becomes a term with
//! radius r; each keyword gets radius 0 to force containment:
//! `R(hotel, r) ∩ R(restaurant, 0) ∩ R(seafood, 0) ∩ R(chinese food, 0)`.

use disks::demo::demo_city;
use disks::prelude::*;

fn main() {
    let (net, names) = demo_city();
    let partitioning = MultilevelPartitioner::default().partition(&net, 2);
    let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::unbounded());
    let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());

    let hotel = names["hotel"];
    let keywords = vec![
        net.vocab().get("restaurant").expect("keyword"),
        net.vocab().get("seafood").expect("keyword"),
        net.vocab().get("chinese food").expect("keyword"),
    ];
    let poi_name = |n: NodeId| {
        names
            .iter()
            .find(|&(_, &v)| v == n)
            .map(|(k, _)| (*k).to_string())
            .unwrap_or_else(|| format!("junction {n}"))
    };

    for radius in [500u64, 600, 1500] {
        let query = RangeKeywordQuery::new(hotel, keywords.clone(), radius);
        println!("Q3 with r = {radius} m: {}", query.to_dfunction());
        let outcome = cluster.run_rkq(&query).expect("query");
        if outcome.results.is_empty() {
            println!("  no seafood+chinese restaurant within {radius} m — widen the search\n");
        } else {
            for &node in &outcome.results {
                println!("  - {}", poi_name(node));
            }
            println!();
        }
        let mut central = disks::core::CentralizedCoverage::new(&net);
        assert_eq!(outcome.results, central.rkq(&query).expect("centralized"));
    }

    println!("all radii cross-checked against the centralized evaluation: OK");
    cluster.shutdown();
}
