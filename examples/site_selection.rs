//! Paper query Q1 — site selection for a real-estate agent:
//! *"locate sites that are close (within 1 km) to daily facilities such as a
//! supermarket, a gym and a hospital."*
//!
//! ```text
//! cargo run --release --example site_selection
//! ```
//!
//! The SGKQ is evaluated distributedly over the demo city split across two
//! machines, with zero inter-worker communication.

use disks::demo::demo_city;
use disks::prelude::*;

fn main() {
    let (net, names) = demo_city();
    println!("demo city: {} nodes, {} edges", net.num_nodes(), net.num_edges());

    let partitioning = MultilevelPartitioner::default().partition(&net, 2);
    let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::unbounded());
    let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());

    let keywords = vec![
        net.vocab().get("supermarket").expect("keyword"),
        net.vocab().get("gym").expect("keyword"),
        net.vocab().get("hospital").expect("keyword"),
    ];
    let radius = 1000; // 1 km
    let query = SgkQuery::new(keywords, radius);
    let outcome = cluster.run_sgkq(&query).expect("query");

    println!(
        "\nQ1: sites within {radius} m of a supermarket, a gym and a hospital ({} found):",
        outcome.results.len()
    );
    let poi_name = |n: NodeId| {
        names
            .iter()
            .find(|&(_, &v)| v == n)
            .map(|(k, _)| (*k).to_string())
            .unwrap_or_else(|| format!("junction {n}"))
    };
    for &node in &outcome.results {
        println!("  - {}", poi_name(node));
    }
    println!(
        "\ninter-worker communication: {} bytes (one round, Theorem 3)",
        outcome.stats.inter_worker_bytes
    );

    // Cross-check against the centralized evaluation.
    let mut central = disks::core::CentralizedCoverage::new(&net);
    assert_eq!(outcome.results, central.sgkq(&query).expect("centralized"));
    println!("centralized cross-check: OK");

    cluster.shutdown();
}
