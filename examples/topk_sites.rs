//! Top-k ranked site selection — the extension answering the paper's open
//! question (§8: "it remains open whether other types of queries can
//! benefit from NPD-index").
//!
//! ```text
//! cargo run --release -p disks --example topk_sites
//! ```
//!
//! Instead of a fixed radius (Q1's "within 1 km of a supermarket, a gym and
//! a hospital"), rank every site by how *compactly* it reaches all three
//! facility types and return the 5 best — per fragment, using exactly the
//! NPD-index distance machinery, with a k-way coordinator merge.

use disks::core::{centralized_topk, ScoreCombine, TopKQuery};
use disks::demo::demo_city;
use disks::prelude::*;

fn main() {
    let (net, names) = demo_city();
    let partitioning = MultilevelPartitioner::default().partition(&net, 2);
    let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::unbounded());
    let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());

    let keywords = vec![
        net.vocab().get("supermarket").expect("keyword"),
        net.vocab().get("gym").expect("keyword"),
        net.vocab().get("hospital").expect("keyword"),
    ];
    let poi_name = |n: NodeId| {
        names
            .iter()
            .find(|&(_, &v)| v == n)
            .map(|(k, _)| (*k).to_string())
            .unwrap_or_else(|| format!("junction {n}"))
    };

    for (combine, label) in [
        (ScoreCombine::Max, "max distance to any facility (ranked SGKQ)"),
        (ScoreCombine::Sum, "total distance to all facilities (collective)"),
    ] {
        let q = TopKQuery::new(keywords.clone(), 5, 5_000, combine);
        let (ranked, stats) = cluster.run_topk(&q).expect("topk");
        println!("top-5 sites by {label}:");
        for (i, &(score, node)) in ranked.iter().enumerate() {
            println!("  {}. {:<12} score = {:>5} m", i + 1, poi_name(node), score);
        }
        println!("  (1 round, {} inter-worker bytes)\n", stats.inter_worker_bytes);
        assert_eq!(ranked, centralized_topk(&net, &q).expect("centralized"));
    }
    println!("centralized cross-checks: OK");
    cluster.shutdown();
}
