//! Property-based tests: the distributed NPD-index evaluation must equal
//! the centralized ground truth on *arbitrary* connected graphs, *arbitrary*
//! (even non-contiguous) fragment assignments, and arbitrary D-functions.

use proptest::prelude::*;

use disks::core::{
    build_all_indexes, CentralizedCoverage, DFunction, DlScope, FragmentEngine, IndexConfig, SetOp,
    Term,
};
use disks::partition::Partitioning;
use disks::roadnet::{KeywordId, NodeId, RoadNetwork, RoadNetworkBuilder};

const VOCAB: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];

/// A random connected road network: spanning tree + extra edges.
#[derive(Debug, Clone)]
struct ArbNet {
    net: RoadNetwork,
}

fn arb_network() -> impl Strategy<Value = ArbNet> {
    (4usize..28)
        .prop_flat_map(|n| {
            let tree = proptest::collection::vec((any::<u32>(), 1u32..15), n - 1);
            let extra = proptest::collection::vec((any::<u32>(), any::<u32>(), 1u32..15), 0..n);
            let kws =
                proptest::collection::vec(proptest::collection::vec(0usize..VOCAB.len(), 0..3), n);
            (Just(n), tree, extra, kws)
        })
        .prop_map(|(n, tree, extra, kws)| {
            let mut b = RoadNetworkBuilder::new();
            for w in &VOCAB {
                b.vocab_mut().intern(w);
            }
            let mut nodes = Vec::with_capacity(n);
            for (i, kw) in kws.iter().enumerate() {
                let ids: Vec<KeywordId> = kw.iter().map(|&k| KeywordId(k as u32)).collect();
                nodes.push(b.add_node_with_ids(i as f32, (i % 5) as f32, ids));
            }
            for (i, &(pick, w)) in tree.iter().enumerate() {
                let child = nodes[i + 1];
                let parent = nodes[(pick as usize) % (i + 1)];
                b.add_edge(child, parent, w).expect("tree edge");
            }
            for &(x, y, w) in &extra {
                let a = nodes[(x as usize) % n];
                let c = nodes[(y as usize) % n];
                if a != c {
                    b.add_edge(a, c, w).expect("extra edge");
                }
            }
            ArbNet { net: b.build().expect("build") }
        })
}

fn arb_dfunction() -> impl Strategy<Value = DFunction> {
    let term =
        (0usize..VOCAB.len(), 0u64..80).prop_map(|(k, r)| (Term::Keyword(KeywordId(k as u32)), r));
    let op = prop_oneof![Just(SetOp::Union), Just(SetOp::Intersect), Just(SetOp::Subtract)];
    (term.clone(), proptest::collection::vec((op, term), 0..4)).prop_map(|(first, rest)| {
        let mut f = DFunction::single(first.0, first.1);
        for (o, (t, r)) in rest {
            f = f.then(o, t, r);
        }
        f
    })
}

fn distributed_eval(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    cfg: &IndexConfig,
    f: &DFunction,
) -> Vec<NodeId> {
    let indexes = build_all_indexes(net, partitioning, cfg);
    let mut out = Vec::new();
    for idx in &indexes {
        let mut engine = FragmentEngine::new(net, partitioning, idx).expect("engine");
        out.extend(engine.evaluate(f).expect("within maxR").0);
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: distributed == centralized for any graph,
    /// any assignment, any D-function (unbounded index).
    #[test]
    fn distributed_equals_centralized(
        arb in arb_network(),
        f in arb_dfunction(),
        seed in any::<u64>(),
    ) {
        let net = &arb.net;
        let (assignment, k) = {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let k = rng.gen_range(1..5usize);
            ((0..net.num_nodes()).map(|_| rng.gen_range(0..k as u32)).collect::<Vec<_>>(), k)
        };
        let partitioning = Partitioning::from_assignment(net, assignment, k);
        let cfg = IndexConfig::unbounded();
        let got = distributed_eval(net, &partitioning, &cfg, &f);
        let mut central = CentralizedCoverage::new(net);
        let expect = central.evaluate(&f).unwrap();
        prop_assert_eq!(got, expect, "f = {}", f);
    }

    /// Same with a bounded maxR covering the query radii.
    #[test]
    fn bounded_index_distributed_equals_centralized(
        arb in arb_network(),
        f in arb_dfunction(),
        (assignment_seed, pad) in (any::<u64>(), 0u64..40),
    ) {
        let net = &arb.net;
        let (assignment, k) = {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(assignment_seed);
            let k = rng.gen_range(1..4usize);
            ((0..net.num_nodes()).map(|_| rng.gen_range(0..k as u32)).collect::<Vec<_>>(), k)
        };
        let partitioning = Partitioning::from_assignment(net, assignment, k);
        let max_r = f.max_radius() + pad; // any bound ≥ every radius
        let cfg = IndexConfig::with_max_r(max_r);
        let got = distributed_eval(net, &partitioning, &cfg, &f);
        let mut central = CentralizedCoverage::new(net);
        let expect = central.evaluate(&f).unwrap();
        prop_assert_eq!(got, expect, "f = {} maxR = {}", f, max_r);
    }

    /// RKQ with AllNodes scope: any node (junction or object) works as a
    /// query location.
    #[test]
    fn rkq_any_location_with_allnodes_scope(
        arb in arb_network(),
        loc_pick in any::<u32>(),
        kw in 0usize..VOCAB.len(),
        r in 0u64..60,
        assignment_seed in any::<u64>(),
    ) {
        let net = &arb.net;
        let location = NodeId(loc_pick % net.num_nodes() as u32);
        let (assignment, k) = {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(assignment_seed);
            let k = rng.gen_range(1..4usize);
            ((0..net.num_nodes()).map(|_| rng.gen_range(0..k as u32)).collect::<Vec<_>>(), k)
        };
        let partitioning = Partitioning::from_assignment(net, assignment, k);
        let q = disks::core::RangeKeywordQuery::new(location, vec![KeywordId(kw as u32)], r);
        let f = q.to_dfunction();
        let cfg = IndexConfig::unbounded().with_scope(DlScope::AllNodes);
        let got = distributed_eval(net, &partitioning, &cfg, &f);
        let mut central = CentralizedCoverage::new(net);
        prop_assert_eq!(got, central.rkq(&q).unwrap());
    }

}

/// Persistence round-trip on arbitrary graphs (plain test with its own
/// generator loop — proptest's closure restrictions make the direct form
/// clumsy for multi-crate helpers).
#[test]
fn index_persistence_round_trip_randomized() {
    use disks::core::index::{load_index, save_index};
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xABCD);
    for trial in 0..20 {
        let cfg = disks::roadnet::generator::GridNetworkConfig::tiny(trial);
        let net = cfg.generate();
        let k = rng.gen_range(1..4usize);
        let assignment: Vec<u32> =
            (0..net.num_nodes()).map(|_| rng.gen_range(0..k as u32)).collect();
        let partitioning = Partitioning::from_assignment(&net, assignment, k);
        let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::unbounded());
        let dir = std::env::temp_dir().join(format!("disks-prop-{}-{trial}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for idx in &indexes {
            let path = dir.join(format!("f{}.npd", idx.fragment().0));
            save_index(idx, &path).unwrap();
            let back = load_index(&path, idx.fragment()).unwrap();
            assert_eq!(back.shortcuts(), idx.shortcuts());
            assert_eq!(back.distances_recorded(), idx.distances_recorded());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Top-k extension: distributed merge equals the centralized ranking on
    /// arbitrary graphs and arbitrary fragment assignments.
    #[test]
    fn topk_distributed_equals_centralized(
        arb in arb_network(),
        ks in proptest::collection::vec(0usize..VOCAB.len(), 1..4),
        k in 1usize..20,
        horizon in 0u64..80,
        seed in any::<u64>(),
    ) {
        use disks::core::{centralized_topk, merge_topk, ScoreCombine, TopKQuery};
        let net = &arb.net;
        let (assignment, frags) = {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let frags = rng.gen_range(1..4usize);
            (
                (0..net.num_nodes()).map(|_| rng.gen_range(0..frags as u32)).collect::<Vec<_>>(),
                frags,
            )
        };
        let partitioning = Partitioning::from_assignment(net, assignment, frags);
        let combine = if seed.is_multiple_of(2) { ScoreCombine::Max } else { ScoreCombine::Sum };
        let keywords: Vec<KeywordId> = ks.iter().map(|&i| KeywordId(i as u32)).collect();
        let q = TopKQuery::new(keywords, k, horizon, combine);
        let indexes = build_all_indexes(net, &partitioning, &IndexConfig::unbounded());
        let lists: Vec<Vec<disks::core::Ranked>> = indexes
            .iter()
            .map(|idx| {
                let mut engine = FragmentEngine::new(net, &partitioning, idx).expect("engine");
                engine.topk_local(&q).expect("topk").0
            })
            .collect();
        let got = merge_topk(lists, q.k);
        let expect = centralized_topk(net, &q).unwrap();
        prop_assert_eq!(got, expect, "combine = {:?} horizon = {}", combine, horizon);
    }
}
