//! Cross-validation of the baselines against each other and against the
//! NPD-index runtime, plus the §2.3 communication contrast.

use disks::baseline::{bsp_keyword_coverage, bsp_sgkq, iterative_coverage, iterative_sssp};
use disks::cluster::{Cluster, ClusterConfig};
use disks::core::{build_all_indexes, CentralizedCoverage, IndexConfig, SgkQuery, Term};
use disks::partition::{MultilevelPartitioner, Partitioner};
use disks::roadnet::generator::GridNetworkConfig;
use disks::roadnet::{DijkstraWorkspace, KeywordId, NodeId, RoadNetwork, INF};

fn top_keywords(net: &RoadNetwork, n: usize) -> Vec<KeywordId> {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    ranked.into_iter().take(n).map(|k| KeywordId(k as u32)).collect()
}

#[test]
fn all_four_evaluation_paths_agree() {
    let net = GridNetworkConfig::small(700).generate();
    let e = net.avg_edge_weight();
    let k = 5;
    let partitioning = MultilevelPartitioner::default().partition(&net, k);
    let kws = top_keywords(&net, 3);
    let r = 8 * e;
    let q = SgkQuery::new(kws.clone(), r);

    // 1. Centralized ground truth.
    let mut central = CentralizedCoverage::new(&net);
    let expect = central.sgkq(&q).unwrap();

    // 2. NPD-index distributed.
    let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::with_max_r(40 * e));
    let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());
    let npd = cluster.run_sgkq(&q).unwrap();
    assert_eq!(npd.results, expect);

    // 3. BSP (Pregel-style).
    let (bsp_nodes, bsp_run) = bsp_sgkq(&net, &partitioning, &q.keywords, r);
    assert_eq!(bsp_nodes, expect);

    // 4. Iterative correcting, per keyword + intersection.
    let mut iter_result: Option<Vec<NodeId>> = None;
    for &kw in &q.keywords {
        let (nodes, _) = iterative_coverage(&net, &partitioning, kw, r);
        iter_result = Some(match iter_result {
            None => nodes,
            Some(prev) => prev.into_iter().filter(|n| nodes.contains(n)).collect(),
        });
    }
    assert_eq!(iter_result.unwrap(), expect);

    // The architectural contrast (§2.3): baselines need multiple rounds and
    // nonzero inter-fragment bytes; the NPD-index needs neither.
    assert_eq!(npd.stats.rounds, 1);
    assert_eq!(npd.stats.inter_worker_bytes, 0);
    assert!(bsp_run.supersteps > 1);
    assert!(bsp_run.inter_fragment_bytes > 0);
    cluster.shutdown();
}

#[test]
fn bsp_and_iterative_agree_on_raw_sssp() {
    let net = GridNetworkConfig::tiny(701).generate();
    let partitioning = MultilevelPartitioner::default().partition(&net, 3);
    let sources = [(0u32, 0u64), (5, 0)];
    let (bsp_dist, _) = disks::baseline::bsp_sssp(&net, &partitioning, &sources, INF - 1);
    let (iter_dist, _) = iterative_sssp(&net, &partitioning, &sources, INF - 1);
    assert_eq!(bsp_dist, iter_dist);
    let mut ws = DijkstraWorkspace::new(net.num_nodes());
    let mut reference = vec![INF; net.num_nodes()];
    ws.run(&net, &sources, INF - 1, |n, d| {
        reference[n as usize] = d;
        disks::roadnet::dijkstra::Control::Continue
    });
    assert_eq!(bsp_dist, reference);
}

#[test]
fn baseline_communication_grows_with_fragments() {
    let net = GridNetworkConfig::small(702).generate();
    let e = net.avg_edge_weight();
    let kw = top_keywords(&net, 1)[0];
    let mut previous_bytes = 0u64;
    for k in [2usize, 8] {
        let partitioning = MultilevelPartitioner::default().partition(&net, k);
        let (_, run) = bsp_keyword_coverage(&net, &partitioning, kw, 10 * e);
        assert!(
            run.inter_fragment_bytes > previous_bytes,
            "more fragments should mean more cut traffic: k={k}"
        );
        previous_bytes = run.inter_fragment_bytes;
    }
}

#[test]
fn coverage_definition_cross_check_on_all_engines() {
    // Definition 4 literal check: a node is covered iff its distance table
    // entry is ≤ r — verified against the centralized table for all three
    // distributed implementations.
    let net = GridNetworkConfig::tiny(703).generate();
    let e = net.avg_edge_weight();
    let partitioning = MultilevelPartitioner::default().partition(&net, 3);
    let kw = top_keywords(&net, 1)[0];
    let r = 6 * e;
    let mut central = CentralizedCoverage::new(&net);
    let table = central.distance_table(Term::Keyword(kw));

    let (bsp_nodes, _) = bsp_keyword_coverage(&net, &partitioning, kw, r);
    let (iter_nodes, _) = iterative_coverage(&net, &partitioning, kw, r);
    for n in net.node_ids() {
        let within = table.get(&n).is_some_and(|&d| d <= r);
        assert_eq!(bsp_nodes.contains(&n), within, "bsp node {n}");
        assert_eq!(iter_nodes.contains(&n), within, "iterative node {n}");
    }
}
