//! Theorem-shaped integration tests: each of the paper's formal claims is
//! checked computationally on generated networks.

use disks::cluster::{Cluster, ClusterConfig};
use disks::core::engine::FragmentEngine;
use disks::core::{build_all_indexes, build_index, DFunction, DlScope, IndexConfig, Term};
use disks::partition::{FragmentId, MultilevelPartitioner, Partitioner};
use disks::roadnet::dijkstra::Control;
use disks::roadnet::generator::GridNetworkConfig;
use disks::roadnet::{DijkstraWorkspace, Graph, KeywordId, NodeId, RoadNetwork, INF};

/// Theorem 1: `P ∪ SC(P)` is a complete fragment — for every pair of nodes
/// inside a fragment with global distance ≤ maxR, the distance computed on
/// the local subgraph + shortcuts equals the global distance.
#[test]
fn theorem1_complete_fragment_distances_are_exact() {
    let net = GridNetworkConfig::tiny(600).generate();
    let e = net.avg_edge_weight();
    let max_r = 15 * e;
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let mut global_ws = DijkstraWorkspace::new(net.num_nodes());

    for f in p.fragment_ids() {
        let idx = build_index(&net, &p, f, &IndexConfig::with_max_r(max_r));
        let local = LocalWithShortcuts::new(&net, &p, f, idx.shortcuts());
        let mut local_ws = DijkstraWorkspace::new(net.num_nodes());
        let members = p.nodes(f);
        for &a in members.iter().take(12) {
            // Global bounded distances from a.
            let global: std::collections::HashMap<u32, u64> =
                global_ws.distances_from(&net, a.0, max_r).into_iter().collect();
            let local_d: std::collections::HashMap<u32, u64> =
                local_ws.distances_from(&local, a.0, max_r).into_iter().collect();
            for &b in members {
                let g = global.get(&b.0).copied().unwrap_or(INF);
                let l = local_d.get(&b.0).copied().unwrap_or(INF);
                if g <= max_r {
                    assert_eq!(l, g, "fragment {f}: d({a},{b})");
                } else {
                    assert!(l >= g, "local graph may never underestimate");
                }
            }
        }
    }
}

/// Theorem 3: with SC + DL, the distance from any DL-indexed node to any
/// node of the fragment is computable locally — exercised end to end by
/// seeding the local search with the DL entry.
#[test]
fn theorem3_cross_fragment_distances_are_exact() {
    let net = GridNetworkConfig::tiny(601).generate();
    let e = net.avg_edge_weight();
    let max_r = 12 * e;
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let cfg = IndexConfig::with_max_r(max_r).with_scope(DlScope::AllNodes);
    let mut global_ws = DijkstraWorkspace::new(net.num_nodes());

    for f in p.fragment_ids() {
        let idx = build_index(&net, &p, f, &cfg);
        let local = LocalWithShortcuts::new(&net, &p, f, idx.shortcuts());
        let mut local_ws = DijkstraWorkspace::new(net.num_nodes());
        let externals: Vec<NodeId> =
            net.node_ids().filter(|&n| p.fragment_of(n) != f).take(10).collect();
        for a in externals {
            let global: std::collections::HashMap<u32, u64> =
                global_ws.distances_from(&net, a.0, max_r).into_iter().collect();
            // Seed the local search with the DL entry for `a` (Alg. 2 step 3).
            let seeds: Vec<(u32, u64)> = idx
                .dl_entry(a)
                .map(|list| list.iter().map(|&(portal, d)| (portal.0, d)).collect())
                .unwrap_or_default();
            let mut reached: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
            local_ws.run(&local, &seeds, max_r, |n, d| {
                reached.insert(n, d);
                Control::Continue
            });
            for &b in p.nodes(f) {
                let g = global.get(&b.0).copied().unwrap_or(INF);
                let l = reached.get(&b.0).copied().unwrap_or(INF);
                if g <= max_r {
                    assert_eq!(l, g, "fragment {f}: d({a},{b}) via DL");
                } else {
                    assert!(l >= g);
                }
            }
        }
    }
}

/// Theorem 2/4 (minimality, empirical form): every SC shortcut and every DL
/// pair is *necessary* — removing it breaks exactness for some pair. We
/// check the contrapositive cheaply: no SC shortcut duplicates an original
/// edge or another recorded distance, and no DL pair is dominated by
/// another pair of the same entry combined with SC distances.
#[test]
fn theorem2_4_no_redundant_distances_recorded() {
    let net = GridNetworkConfig::tiny(602).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    for f in p.fragment_ids() {
        let idx = build_index(&net, &p, f, &IndexConfig::unbounded());
        let local = LocalWithShortcuts::new(&net, &p, f, idx.shortcuts());
        // SC minimality: dropping shortcut i must change some local distance
        // between its endpoints (i.e. the remaining graph is strictly worse).
        for (i, &(a, b, d)) in idx.shortcuts().iter().enumerate() {
            let mut rest: Vec<(NodeId, NodeId, u64)> = idx.shortcuts().to_vec();
            rest.remove(i);
            let reduced = LocalWithShortcuts::new(&net, &p, f, &rest);
            let mut ws = DijkstraWorkspace::new(net.num_nodes());
            let with = ws.distance(&local, a.0, b.0);
            let without = ws.distance(&reduced, a.0, b.0);
            assert_eq!(with, d);
            assert!(
                without > d,
                "shortcut ({a},{b},{d}) in fragment {f} is redundant (still {without})"
            );
        }
        // DL entries: within an entry, each portal pair must not be
        // dominated: d(A,N_i) < d(A,N_j) + d(N_j,N_i) for recorded pairs
        // would be violated only if the path through N_j avoided P — which
        // Rule 2 excludes. Check the recorded list is strictly increasing in
        // the sense that no pair is *equal or worse* than routing through an
        // earlier recorded portal within the complete fragment.
        let mut ws = DijkstraWorkspace::new(net.num_nodes());
        for (node, list) in idx.dl_entries() {
            for (i, &(ni, di)) in list.iter().enumerate() {
                for &(nj, dj) in &list[..i] {
                    let between = ws.distance(&local, nj.0, ni.0);
                    assert!(
                        di <= dj.saturating_add(between),
                        "DL pair ({node},{ni}) is dominated via {nj}"
                    );
                }
            }
        }
    }
}

/// Theorem 6: the measured unbalance factor U is bounded by
/// `1 + max cost / min cost` over the per-fragment task costs.
#[test]
fn theorem6_unbalance_factor_bound() {
    let net = GridNetworkConfig::small(603).generate();
    let e = net.avg_edge_weight();
    let p = MultilevelPartitioner::default().partition(&net, 6);
    let indexes = build_all_indexes(&net, &p, &IndexConfig::with_max_r(40 * e));
    let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
    let freqs = net.keyword_frequencies();
    let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
    let q = disks::core::SgkQuery::new(vec![top], 10 * e);
    let outcome = cluster.run_sgkq(&q).unwrap();
    let busy: Vec<_> =
        outcome.stats.per_machine.iter().filter(|m| !m.fragments.is_empty()).collect();
    let max = busy.iter().map(|m| m.compute).max().unwrap();
    let min = busy.iter().map(|m| m.compute).min().unwrap();
    let bound = 1.0 + max.as_secs_f64() / min.as_secs_f64().max(1e-12);
    assert!(
        outcome.stats.unbalance_factor <= bound + 1e-9,
        "U = {} exceeds Theorem 6 bound {}",
        outcome.stats.unbalance_factor,
        bound
    );
    cluster.shutdown();
}

/// Theorem 5 accounting: α ≤ DL pairs of the index, β = |SC|, and the
/// engine's settled count is bounded by fragment size per term.
#[test]
fn theorem5_cost_model_bounds() {
    let net = GridNetworkConfig::tiny(604).generate();
    let e = net.avg_edge_weight();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let cfg = IndexConfig::with_max_r(40 * e);
    let indexes = build_all_indexes(&net, &p, &cfg);
    let freqs = net.keyword_frequencies();
    let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
    for idx in &indexes {
        let mut engine = FragmentEngine::new(&net, &p, idx).unwrap();
        let f = DFunction::single(Term::Keyword(top), 10 * e);
        let (_, cost) = engine.evaluate(&f).unwrap();
        assert_eq!(cost.beta, idx.shortcuts().len());
        assert!(cost.alpha <= idx.keyword_portal_list(top).len());
        assert!(cost.settled <= engine.num_local_nodes());
        assert!(cost.coverage_nodes <= engine.num_local_nodes());
    }
}

/// A read-only view of a fragment's subgraph plus a set of shortcut edges —
/// the literal `P ∪ SC(P)` object of the theorems.
struct LocalWithShortcuts<'a> {
    net: &'a RoadNetwork,
    assignment: &'a [u32],
    fragment: u32,
    extra: Vec<Vec<(u32, u32)>>,
}

impl<'a> LocalWithShortcuts<'a> {
    fn new(
        net: &'a RoadNetwork,
        p: &'a disks::partition::Partitioning,
        f: FragmentId,
        shortcuts: &[(NodeId, NodeId, u64)],
    ) -> Self {
        let mut extra: Vec<Vec<(u32, u32)>> = vec![Vec::new(); net.num_nodes()];
        for &(a, b, d) in shortcuts {
            let w = u32::try_from(d).expect("shortcut weight fits u32");
            extra[a.index()].push((b.0, w));
            extra[b.index()].push((a.0, w));
        }
        LocalWithShortcuts { net, assignment: p.assignment(), fragment: f.0, extra }
    }
}

impl Graph for LocalWithShortcuts<'_> {
    fn num_nodes(&self) -> usize {
        self.net.num_nodes()
    }

    fn for_each_neighbor(&self, node: u32, f: &mut dyn FnMut(u32, u32)) {
        if self.assignment[node as usize] != self.fragment {
            return;
        }
        for (u, w) in self.net.neighbors(NodeId(node)) {
            if self.assignment[u.index()] == self.fragment {
                f(u.0, w);
            }
        }
        for &(u, w) in &self.extra[node as usize] {
            f(u, w);
        }
    }
}
