//! Failure injection and edge cases: disconnected networks, unknown
//! keywords, boundary radii, object-free fragments, degenerate queries.

use disks::cluster::{Cluster, ClusterConfig};
use disks::core::{build_all_indexes, CentralizedCoverage, DFunction, IndexConfig, SgkQuery, Term};
use disks::partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks::roadnet::generator::GridNetworkConfig;
use disks::roadnet::{KeywordId, NodeId, RoadNetworkBuilder};

/// Two islands: coverage must never leak across components.
#[test]
fn disconnected_network_is_served_exactly() {
    let mut b = RoadNetworkBuilder::new();
    // Island 1: a - c (a has the keyword)
    let a = b.add_node(0.0, 0.0, &["cafe"]);
    let c = b.add_node(1.0, 0.0, &[]);
    b.add_edge(a, c, 2).unwrap();
    // Island 2: d - e (no cafe anywhere)
    let d = b.add_node(10.0, 10.0, &["bar"]);
    let e = b.add_node(11.0, 10.0, &[]);
    b.add_edge(d, e, 2).unwrap();
    let net = b.build().unwrap();
    assert!(!net.is_connected());

    // Put each island in its own fragment AND also test a split that puts
    // half of each island together (non-contiguous fragments).
    for assignment in [vec![0u32, 0, 1, 1], vec![0u32, 1, 0, 1]] {
        let p = Partitioning::from_assignment(&net, assignment.clone(), 2);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
        let cafe = net.vocab().get("cafe").unwrap();
        let q = SgkQuery::new(vec![cafe], 100);
        let outcome = cluster.run_sgkq(&q).unwrap();
        let mut central = CentralizedCoverage::new(&net);
        assert_eq!(outcome.results, central.sgkq(&q).unwrap(), "assignment {assignment:?}");
        // The far island is unreachable at any radius.
        assert!(!outcome.results.contains(&d));
        assert!(!outcome.results.contains(&e));
        cluster.shutdown();
    }
}

/// Keyword ids beyond the vocabulary produce empty coverages, not errors.
#[test]
fn unknown_keywords_yield_empty_results() {
    let net = GridNetworkConfig::tiny(900).generate();
    let p = MultilevelPartitioner::default().partition(&net, 2);
    let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
    let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
    let q = SgkQuery::new(vec![KeywordId(9_999_999)], 100);
    let outcome = cluster.run_sgkq(&q).unwrap();
    assert!(outcome.results.is_empty());
    cluster.shutdown();
}

/// Radius exactly at maxR is servable; maxR + 1 is not.
#[test]
fn max_r_boundary_is_inclusive() {
    let net = GridNetworkConfig::tiny(901).generate();
    let e = net.avg_edge_weight();
    let max_r = 7 * e;
    let p = MultilevelPartitioner::default().partition(&net, 2);
    let indexes = build_all_indexes(&net, &p, &IndexConfig::with_max_r(max_r));
    let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
    let freqs = net.keyword_frequencies();
    let kw = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
    let at = cluster.run_sgkq(&SgkQuery::new(vec![kw], max_r));
    assert!(at.is_ok(), "r = maxR must be served");
    let mut central = CentralizedCoverage::new(&net);
    assert_eq!(at.unwrap().results, central.sgkq(&SgkQuery::new(vec![kw], max_r)).unwrap());
    let over = cluster.run_sgkq(&SgkQuery::new(vec![kw], max_r + 1));
    assert!(over.is_err(), "r = maxR + 1 must be rejected");
    cluster.shutdown();
}

/// A fragment containing no objects at all still participates correctly.
#[test]
fn object_free_fragment_participates() {
    let mut b = RoadNetworkBuilder::new();
    // A line: kw-node — j1 — j2 — j3 (j* junctions; fragment 1 = {j2, j3}).
    let kw_node = b.add_node(0.0, 0.0, &["shop"]);
    let j1 = b.add_node(1.0, 0.0, &[]);
    let j2 = b.add_node(2.0, 0.0, &[]);
    let j3 = b.add_node(3.0, 0.0, &[]);
    b.add_edge(kw_node, j1, 1).unwrap();
    b.add_edge(j1, j2, 1).unwrap();
    b.add_edge(j2, j3, 1).unwrap();
    let net = b.build().unwrap();
    let p = Partitioning::from_assignment(&net, vec![0, 0, 1, 1], 2);
    let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
    assert!(
        indexes[1].dl_entry(kw_node).is_some(),
        "fragment 1 must hold a DL entry for the external keyword node"
    );
    let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
    let shop = net.vocab().get("shop").unwrap();
    let outcome = cluster.run_sgkq(&SgkQuery::new(vec![shop], 3)).unwrap();
    // kw(0), j1(1), j2(2), j3(3): radius 3 covers all four nodes.
    assert_eq!(outcome.results, vec![kw_node, j1, j2, j3]);
    cluster.shutdown();
}

/// Zero-radius SGKQ returns exactly the nodes containing every keyword.
#[test]
fn zero_radius_means_containment() {
    let net = GridNetworkConfig::small(902).generate();
    let p = MultilevelPartitioner::default().partition(&net, 4);
    let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
    let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
    // Find a node with ≥2 keywords to make the intersection non-trivial.
    let multi = net.node_ids().find(|&n| net.keywords(n).len() >= 2).expect("multi-kw node");
    let kws: Vec<KeywordId> = net.keywords(multi).to_vec();
    let q = SgkQuery::new(kws.clone(), 0);
    let outcome = cluster.run_sgkq(&q).unwrap();
    assert!(outcome.results.contains(&multi));
    for &n in &outcome.results {
        for &k in &kws {
            assert!(net.contains_keyword(n, k), "{n} must contain {k}");
        }
    }
    cluster.shutdown();
}

/// An empty fragment (possible under adversarial assignments when k > n
/// would be needed; here forced directly) is harmless.
#[test]
fn empty_fragment_is_harmless() {
    let net = GridNetworkConfig::tiny(903).generate();
    // Everything in fragment 0; fragment 1 is empty.
    let p = Partitioning::from_assignment(&net, vec![0; net.num_nodes()], 2);
    let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
    assert_eq!(indexes[1].distances_recorded(), 0);
    let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
    let freqs = net.keyword_frequencies();
    let kw = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
    let q = SgkQuery::new(vec![kw], 4 * net.avg_edge_weight());
    let outcome = cluster.run_sgkq(&q).unwrap();
    let mut central = CentralizedCoverage::new(&net);
    assert_eq!(outcome.results, central.sgkq(&q).unwrap());
    cluster.shutdown();
}

/// Node terms in a D-function can reference the same node as a keyword term
/// covers — mixed-term functions compose.
#[test]
fn mixed_node_and_keyword_terms() {
    let net = GridNetworkConfig::tiny(904).generate();
    let e = net.avg_edge_weight();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
    let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
    let obj = net.node_ids().find(|&n| net.is_object(n)).unwrap();
    let kw = net.keywords(obj)[0];
    let f = DFunction::single(Term::Node(obj), 6 * e).then(
        disks::core::SetOp::Union,
        Term::Keyword(kw),
        2 * e,
    );
    let outcome = cluster.run(&f).unwrap();
    let mut central = CentralizedCoverage::new(&net);
    assert_eq!(outcome.results, central.evaluate(&f).unwrap());
    assert_eq!(NodeId(outcome.results[0].0), outcome.results[0]);
    cluster.shutdown();
}
