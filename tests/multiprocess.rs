//! Multi-process acceptance: the TCP runner — a real coordinator process
//! spawning real worker processes over real sockets — produces a transcript
//! byte-identical to the in-process channel cluster on a 200-query Zipf
//! workload. The transport is the *only* varied dimension; the shared
//! `disks::workload` seeds pin everything else.

use std::process::Command;

fn run(mode: &str, extra: &[&str]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_disks-coordinator"));
    cmd.args([
        "--mode",
        mode,
        "--machines",
        "3",
        "--fragments",
        "3",
        "--seed",
        "53596",
        "--query-seed",
        "24301",
        "--queries",
        "200",
    ])
    .args(extra);
    let out = cmd.output().expect("spawn disks-coordinator");
    assert!(
        out.status.success(),
        "disks-coordinator --mode {mode} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 transcript")
}

#[test]
fn tcp_worker_processes_match_in_process_cluster_byte_for_byte() {
    let tcp = run("tcp", &["--worker", env!("CARGO_BIN_EXE_disks-worker")]);
    let local = run("local", &[]);
    assert_eq!(tcp, local, "multi-process transcript must be byte-identical to in-process");
    // Sanity on the transcript shape: one line per query plus the digest,
    // and at least one query with results (the digest isn't vacuous).
    assert_eq!(tcp.lines().count(), 201);
    assert!(tcp.lines().last().unwrap().starts_with("digest "));
    assert!(
        tcp.lines().any(|l| l.contains(" n=") && !l.contains(" n=0 ")),
        "workload must produce non-empty answers:\n{tcp}"
    );
}
