//! End-to-end integration tests across all crates: generate → partition →
//! index → cluster → query, validated against centralized ground truth.

use disks::cluster::{Cluster, ClusterConfig, NetworkModel};
use disks::core::{
    build_all_indexes, CentralizedCoverage, DFunction, DlScope, IndexConfig, QClassQuery,
    RangeKeywordQuery, SetOp, SgkQuery, Term,
};
use disks::partition::{
    BfsPartitioner, GridPartitioner, MultilevelPartitioner, Partitioner, Partitioning,
};
use disks::roadnet::generator::GridNetworkConfig;
use disks::roadnet::{KeywordId, RoadNetwork};

fn top_keywords(net: &RoadNetwork, n: usize) -> Vec<KeywordId> {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    ranked.into_iter().take(n).map(|k| KeywordId(k as u32)).collect()
}

/// Run one SGKQ through the full distributed stack and compare with the
/// centralized result.
fn check_sgkq(net: &RoadNetwork, partitioning: &Partitioning, cfg: &IndexConfig, q: &SgkQuery) {
    let indexes = build_all_indexes(net, partitioning, cfg);
    let cluster = Cluster::build(net, partitioning, indexes, ClusterConfig::default());
    let outcome = cluster.run_sgkq(q).expect("distributed query");
    let mut central = CentralizedCoverage::new(net);
    assert_eq!(outcome.results, central.sgkq(q).expect("centralized"), "query {q:?}");
    assert_eq!(outcome.stats.inter_worker_bytes, 0);
    cluster.shutdown();
}

#[test]
fn every_partitioner_produces_correct_distributed_results() {
    let net = GridNetworkConfig::small(500).generate();
    let e = net.avg_edge_weight();
    let q = SgkQuery::new(top_keywords(&net, 3), 6 * e);
    let cfg = IndexConfig::with_max_r(40 * e);
    for k in [2usize, 5, 8] {
        check_sgkq(&net, &MultilevelPartitioner::default().partition(&net, k), &cfg, &q);
        check_sgkq(&net, &GridPartitioner.partition(&net, k), &cfg, &q);
        check_sgkq(&net, &BfsPartitioner::default().partition(&net, k), &cfg, &q);
    }
}

#[test]
fn sweep_of_radii_and_keyword_counts() {
    let net = GridNetworkConfig::small(501).generate();
    let e = net.avg_edge_weight();
    let partitioning = MultilevelPartitioner::default().partition(&net, 6);
    let cfg = IndexConfig::with_max_r(40 * e);
    let indexes = build_all_indexes(&net, &partitioning, &cfg);
    let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());
    let mut central = CentralizedCoverage::new(&net);
    for nk in [1usize, 2, 4] {
        for r in [0u64, e, 5 * e, 20 * e, 40 * e] {
            let q = SgkQuery::new(top_keywords(&net, nk), r);
            let outcome = cluster.run_sgkq(&q).expect("query");
            assert_eq!(outcome.results, central.sgkq(&q).unwrap(), "nk={nk} r={r}");
        }
    }
    cluster.shutdown();
}

#[test]
fn rkq_from_many_object_locations() {
    let net = GridNetworkConfig::small(502).generate();
    let e = net.avg_edge_weight();
    let partitioning = MultilevelPartitioner::default().partition(&net, 4);
    let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::with_max_r(40 * e));
    let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());
    let mut central = CentralizedCoverage::new(&net);
    let objects: Vec<_> = net.node_ids().filter(|&n| net.is_object(n)).take(8).collect();
    for obj in objects {
        let kw = net.keywords(obj)[0];
        let q = RangeKeywordQuery::new(obj, vec![kw], 12 * e);
        let outcome = cluster.run_rkq(&q).expect("rkq");
        assert_eq!(outcome.results, central.rkq(&q).unwrap(), "location {obj}");
        assert!(
            outcome.results.contains(&obj),
            "the location itself contains the keyword and is at distance 0"
        );
    }
    cluster.shutdown();
}

#[test]
fn complex_dfunctions_across_scopes() {
    let net = GridNetworkConfig::small(503).generate();
    let e = net.avg_edge_weight();
    let kws = top_keywords(&net, 4);
    let f = DFunction::single(Term::Keyword(kws[0]), 8 * e)
        .then(SetOp::Union, Term::Keyword(kws[1]), 4 * e)
        .then(SetOp::Subtract, Term::Keyword(kws[2]), 2 * e)
        .then(SetOp::Intersect, Term::Keyword(kws[3]), 10 * e);
    let q = QClassQuery::new(f);
    let partitioning = MultilevelPartitioner::default().partition(&net, 5);
    for scope in [DlScope::ObjectsOnly, DlScope::AllNodes] {
        let cfg = IndexConfig::with_max_r(40 * e).with_scope(scope);
        let indexes = build_all_indexes(&net, &partitioning, &cfg);
        let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());
        let outcome = cluster.run_qclass(&q).expect("qclass");
        let mut central = CentralizedCoverage::new(&net);
        assert_eq!(outcome.results, central.qclass(&q).unwrap(), "scope {scope:?}");
        cluster.shutdown();
    }
}

#[test]
fn persisted_indexes_serve_queries_identically() {
    use disks::core::index::{load_index, save_index};
    let net = GridNetworkConfig::tiny(504).generate();
    let e = net.avg_edge_weight();
    let partitioning = MultilevelPartitioner::default().partition(&net, 3);
    let cfg = IndexConfig::with_max_r(40 * e);
    let indexes = build_all_indexes(&net, &partitioning, &cfg);

    // Save to disk, reload, and build the cluster from the reloaded files.
    let dir = std::env::temp_dir().join(format!("disks-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut reloaded = Vec::new();
    for idx in &indexes {
        let path = dir.join(format!("frag{}.npd", idx.fragment().0));
        save_index(idx, &path).unwrap();
        reloaded.push(load_index(&path, idx.fragment()).unwrap());
    }
    std::fs::remove_dir_all(&dir).ok();

    let q = SgkQuery::new(top_keywords(&net, 2), 10 * e);
    let cluster_a = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());
    let cluster_b = Cluster::build(&net, &partitioning, reloaded, ClusterConfig::default());
    let a = cluster_a.run_sgkq(&q).unwrap();
    let b = cluster_b.run_sgkq(&q).unwrap();
    assert_eq!(a.results, b.results);
    cluster_a.shutdown();
    cluster_b.shutdown();
}

#[test]
fn many_sequential_queries_reuse_the_cluster() {
    let net = GridNetworkConfig::tiny(505).generate();
    let e = net.avg_edge_weight();
    let partitioning = MultilevelPartitioner::default().partition(&net, 3);
    let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::unbounded());
    let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());
    let mut central = CentralizedCoverage::new(&net);
    let kws = top_keywords(&net, 3);
    for i in 0..50 {
        let r = (i % 10) * e;
        let q = SgkQuery::new(vec![kws[i as usize % kws.len()]], r);
        let outcome = cluster.run_sgkq(&q).expect("query");
        assert_eq!(outcome.results, central.sgkq(&q).unwrap(), "iteration {i}");
    }
    cluster.shutdown();
}

#[test]
fn small_world_graphs_are_served_exactly() {
    // The paper's future-work extension (non-road graphs): small-world
    // topologies are non-metric (direct edges can be longer than detours)
    // and stress the Rule 1 condition-2 handling.
    use disks::roadnet::generator::SmallWorldConfig;
    for seed in 0..6u64 {
        let net =
            SmallWorldConfig { nodes: 120, vocab_size: 12, seed, ..Default::default() }.generate();
        let partitioning = BfsPartitioner::default().partition(&net, 3);
        let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::unbounded());
        let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());
        let mut central = CentralizedCoverage::new(&net);
        let kws = top_keywords(&net, 2);
        for r in [0u64, 3, 6, 12, 30] {
            let q = SgkQuery::new(kws.clone(), r);
            let outcome = cluster.run_sgkq(&q).expect("query");
            assert_eq!(outcome.results, central.sgkq(&q).unwrap(), "seed={seed} r={r}");
        }
        cluster.shutdown();
    }
}

#[test]
fn instant_network_model_reduces_modeled_time() {
    let net = GridNetworkConfig::tiny(506).generate();
    let e = net.avg_edge_weight();
    let partitioning = MultilevelPartitioner::default().partition(&net, 2);
    let q = SgkQuery::new(top_keywords(&net, 2), 8 * e);

    let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::unbounded());
    let slow = Cluster::build(
        &net,
        &partitioning,
        indexes.clone(),
        ClusterConfig {
            machines: None,
            network: NetworkModel::switch_100mbps(),
            ..ClusterConfig::default()
        },
    );
    let fast = Cluster::build(
        &net,
        &partitioning,
        indexes,
        ClusterConfig {
            machines: None,
            network: NetworkModel::instant(),
            ..ClusterConfig::default()
        },
    );
    let a = slow.run_sgkq(&q).unwrap();
    let b = fast.run_sgkq(&q).unwrap();
    assert_eq!(a.results, b.results);
    // Same compute, but the modeled response of the 100 Mb switch includes
    // latency + serialization.
    assert!(a.stats.modeled_response_time >= a.stats.slowest_task);
    assert!(b.stats.modeled_response_time <= a.stats.modeled_response_time + a.stats.slowest_task);
    slow.shutdown();
    fast.shutdown();
}

#[test]
fn distributed_topk_on_generated_networks() {
    use disks::core::{centralized_topk, ScoreCombine, TopKQuery};
    let net = GridNetworkConfig::small(507).generate();
    let e = net.avg_edge_weight();
    let partitioning = MultilevelPartitioner::default().partition(&net, 6);
    let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::with_max_r(40 * e));
    let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());
    let kws = top_keywords(&net, 3);
    for combine in [ScoreCombine::Max, ScoreCombine::Sum] {
        for k in [1usize, 10, 100] {
            let q = TopKQuery::new(kws.clone(), k, 20 * e, combine);
            let (ranked, _) = cluster.run_topk(&q).unwrap();
            assert_eq!(ranked, centralized_topk(&net, &q).unwrap(), "{combine:?} k={k}");
            // Scores are nondecreasing and within the horizon (Max only;
            // Sum can exceed it since it adds per-term distances).
            assert!(ranked.windows(2).all(|w| w[0] <= w[1]));
            if combine == ScoreCombine::Max {
                assert!(ranked.iter().all(|&(s, _)| s <= 20 * e));
            }
        }
    }
    cluster.shutdown();
}
