//! A small hand-built demo city used by the runnable examples.
//!
//! The layout is a 6×4 street grid with points of interest attached to
//! junctions, carrying the keywords of the paper's motivating queries Q1–Q3
//! (supermarket / gym / hospital, pizza / shopping mall, hotel / restaurant
//! / seafood / chinese food).

use std::collections::HashMap;

use disks_roadnet::{NodeId, RoadNetwork, RoadNetworkBuilder};

/// Build the demo city. Returns the network and a name → node map for the
/// points of interest (e.g. `"hotel"`, `"mall_west"`).
pub fn demo_city() -> (RoadNetwork, HashMap<&'static str, NodeId>) {
    let mut b = RoadNetworkBuilder::new();
    // 6 columns × 4 rows of junctions, 300–500 m blocks.
    let mut junction = [[NodeId(0); 6]; 4];
    for (y, row) in junction.iter_mut().enumerate() {
        for (x, cell) in row.iter_mut().enumerate() {
            *cell = b.add_node(x as f32, y as f32, &[]);
        }
    }
    let mut weights = [300u32, 350, 400, 450, 500].iter().cycle().copied();
    for y in 0..4 {
        for x in 0..6 {
            if x + 1 < 6 {
                let w = weights.next().expect("cycle");
                b.add_edge(junction[y][x], junction[y][x + 1], w).expect("grid edge");
            }
            if y + 1 < 4 {
                let w = weights.next().expect("cycle");
                b.add_edge(junction[y][x], junction[y + 1][x], w).expect("grid edge");
            }
        }
    }
    let mut names = HashMap::new();
    let poi = |b: &mut RoadNetworkBuilder,
               names: &mut HashMap<&'static str, NodeId>,
               name: &'static str,
               at: NodeId,
               kws: &[&str]| {
        let (x, y) = (0.1f32, 0.1f32);
        let node = b.add_node(x, y, kws);
        b.add_edge(at, node, 50).expect("poi edge");
        names.insert(name, node);
    };
    poi(&mut b, &mut names, "supermarket_ne", junction[0][4], &["supermarket"]);
    poi(&mut b, &mut names, "supermarket_sw", junction[3][1], &["supermarket"]);
    poi(&mut b, &mut names, "gym_central", junction[1][2], &["gym"]);
    poi(&mut b, &mut names, "gym_east", junction[2][5], &["gym"]);
    poi(&mut b, &mut names, "hospital", junction[1][3], &["hospital"]);
    poi(&mut b, &mut names, "pizza_north", junction[0][2], &["pizza"]);
    poi(&mut b, &mut names, "pizza_south", junction[3][3], &["pizza"]);
    poi(&mut b, &mut names, "mall_west", junction[2][0], &["shopping mall"]);
    poi(&mut b, &mut names, "mall_east", junction[1][4], &["shopping mall"]);
    poi(&mut b, &mut names, "hotel", junction[2][2], &["hotel"]);
    poi(
        &mut b,
        &mut names,
        "sea_dragon",
        junction[2][3],
        &["restaurant", "seafood", "chinese food"],
    );
    poi(&mut b, &mut names, "trattoria", junction[3][4], &["restaurant"]);
    poi(&mut b, &mut names, "noodle_bar", junction[0][1], &["restaurant", "chinese food"]);
    poi(&mut b, &mut names, "school", junction[3][0], &["school"]);
    poi(&mut b, &mut names, "museum", junction[0][5], &["museum"]);
    poi(&mut b, &mut names, "park", junction[1][1], &["park"]);
    let net = b.build().expect("demo city build");
    debug_assert!(net.is_connected());
    (net, names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_city_is_connected_and_labelled() {
        let (net, names) = demo_city();
        assert!(net.is_connected());
        net.validate().unwrap();
        assert!(names.len() >= 15);
        let hotel = names["hotel"];
        assert!(net.is_object(hotel));
        assert!(net.vocab().get("seafood").is_some());
        assert!(net.vocab().get("chinese food").is_some());
    }

    #[test]
    fn demo_city_answers_paper_q3() {
        // Q3: restaurants offering seafood AND chinese food within 500 m of
        // the hotel → the Sea Dragon.
        use disks_core::{CentralizedCoverage, RangeKeywordQuery};
        let (net, names) = demo_city();
        let kws = vec![
            net.vocab().get("restaurant").unwrap(),
            net.vocab().get("seafood").unwrap(),
            net.vocab().get("chinese food").unwrap(),
        ];
        let q = RangeKeywordQuery::new(names["hotel"], kws, 600);
        let mut central = CentralizedCoverage::new(&net);
        let res = central.rkq(&q).unwrap();
        assert_eq!(res, vec![names["sea_dragon"]]);
    }
}
