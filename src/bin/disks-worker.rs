//! `disks-worker` — one share-nothing worker machine as an OS process.
//!
//! ```text
//! disks-worker --connect 127.0.0.1:PORT --machine M --machines N \
//!              --fragments K --seed S [--cache BYTES] [--cache-heat N]
//!              [--threads T]
//! ```
//!
//! The worker rebuilds its machine's fragment engines deterministically
//! from the shared workload seeds (the process analogue of the in-process
//! respawn path's engine rebuild), dials the coordinator with seeded-jitter
//! retries, identifies itself with a hello frame, and then runs the *same*
//! transport-agnostic `worker_loop` the in-process cluster uses — the
//! socket pumps of `tcp_worker_endpoint` are the only difference.

use std::net::TcpStream;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

use disks::cluster::framing::write_hello;
use disks::cluster::worker::worker_loop;
use disks::cluster::{
    tcp_worker_endpoint, ClusterConfig, HeartbeatConfig, LinkCounters, LinkSender, WorkerFaults,
};
use disks::workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let Some(addr) = get("--connect") else {
        eprintln!("usage: disks-worker --connect ADDR --machine M --machines N --fragments K --seed S [--cache BYTES] [--cache-heat N] [--threads T]");
        exit(2);
    };
    let machine: usize = get("--machine").and_then(|v| v.parse().ok()).unwrap_or(0);
    let machines: usize = get("--machines").and_then(|v| v.parse().ok()).unwrap_or(1);
    let fragments: usize = get("--fragments").and_then(|v| v.parse().ok()).unwrap_or(machines);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(0xD15C);
    let cache: usize = get("--cache").and_then(|v| v.parse().ok()).unwrap_or(64 << 20);
    // Heat-admission threshold: flag first, then the same DISKS_CACHE_HEAT /
    // DISKS_LAYOUT environment defaulting the in-process workers use (the
    // coordinator's env propagates to spawned worker processes).
    let cache_heat: u32 = get("--cache-heat")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(ClusterConfig::cache_heat_from_env);
    // Evaluator threads: flag first, then the same DISKS_WORKER_THREADS
    // defaulting the in-process workers use.
    let threads: usize = get("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(ClusterConfig::worker_threads_from_env)
        .max(1);

    let net = workload::grid_net(seed);
    let p = workload::partition(&net, fragments);
    let engines = workload::machine_engines(&net, &p, machines, machine);

    // Dial with bounded retries: the coordinator binds before spawning us,
    // but a busy host may still delay the accept loop.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut stream = loop {
        match TcpStream::connect(&addr) {
            Ok(s) => break s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                eprintln!("disks-worker {machine}: connect {addr}: {e}");
                exit(1);
            }
        }
    };
    if let Err(e) = write_hello(&mut stream, machine as u32) {
        eprintln!("disks-worker {machine}: hello: {e}");
        exit(1);
    }
    let endpoint = match tcp_worker_endpoint(stream, machine, HeartbeatConfig::from_env(), None) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("disks-worker {machine}: endpoint: {e}");
            exit(1);
        }
    };
    let responses = LinkSender::over(endpoint.egress, Arc::new(LinkCounters::default()));
    worker_loop(
        machine,
        engines,
        endpoint.requests,
        responses,
        WorkerFaults::default(),
        cache,
        cache_heat,
        threads,
    );
}
