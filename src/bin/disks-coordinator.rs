//! `disks-coordinator` — drive a Zipf SGKQ workload through the cluster,
//! either over real worker *processes* (TCP) or in-process, printing an
//! identical, digest-checked transcript in both modes.
//!
//! ```text
//! disks-coordinator --mode tcp   --worker PATH [--machines N] [--fragments K]
//!                   [--seed S] [--query-seed QS] [--queries Q] [--cache BYTES]
//! disks-coordinator --mode local [--machines N] ...
//! ```
//!
//! `--mode tcp` binds an ephemeral listener, spawns one `disks-worker`
//! process per machine via `Cluster::build_remote`, and runs the stream
//! over real sockets. `--mode local` runs the same stream on the in-process
//! channel cluster. The output format is shared line-for-line, so
//! `tests/multiprocess.rs` asserts the two transcripts are byte-identical.

use std::net::TcpListener;
use std::process::exit;

use disks::cluster::transport::TransportKind;
use disks::cluster::{Cluster, ClusterConfig, RemoteWorkerCommand};
use disks::core::{build_all_indexes, IndexConfig};
use disks::workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let mode = get("--mode").unwrap_or_else(|| "tcp".to_string());
    let machines: usize = get("--machines").and_then(|v| v.parse().ok()).unwrap_or(3);
    let fragments: usize = get("--fragments").and_then(|v| v.parse().ok()).unwrap_or(machines);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(0xD15C);
    let query_seed: u64 = get("--query-seed").and_then(|v| v.parse().ok()).unwrap_or(0x5EED);
    let queries: usize = get("--queries").and_then(|v| v.parse().ok()).unwrap_or(200);
    let cache: usize = get("--cache").and_then(|v| v.parse().ok()).unwrap_or(64 << 20);
    let threads: usize = get("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(ClusterConfig::worker_threads_from_env)
        .max(1);

    let net = workload::grid_net(seed);
    let p = workload::partition(&net, fragments);
    let config = ClusterConfig {
        machines: Some(machines),
        coverage_cache_bytes: cache,
        worker_threads: threads,
        ..ClusterConfig::default()
    };

    let cluster = match mode.as_str() {
        "tcp" => {
            let Some(worker) = get("--worker") else {
                eprintln!("--mode tcp requires --worker PATH");
                exit(2);
            };
            let listener = match TcpListener::bind("127.0.0.1:0") {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("bind: {e}");
                    exit(1);
                }
            };
            let addr = listener.local_addr().expect("listener addr").to_string();
            let commands = (0..machines)
                .map(|m| RemoteWorkerCommand {
                    program: worker.clone().into(),
                    args: [
                        "--connect",
                        &addr,
                        "--machine",
                        &m.to_string(),
                        "--machines",
                        &machines.to_string(),
                        "--fragments",
                        &fragments.to_string(),
                        "--seed",
                        &seed.to_string(),
                        "--cache",
                        &cache.to_string(),
                        "--threads",
                        &threads.to_string(),
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                })
                .collect();
            match Cluster::build_remote(
                &net,
                &p,
                &IndexConfig::unbounded(),
                config,
                listener,
                commands,
            ) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("build_remote: {e}");
                    exit(1);
                }
            }
        }
        "local" => {
            let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
            Cluster::build(
                &net,
                &p,
                indexes,
                ClusterConfig { transport: TransportKind::Channel, ..config },
            )
        }
        other => {
            eprintln!("unknown --mode '{other}' (tcp|local)");
            exit(2);
        }
    };

    let stream = workload::zipf_queries(&net, query_seed, queries);
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, q) in stream.iter().enumerate() {
        match cluster.run_sgkq(q) {
            Ok(outcome) => {
                let h = workload::result_hash(&outcome.results);
                digest = digest.rotate_left(7) ^ h;
                println!("q{i} n={} h={h:016x}", outcome.results.len());
            }
            Err(e) => {
                eprintln!("query {i}: {e}");
                cluster.shutdown();
                exit(1);
            }
        }
    }
    println!("digest {digest:016x}");
    cluster.shutdown();
}
