//! `disks-cli` — operate the DISKS pipeline from the command line.
//!
//! ```text
//! disks-cli generate  --preset aus|bri|small --seed N --out net.bin [--text]
//! disks-cli stats     --net net.bin
//! disks-cli partition --net net.bin -k 8 [--method multilevel|grid|bfs] --out part.txt
//! disks-cli index     --net net.bin --part part.txt [--max-r-factor 40] --out-dir idx/
//! disks-cli query     --net net.bin --part part.txt --index-dir idx/ \
//!                     --keywords kw00001,kw00002 -r 5000
//! disks-cli topk      --net net.bin --part part.txt --index-dir idx/ \
//!                     --keywords kw00001,kw00002 -k 10 --horizon 5000
//! ```
//!
//! The partition file is `k` on the first line followed by one fragment id
//! per node. Index files are the binary NPD format (`fragN.npd`).

use std::path::{Path, PathBuf};
use std::process::exit;

use disks::cluster::{Cluster, ClusterConfig};
use disks::core::index::{load_index, save_index};
use disks::core::{
    build_all_indexes, centralized_topk, CentralizedCoverage, IndexConfig, NpdIndex, ScoreCombine,
    SgkQuery, TopKQuery,
};
use disks::partition::{
    BfsPartitioner, GridPartitioner, MultilevelPartitioner, PartitionMetrics, Partitioner,
    Partitioning,
};
use disks::roadnet::generator::GridNetworkConfig;
use disks::roadnet::{io, KeywordId, RoadNetwork};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let opts = Opts::parse(&args[1..]);
    let outcome = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "stats" => cmd_stats(&opts),
        "partition" => cmd_partition(&opts),
        "index" => cmd_index(&opts),
        "query" => cmd_query(&opts),
        "topk" => cmd_topk(&opts),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    if let Err(msg) = outcome {
        eprintln!("error: {msg}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "disks-cli <generate|stats|partition|index|query|topk> [options]\n\
         see the module docs (src/bin/disks-cli.rs) for option details"
    );
}

/// Tiny flag parser: `--name value` pairs plus `-k`/`-r` shorthands.
struct Opts {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if a.starts_with('-') {
                if i + 1 < args.len() && !args[i + 1].starts_with('-') {
                    pairs.push((a.trim_start_matches('-').to_string(), args[i + 1].clone()));
                    i += 2;
                    continue;
                }
                flags.push(a.trim_start_matches('-').to_string());
            }
            i += 1;
        }
        Opts { pairs, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required option --{name}"))
    }

    fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }

    fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

fn load_net(opts: &Opts) -> Result<RoadNetwork, String> {
    let path = opts.require("net")?;
    let net = if path.ends_with(".txt") {
        let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        io::read_text(f).map_err(|e| format!("parse {path}: {e}"))?
    } else {
        io::load_binary(path).map_err(|e| format!("load {path}: {e}"))?
    };
    Ok(net)
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let preset = opts.get("preset").unwrap_or("small");
    let seed: u64 = opts.get_parse("seed", 1)?;
    let out = opts.require("out")?;
    let cfg = match preset {
        "aus" => GridNetworkConfig::aus_like(seed),
        "bri" => GridNetworkConfig::bri_like(seed),
        "small" => GridNetworkConfig::small(seed),
        other => return Err(format!("unknown preset '{other}' (aus|bri|small)")),
    };
    let net = cfg.generate();
    if opts.has_flag("text") || out.ends_with(".txt") {
        let f = std::fs::File::create(out).map_err(|e| e.to_string())?;
        io::write_text(&net, f).map_err(|e| e.to_string())?;
    } else {
        io::save_binary(&net, out).map_err(|e| e.to_string())?;
    }
    println!(
        "generated {preset} (seed {seed}): {} nodes, {} edges → {out}",
        net.num_nodes(),
        net.num_edges()
    );
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let net = load_net(opts)?;
    let s = net.stats();
    println!(
        "nodes {}  objects {}  edges {}  keywords {}  avg-edge {}  connected {}",
        s.nodes,
        s.objects,
        s.edges,
        s.keywords,
        s.avg_edge_weight,
        net.is_connected()
    );
    Ok(())
}

fn write_partition(path: &str, p: &Partitioning) -> Result<(), String> {
    let mut out = String::with_capacity(p.assignment().len() * 2 + 16);
    out.push_str(&format!("{}\n", p.num_fragments()));
    for &a in p.assignment() {
        out.push_str(&format!("{a}\n"));
    }
    std::fs::write(path, out).map_err(|e| e.to_string())
}

fn read_partition(path: &str, net: &RoadNetwork) -> Result<Partitioning, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let k: usize = lines
        .next()
        .ok_or("empty partition file")?
        .trim()
        .parse()
        .map_err(|_| "bad fragment count")?;
    let assignment: Result<Vec<u32>, String> =
        lines.map(|l| l.trim().parse().map_err(|_| format!("bad fragment id '{l}'"))).collect();
    let assignment = assignment?;
    if assignment.len() != net.num_nodes() {
        return Err(format!(
            "partition covers {} nodes but network has {}",
            assignment.len(),
            net.num_nodes()
        ));
    }
    Ok(Partitioning::from_assignment(net, assignment, k))
}

fn cmd_partition(opts: &Opts) -> Result<(), String> {
    let net = load_net(opts)?;
    let k: usize = opts.get_parse("k", 4)?;
    let out = opts.require("out")?;
    let method = opts.get("method").unwrap_or("multilevel");
    let p = match method {
        "multilevel" => MultilevelPartitioner::default().partition(&net, k),
        "grid" => GridPartitioner.partition(&net, k),
        "bfs" => BfsPartitioner::default().partition(&net, k),
        other => return Err(format!("unknown method '{other}' (multilevel|grid|bfs)")),
    };
    write_partition(out, &p)?;
    println!("{} → {out}", PartitionMetrics::compute(&net, &p));
    Ok(())
}

fn cmd_index(opts: &Opts) -> Result<(), String> {
    let net = load_net(opts)?;
    let p = read_partition(opts.require("part")?, &net)?;
    let factor: u64 = opts.get_parse("max-r-factor", 40)?;
    let out_dir = PathBuf::from(opts.require("out-dir")?);
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let cfg = if factor == 0 {
        IndexConfig::unbounded()
    } else {
        IndexConfig::with_max_r(factor * net.avg_edge_weight())
    };
    let t0 = std::time::Instant::now();
    let indexes = build_all_indexes(&net, &p, &cfg);
    for idx in &indexes {
        let path = out_dir.join(format!("frag{}.npd", idx.fragment().0));
        save_index(idx, &path).map_err(|e| e.to_string())?;
        println!("  {}", idx.stats());
    }
    println!(
        "indexed {} fragments (maxR factor {factor}, 0 = unbounded) in {:?} → {}",
        indexes.len(),
        t0.elapsed(),
        out_dir.display()
    );
    Ok(())
}

fn load_indexes(dir: &Path, p: &Partitioning) -> Result<Vec<NpdIndex>, String> {
    p.fragment_ids()
        .map(|f| {
            let path = dir.join(format!("frag{}.npd", f.0));
            load_index(&path, f).map_err(|e| format!("{}: {e}", path.display()))
        })
        .collect()
}

fn parse_keywords(net: &RoadNetwork, spec: &str) -> Result<Vec<KeywordId>, String> {
    spec.split(',')
        .map(|w| {
            let w = w.trim();
            net.vocab().get(w).ok_or_else(|| format!("unknown keyword '{w}'"))
        })
        .collect()
}

fn cmd_query(opts: &Opts) -> Result<(), String> {
    let net = load_net(opts)?;
    let p = read_partition(opts.require("part")?, &net)?;
    let indexes = load_indexes(Path::new(opts.require("index-dir")?), &p)?;
    let keywords = parse_keywords(&net, opts.require("keywords")?)?;
    let r: u64 = opts.get_parse("r", 10 * net.avg_edge_weight())?;
    let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
    let q = SgkQuery::new(keywords, r);
    let outcome = cluster.run_sgkq(&q).map_err(|e| e.to_string())?;
    println!(
        "{} results in {:?} (slowest task {:?}, modeled response {:?}, U {:.2}, \
         inter-worker bytes {})",
        outcome.results.len(),
        outcome.stats.wall_time,
        outcome.stats.slowest_task,
        outcome.stats.modeled_response_time,
        outcome.stats.unbalance_factor,
        outcome.stats.inter_worker_bytes
    );
    if opts.has_flag("verify") {
        let mut central = CentralizedCoverage::new(&net);
        let expect = central.sgkq(&q).map_err(|e| e.to_string())?;
        if outcome.results == expect {
            println!("verify: OK (matches centralized evaluation)");
        } else {
            return Err("verify FAILED: distributed != centralized".into());
        }
    }
    if opts.has_flag("print") {
        for n in &outcome.results {
            println!("{n}");
        }
    }
    cluster.shutdown();
    Ok(())
}

fn cmd_topk(opts: &Opts) -> Result<(), String> {
    let net = load_net(opts)?;
    let p = read_partition(opts.require("part")?, &net)?;
    let indexes = load_indexes(Path::new(opts.require("index-dir")?), &p)?;
    let keywords = parse_keywords(&net, opts.require("keywords")?)?;
    let k: usize = opts.get_parse("k", 10)?;
    let horizon: u64 = opts.get_parse("horizon", 10 * net.avg_edge_weight())?;
    let combine = match opts.get("combine").unwrap_or("max") {
        "max" => ScoreCombine::Max,
        "sum" => ScoreCombine::Sum,
        other => return Err(format!("unknown combine '{other}' (max|sum)")),
    };
    let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
    let q = TopKQuery::new(keywords, k, horizon, combine);
    let (ranked, stats) = cluster.run_topk(&q).map_err(|e| e.to_string())?;
    for (i, &(score, node)) in ranked.iter().enumerate() {
        println!("{:>3}. {node}  score {score}", i + 1);
    }
    println!(
        "({} results in {:?}, inter-worker bytes {})",
        ranked.len(),
        stats.wall_time,
        stats.inter_worker_bytes
    );
    if opts.has_flag("verify") {
        let expect = centralized_topk(&net, &q).map_err(|e| e.to_string())?;
        if ranked == expect {
            println!("verify: OK");
        } else {
            return Err("verify FAILED: distributed != centralized".into());
        }
    }
    cluster.shutdown();
    Ok(())
}
