//! Deterministic workload shared by the multi-process runner.
//!
//! The coordinator and worker executables live in separate processes with
//! no shared memory, so everything they must agree on — the synthetic road
//! network, the partitioning, the per-machine engine set, the Zipf query
//! stream, and the result digest — is derived here from explicit seeds.
//! Both sides calling these functions with the same arguments reconstruct
//! bit-identical state, which is what lets `tests/multiprocess.rs` demand
//! byte-identical output from the TCP runner and the in-process cluster.

use disks_cluster::worker::WorkerEngine;
use disks_cluster::Placement;
use disks_core::{build_all_indexes, FragmentEngine, IndexConfig, SgkQuery};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::zipf::Zipf;
use disks_roadnet::{KeywordId, NodeId, RoadNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shared synthetic road network: small enough that every worker can
/// rebuild it at startup, large enough to exercise multi-fragment queries.
pub fn grid_net(seed: u64) -> RoadNetwork {
    GridNetworkConfig::tiny(seed).generate()
}

/// The shared partitioning (one fragment per simulated machine by default).
pub fn partition(net: &RoadNetwork, fragments: usize) -> Partitioning {
    MultilevelPartitioner::default().partition(net, fragments)
}

/// The engines machine `m` owns under the cluster's round-robin fragment
/// placement — the same placement `Cluster::build_remote` uses (remote
/// clusters never replicate: each worker process rebuilds its own engines
/// from these seeds), so a worker rebuilds exactly the fragments the
/// coordinator will address to it.
pub fn machine_engines(
    net: &RoadNetwork,
    p: &Partitioning,
    machines: usize,
    m: usize,
) -> Vec<WorkerEngine> {
    let indexes = build_all_indexes(net, p, &IndexConfig::unbounded());
    let placement = Placement::round_robin(p.num_fragments(), machines);
    placement
        .fragments_of(m)
        .iter()
        .map(|&f| {
            WorkerEngine::Single(
                FragmentEngine::new(net, p, &indexes[f.index()]).expect("engine build"),
            )
        })
        .collect()
}

/// A seeded Zipf-skewed SGKQ stream — the same shape the cache and
/// batching test suites use: keywords drawn by popularity rank, radii from
/// a small pool.
pub fn zipf_queries(net: &RoadNetwork, seed: u64, n: usize) -> Vec<SgkQuery> {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    ranked.truncate(10);
    let zipf = Zipf::new(ranked.len(), 1.0);
    let e = net.avg_edge_weight();
    let radii = [2 * e, 3 * e, 4 * e];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let num_kw = 1 + rng.gen_range(0..2);
            let kws: Vec<KeywordId> =
                (0..num_kw).map(|_| KeywordId(ranked[zipf.sample(&mut rng)] as u32)).collect();
            SgkQuery::new(kws, radii[rng.gen_range(0..radii.len())])
        })
        .collect()
}

/// FNV-1a over the result node ids in answer order — a stable digest two
/// processes can compare without shipping the full result sets around.
pub fn result_hash(results: &[NodeId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for n in results {
        for b in n.0.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}
