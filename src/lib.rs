//! # DISKS — Distributed Spatial Keyword Querying on Road Networks
//!
//! A from-scratch Rust reproduction of the EDBT 2014 paper *"Distributed
//! Spatial Keyword Querying on Road Networks"* (Luo, Luo, Zhou, Cong, Guan,
//! Yong): the **NPD-index** and the keyword-coverage / D-function framework
//! for answering Spatial Group Keyword Queries (SGKQ) and Range Keyword
//! Queries (RKQ) in a coordinator-based share-nothing distributed setting
//! with zero inter-worker communication at query time.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`roadnet`] — road-network graph substrate (CSR graph, keywords,
//!   Dijkstra toolkit, synthetic generators, I/O).
//! * [`partition`] — graph partitioners (geometric, region-growing,
//!   multilevel METIS-like) producing node-disjoint fragments and portals.
//! * [`core`] — the NPD-index (SC + DL components), fragment query engine,
//!   D-functions, SGKQ/RKQ/Q-class queries.
//! * [`cluster`] — the distributed runtime: coordinator, workers, simulated
//!   byte-accounted network, scheduler, load-balance statistics.
//! * [`baseline`] — centralized evaluation, a mini-Pregel BSP engine with a
//!   distributed-Dijkstra baseline, and a partitioned iterative-correcting
//!   Dijkstra baseline.
//! * [`mod@bench`] — the experiment harness regenerating every table and figure
//!   of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use disks::prelude::*;
//!
//! // 1. A small synthetic road network (substitute for an OSM extract).
//! let net = GridNetworkConfig::small(7).generate();
//!
//! // 2. Partition it into 4 fragments (one per simulated machine).
//! let partitioning = MultilevelPartitioner::default().partition(&net, 4);
//!
//! // 3. Build the NPD-index for every fragment.
//! let max_r = 40 * net.avg_edge_weight();
//! let indexes = build_all_indexes(&net, &partitioning, &IndexConfig::with_max_r(max_r));
//!
//! // 4. Spin up the share-nothing cluster and run an SGKQ.
//! let cluster = Cluster::build(&net, &partitioning, indexes, ClusterConfig::default());
//! let kw = net.vocab().iter().next().unwrap().0;
//! let query = SgkQuery::new(vec![kw], max_r / 4);
//! let outcome = cluster.run_sgkq(&query).unwrap();
//! assert_eq!(outcome.stats.inter_worker_bytes, 0); // the paper's headline property
//! cluster.shutdown();
//! ```

pub mod demo;
pub mod workload;

pub use disks_baseline as baseline;
pub use disks_bench as bench;
pub use disks_cluster as cluster;
pub use disks_core as core;
pub use disks_partition as partition;
pub use disks_roadnet as roadnet;

/// Convenient glob-import of the most frequently used items.
pub mod prelude {
    pub use disks_baseline::centralized::CentralizedEngine;
    pub use disks_cluster::{Cluster, ClusterConfig};
    pub use disks_core::{
        build_all_indexes, DFunction, IndexConfig, NpdIndex, QClassQuery, RangeKeywordQuery,
        ScoreCombine, SetOp, SgkQuery, Term, TopKQuery,
    };
    pub use disks_partition::{
        BfsPartitioner, GridPartitioner, MultilevelPartitioner, Partitioner, Partitioning,
    };
    pub use disks_roadnet::generator::GridNetworkConfig;
    pub use disks_roadnet::{KeywordId, NodeId, RoadNetwork, RoadNetworkBuilder, INF};
}
