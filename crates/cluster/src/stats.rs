//! Per-query distributed statistics: communication, load balance (Thm. 6),
//! and the Theorem 5 cost-model aggregates.

use std::time::Duration;

use crate::message::{WireCost, EVAL_HIST_BUCKETS};
use crate::transport::NetworkModel;

/// Cost incurred by one machine for one query (summed over the fragments it
/// hosts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineCost {
    /// Fragments this machine evaluated for the query.
    pub fragments: Vec<u32>,
    /// Compute time (sum of task times on this machine).
    pub compute: Duration,
    /// Aggregated Theorem 5 counters.
    pub alpha: u64,
    pub beta: u64,
    pub settled: u64,
    pub coverage_nodes: u64,
    /// Result nodes this machine produced.
    pub results: u64,
    /// Bytes this machine sent back to the coordinator.
    pub response_bytes: u64,
    /// Coverage slots served from the intra-batch shared result map
    /// (0 outside batched dispatch; see `WireCost::batch_shared`).
    pub batch_shared: u64,
    /// Evaluator-thread busy time (µs) this machine spent on the query —
    /// commit-side elapsed plus any off-thread slot compute the query
    /// consumed. Equals `compute` on sequential workers; under a parallel
    /// pool `busy / compute` is the pool's utilization factor (> 1 means
    /// slots genuinely overlapped). Timing plane: never part of parity.
    pub busy_micros: u64,
    /// Log₂-bucketed per-slot evaluation latencies (µs) for the slots this
    /// machine computed off-thread (all zero on sequential workers; see
    /// `eval_hist_bucket`).
    pub eval_hist: [u32; EVAL_HIST_BUCKETS],
}

impl MachineCost {
    pub(crate) fn absorb(&mut self, fragment: u32, cost: &WireCost, results: u64, bytes: u64) {
        self.fragments.push(fragment);
        self.compute += Duration::from_micros(cost.elapsed_micros);
        self.alpha += cost.alpha;
        self.beta += cost.beta;
        self.settled += cost.settled;
        self.coverage_nodes += cost.coverage_nodes;
        self.results += results;
        self.response_bytes += bytes;
        self.batch_shared += cost.batch_shared;
        self.busy_micros += cost.busy_micros;
        for (bucket, n) in self.eval_hist.iter_mut().zip(cost.eval_hist) {
            *bucket += n;
        }
    }
}

/// Statistics for one distributed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStats {
    /// End-to-end wall-clock observed by the coordinator.
    pub wall_time: Duration,
    /// Per-machine costs (only machines that hosted ≥1 fragment).
    pub per_machine: Vec<MachineCost>,
    /// The slowest machine's compute time — the paper's response-time
    /// determinant ("the response time is determined by the slowest task").
    pub slowest_task: Duration,
    /// Theorem 6 unbalance factor `U = max cost / min cost` over busy
    /// machines (1.0 = perfect balance).
    pub unbalance_factor: f64,
    /// Bytes coordinator → workers (task assignment).
    pub coordinator_to_worker_bytes: u64,
    /// Bytes workers → coordinator (results).
    pub worker_to_coordinator_bytes: u64,
    /// Bytes exchanged between workers. Always 0 for the NPD-index runtime —
    /// no worker↔worker links exist (Theorem 3); the BSP baseline reports
    /// nonzero values here for contrast.
    pub inter_worker_bytes: u64,
    /// Communication rounds (coordinator dispatch + gather = 1).
    pub rounds: u32,
    /// Modeled response time under the configured [`NetworkModel`]:
    /// dispatch latency + slowest compute + slowest result transfer.
    pub modeled_response_time: Duration,
    /// Total result nodes.
    pub results: usize,
    /// Narrowed re-dispatches sent for fragments that failed transiently or
    /// never answered (0 on the fault-free fast path).
    pub retries: u32,
    /// Gather deadline expirations observed while serving this query.
    pub timeouts: u32,
    /// Dead workers detected and respawned while serving this query.
    pub respawned_workers: u32,
    /// Fragments that never answered within the retry budget; non-empty
    /// only when `ClusterConfig::allow_partial` accepted a degraded result.
    pub degraded_fragments: Vec<u32>,
    /// Responses discarded because their `(query_id, fragment)` was already
    /// recorded (duplicate frames; retried tasks are idempotent).
    pub duplicate_responses: u64,
    /// Response frames that failed to decode and were discarded.
    pub corrupt_frames: u64,
    /// Well-formed responses outside the active query window (stale answers
    /// from an earlier, already-resolved query), discarded.
    pub out_of_window_responses: u64,
    /// Worker coverage-cache hits across the tasks serving this query.
    pub cache_hits: u64,
    /// Worker coverage-cache misses across the tasks serving this query.
    pub cache_misses: u64,
    /// Worker coverage-cache evictions triggered while serving this query.
    pub cache_evictions: u64,
    /// Coverages refused at cache insert because their content was below
    /// the per-entry bookkeeping overhead (see `CacheCounters::bypassed`).
    pub cache_bypassed: u64,
    /// Theorem 5 estimated cost charged against the overload budget at
    /// admission (`QueryPlan::estimated_cost`; 0 when stats predate
    /// admission, e.g. defaults).
    pub estimated_cost: u64,
    /// Whether the query ran under brownout degradation: the pressure gauge
    /// was above `ClusterConfig::brownout`, so partial-result semantics
    /// applied regardless of `allow_partial`.
    pub browned_out: bool,
}

/// Cumulative recovery events over a cluster's lifetime (all queries,
/// including pipelined batches) — the coordinator's fault ledger, exposed
/// via `Cluster::recovery_counters`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Narrowed re-dispatches sent for stalled or transiently failed tasks.
    pub retries: u64,
    /// Gather deadline expirations (silence longer than the configured
    /// deadline).
    pub timeouts: u64,
    /// Dead worker threads detected and respawned.
    pub respawned_workers: u64,
    /// Responses dropped because their `(query_id, fragment)` already
    /// answered.
    pub duplicate_responses: u64,
    /// Response frames that failed to decode.
    pub corrupt_frames: u64,
    /// Well-formed responses outside the active gather window (stale
    /// answers to abandoned queries).
    pub out_of_window_responses: u64,
    /// `Prewarm` frames sent to respawned workers (one per respawn with a
    /// non-empty heat map and caching enabled).
    pub prewarm_frames: u64,
    /// Coverage slots shipped in those `Prewarm` frames.
    pub prewarmed_slots: u64,
    /// `SlotUnknown` NACKs received for elided batch frames whose slot
    /// references a (typically respawned) worker could not resolve; each is
    /// repaired by a narrowed full-spec re-dispatch counted in `retries`.
    pub slot_nacks: u64,
    /// Narrowed retries moved to a *different* replica of their fragment
    /// (replicated placements only — always 0 under `DISKS_REPLICAS=0`);
    /// each is counted in `retries` too.
    pub reroutes: u64,
    /// Speculative hedge frames sent to an alternate replica for slots
    /// outstanding past the hedge deadline (`DISKS_HEDGE`; always 0 when
    /// off). Part of the extended coordinator→worker frame ledger:
    /// `c2w == dispatch + retries + prewarm + hedges + probes`.
    pub hedges: u64,
    /// Hedged fragments whose *first* answer came from the hedge target
    /// (the speculation won; the primary's late frame is deduped by the
    /// straggler ledger as a duplicate).
    pub hedge_wins: u64,
    /// Healthy/Suspect → Quarantined transitions (`DISKS_QUARANTINE`;
    /// always 0 when off).
    pub quarantines: u64,
    /// Quarantined → Healthy reinstatements after probation (consecutive
    /// probe acks with suspicion back below the suspect threshold).
    pub reinstatements: u64,
    /// `Probe` frames sent to quarantined machines (part of the extended
    /// c2w ledger above).
    pub probe_frames: u64,
}

impl QueryStats {
    /// Compute the derived fields from per-machine costs.
    pub(crate) fn finalize(mut self, network: &NetworkModel, request_bytes: u64) -> QueryStats {
        let busy: Vec<&MachineCost> =
            self.per_machine.iter().filter(|m| !m.fragments.is_empty()).collect();
        self.slowest_task = busy.iter().map(|m| m.compute).max().unwrap_or(Duration::ZERO);
        let max = busy.iter().map(|m| m.compute.as_nanos()).max().unwrap_or(0);
        let min = busy.iter().map(|m| m.compute.as_nanos()).min().unwrap_or(0);
        self.unbalance_factor = if min == 0 { 1.0 } else { max as f64 / min as f64 };
        let slowest_response = busy
            .iter()
            .map(|m| network.transfer_time(m.response_bytes))
            .max()
            .unwrap_or(Duration::ZERO);
        self.modeled_response_time =
            network.transfer_time(request_bytes) + self.slowest_task + slowest_response;
        self
    }

    /// Aggregate α across machines (Theorem 5).
    pub fn total_alpha(&self) -> u64 {
        self.per_machine.iter().map(|m| m.alpha).sum()
    }

    /// Aggregate settled nodes across machines.
    pub fn total_settled(&self) -> u64 {
        self.per_machine.iter().map(|m| m.settled).sum()
    }

    /// Aggregate evaluator busy time across machines (µs) — the numerator
    /// of the worker-pool utilization fraction `busy / compute`.
    pub fn total_busy_micros(&self) -> u64 {
        self.per_machine.iter().map(|m| m.busy_micros).sum()
    }

    /// Aggregate per-slot evaluation-latency histogram across machines
    /// (all zero on sequential workers).
    pub fn total_eval_hist(&self) -> [u64; EVAL_HIST_BUCKETS] {
        let mut out = [0u64; EVAL_HIST_BUCKETS];
        for m in &self.per_machine {
            for (total, n) in out.iter_mut().zip(m.eval_hist) {
                *total += u64::from(n);
            }
        }
        out
    }
}

impl Default for QueryStats {
    fn default() -> Self {
        QueryStats {
            wall_time: Duration::ZERO,
            per_machine: Vec::new(),
            slowest_task: Duration::ZERO,
            unbalance_factor: 1.0,
            coordinator_to_worker_bytes: 0,
            worker_to_coordinator_bytes: 0,
            inter_worker_bytes: 0,
            rounds: 1,
            modeled_response_time: Duration::ZERO,
            results: 0,
            retries: 0,
            timeouts: 0,
            respawned_workers: 0,
            degraded_fragments: Vec::new(),
            duplicate_responses: 0,
            corrupt_frames: 0,
            out_of_window_responses: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_bypassed: 0,
            estimated_cost: 0,
            browned_out: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_computes_unbalance_and_slowest() {
        let mut stats = QueryStats::default();
        let mut m1 = MachineCost::default();
        m1.absorb(0, &WireCost { elapsed_micros: 100, ..Default::default() }, 5, 50);
        let mut m2 = MachineCost::default();
        m2.absorb(1, &WireCost { elapsed_micros: 400, ..Default::default() }, 1, 10);
        stats.per_machine = vec![m1, m2];
        let out = stats.finalize(&NetworkModel::instant(), 32);
        assert_eq!(out.slowest_task, Duration::from_micros(400));
        assert!((out.unbalance_factor - 4.0).abs() < 1e-9);
        assert_eq!(out.modeled_response_time, Duration::from_micros(400));
    }

    #[test]
    fn idle_machines_excluded_from_unbalance() {
        let mut stats = QueryStats::default();
        let mut m1 = MachineCost::default();
        m1.absorb(0, &WireCost { elapsed_micros: 100, ..Default::default() }, 0, 8);
        stats.per_machine = vec![m1, MachineCost::default()];
        let out = stats.finalize(&NetworkModel::instant(), 0);
        assert!((out.unbalance_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn modeled_time_includes_network() {
        let mut stats = QueryStats::default();
        let mut m1 = MachineCost::default();
        m1.absorb(0, &WireCost { elapsed_micros: 0, ..Default::default() }, 0, 12_500_000);
        stats.per_machine = vec![m1];
        let out = stats.finalize(&NetworkModel::switch_100mbps(), 0);
        // 12.5 MB at 12.5 MB/s ≈ 1 s dominated by the response transfer.
        assert!(out.modeled_response_time >= Duration::from_secs(1));
    }
}
