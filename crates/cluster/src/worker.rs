//! Worker machines.
//!
//! A worker is an OS thread that owns the [`FragmentEngine`]s of the
//! fragments assigned to it — and nothing else. Its only I/O is the request
//! channel from the coordinator and the counted response link back. With
//! `worker_threads = 1` (the default) tasks for the fragments a machine
//! hosts are processed sequentially, modeling one CPU per machine (the
//! paper's machines evaluate their fragment's task in a single process);
//! with more threads an [`EvalPool`] fans the distinct coverage slots of a
//! frame out across evaluator threads and a serial commit pass replays the
//! results in slot-table order, so every byte on the wire and every cache
//! ledger mutation is identical to the serial worker (see `DESIGN.md` §6k).
//!
//! Engine evaluation runs under `catch_unwind`, so a panicking task becomes
//! a typed [`Response::Failed`] on the wire instead of a dead thread; a
//! thread that does die (simulated crash) is detected and respawned by the
//! coordinator.

use std::collections::{HashMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};

use disks_core::bitset::BitSet;
use disks_core::dfunc::{DTerm, Term};
use disks_core::{BiLevelIndex, CoverageStore, FragmentEngine, QueryCost, QueryError, QueryPlan};
use disks_roadnet::{DijkstraWorkspace, NodeId};

use crate::cache::CoverageCache;
use crate::message::{
    decode_frame, encode_frame, eval_hist_bucket, BatchAnswer, Request, Response, WireCost,
};
use crate::transport::LinkSender;

/// Injected lifecycle faults for one worker spawn (testing substrate; both
/// default to `None` in production spawns and in respawns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerFaults {
    /// Exit the thread (simulated machine crash) upon receiving the nth
    /// Evaluate/TopK request, before answering it.
    pub kill_on_request: Option<u64>,
    /// Panic while evaluating the nth request's first fragment task.
    pub panic_on_request: Option<u64>,
}

/// Render a caught panic payload for the typed wire error.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The engine a worker hosts for one fragment: a plain bounded/unbounded
/// [`FragmentEngine`], or a §5.5 [`BiLevelIndex`] pair that routes by the
/// query radius.
#[allow(clippy::large_enum_variant)] // one engine per fragment lives for the
                                     // worker's lifetime; boxing would only add indirection on the hot path
pub enum WorkerEngine {
    Single(FragmentEngine),
    BiLevel(BiLevelIndex),
}

impl WorkerEngine {
    /// The fragment this engine serves.
    pub fn fragment(&self) -> disks_partition::FragmentId {
        match self {
            WorkerEngine::Single(e) => e.fragment(),
            WorkerEngine::BiLevel(b) => b.fragment(),
        }
    }

    /// Evaluate a normalized plan on the hosted fragment, serving coverage
    /// slots from `cache` where possible (§5.5 bi-level pairs route to the
    /// level admitting the plan's max radius first — both levels are exact
    /// for any radius they admit, so cache entries are shared across
    /// levels).
    pub fn evaluate_plan(
        &mut self,
        plan: &QueryPlan,
        cache: &mut CoverageCache,
    ) -> Result<(Vec<NodeId>, QueryCost), QueryError> {
        let mut store = FragmentCacheStore { fragment: self.fragment().0, cache };
        self.evaluate_plan_with_store(plan, &mut store)
    }

    /// Evaluate a normalized plan against an arbitrary coverage store —
    /// the seam the batched path uses to layer intra-batch slot sharing
    /// over the per-worker LRU.
    pub fn evaluate_plan_with_store(
        &mut self,
        plan: &QueryPlan,
        store: &mut dyn CoverageStore,
    ) -> Result<(Vec<NodeId>, QueryCost), QueryError> {
        match self {
            WorkerEngine::Single(e) => e.evaluate_plan_with_cache(plan, store),
            WorkerEngine::BiLevel(b) => b.evaluate_plan_with_cache(plan, store),
        }
    }

    /// [`Self::evaluate_plan_with_store`] with a table of already-computed
    /// coverages — the serial commit half of the two-phase batch protocol.
    /// With an empty table this *is* the serial path.
    pub fn evaluate_plan_prefetched(
        &mut self,
        plan: &QueryPlan,
        store: &mut dyn CoverageStore,
        prefetched: &HashMap<(Term, u64), (Arc<BitSet>, QueryCost)>,
    ) -> Result<(Vec<NodeId>, QueryCost), QueryError> {
        match self {
            WorkerEngine::Single(e) => e.evaluate_plan_prefetched(plan, store, prefetched),
            WorkerEngine::BiLevel(b) => b.evaluate_plan_prefetched(plan, store, prefetched),
        }
    }

    /// The concrete engine a plan with the given max radius evaluates on —
    /// the §5.5 routing decision, read-only. Parallel slot evaluation must
    /// run each slot on the engine its *first referencing query* routes to,
    /// because primary and secondary record different per-slot costs.
    fn routed_engine(&self, max_radius: u64) -> &FragmentEngine {
        match self {
            WorkerEngine::Single(e) => e,
            WorkerEngine::BiLevel(b) => b.engine_for_ref(max_radius),
        }
    }

    /// Local top-k on the hosted fragment.
    pub fn topk_local(
        &mut self,
        q: &disks_core::TopKQuery,
    ) -> Result<(Vec<disks_core::Ranked>, QueryCost), QueryError> {
        match self {
            WorkerEngine::Single(e) => e.topk_local(q),
            WorkerEngine::BiLevel(b) => b.topk_local(q),
        }
    }
}

/// Adapts the worker's [`CoverageCache`] to one fragment's
/// [`CoverageStore`] view for the duration of a task.
struct FragmentCacheStore<'a> {
    fragment: u32,
    cache: &'a mut CoverageCache,
}

impl CoverageStore for FragmentCacheStore<'_> {
    fn lookup(&mut self, slot: &DTerm) -> Option<Arc<BitSet>> {
        self.cache.get(self.fragment, slot.term, slot.radius)
    }
    fn store(&mut self, slot: &DTerm, coverage: &Arc<BitSet>) {
        self.cache.insert(self.fragment, slot.term, slot.radius, coverage.clone());
    }
}

/// Layers the batch-shared result map over one fragment's LRU view for the
/// duration of a [`Request::Batch`]: the first query of the batch to
/// reference a slot resolves it through the LRU (counted as a hit or miss
/// exactly as on the single-query path); every later reference is served
/// from the shared map and counted in `WireCost::batch_shared` instead, so
/// the LRU ledger stays exact and the slot's Dijkstra runs at most once per
/// batch per fragment.
struct BatchStore<'a> {
    inner: FragmentCacheStore<'a>,
    resolved: HashMap<(Term, u64), Arc<BitSet>>,
    shared: u64,
}

impl CoverageStore for BatchStore<'_> {
    fn lookup(&mut self, slot: &DTerm) -> Option<Arc<BitSet>> {
        if let Some(cov) = self.resolved.get(&(slot.term, slot.radius)) {
            self.shared += 1;
            return Some(Arc::clone(cov));
        }
        let hit = self.inner.lookup(slot)?;
        self.resolved.insert((slot.term, slot.radius), Arc::clone(&hit));
        Some(hit)
    }
    fn store(&mut self, slot: &DTerm, coverage: &Arc<BitSet>) {
        self.resolved.insert((slot.term, slot.radius), Arc::clone(coverage));
        self.inner.store(slot, coverage);
    }
}

/// One coverage slot queued for off-thread evaluation: the slot spec plus a
/// raw pointer to the routed engine. The pointer is only dereferenced while
/// the worker thread is blocked inside [`EvalPool::run_round`], which holds
/// the engines borrowed; see the safety notes on [`EvalRound`].
struct EvalJob {
    term: Term,
    radius: u64,
    engine: *const FragmentEngine,
}

/// One round of slot evaluations, shared read-only with every helper
/// thread. Helpers claim jobs by atomically bumping `next` (work stealing
/// without a queue), so an expensive slot never blocks the cheap ones
/// behind it on one thread.
struct EvalRound {
    jobs: Vec<EvalJob>,
    next: AtomicUsize,
}

// SAFETY: `EvalRound` crosses threads carrying `*const FragmentEngine`.
// The pointers come from an immutable borrow of the worker's engines taken
// by `EvalPool::prefetch`, and `run_round` does not return until every job
// has been claimed and finished (all results received, or every helper's
// result sender dropped — which a helper only does after its last claimed
// job completes). The worker thread therefore cannot mutate an engine while
// any helper still dereferences these pointers; a helper may briefly
// outlive the round holding the `Arc<EvalRound>` itself, but after its last
// send it only touches `next`, never the engines. `coverage_with` takes
// `&self` — each helper brings its own `DijkstraWorkspace`, so concurrent
// slot evaluations share the engine read-only.
unsafe impl Send for EvalRound {}
unsafe impl Sync for EvalRound {}

/// Result of one evaluated job: `None` records a panic (or query error) —
/// the slot is simply absent from the prefetched table, so the serial
/// commit recomputes it in place and surfaces the identical failure at the
/// identical point.
struct EvalOutcome {
    job: usize,
    result: Option<(Arc<BitSet>, QueryCost)>,
    micros: u64,
}

type RoundMsg = (Arc<EvalRound>, Sender<EvalOutcome>);

/// Claim-and-evaluate loop shared by helpers and the worker thread itself.
fn run_jobs(round: &EvalRound, results: &Sender<EvalOutcome>, ws: &mut DijkstraWorkspace) {
    loop {
        let i = round.next.fetch_add(1, Ordering::Relaxed);
        let Some(job) = round.jobs.get(i) else { break };
        // SAFETY: see `EvalRound` — the engine outlives the round and is
        // only read.
        let engine = unsafe { &*job.engine };
        let start = Instant::now();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            engine.coverage_with(ws, job.term, job.radius)
        }));
        let micros = start.elapsed().as_micros() as u64;
        let result = match outcome {
            Ok(Ok(pair)) => Some(pair),
            // Typed query errors replay serially in commit (same error, same
            // point in the frame) — dropping the early copy keeps one code
            // path for failures.
            Ok(Err(_)) => None,
            Err(_) => {
                // The panic may have left the workspace mid-epoch (dirty
                // dial buckets); a fresh one re-arms lazily on first use.
                *ws = DijkstraWorkspace::new(0);
                None
            }
        };
        let _ = results.send(EvalOutcome { job: i, result, micros });
    }
}

fn helper_loop(rounds: Receiver<RoundMsg>) {
    let mut ws = DijkstraWorkspace::new(0);
    while let Ok((round, results)) = rounds.recv() {
        run_jobs(&round, &results, &mut ws);
    }
}

/// A slot's computed coverage with its query-cost accounting — what one
/// prefetch job produces and what the commit pass substitutes on a miss.
type SlotCoverage = (Arc<BitSet>, QueryCost);

/// Phase-1 output: per hosted-engine index, the coverages computed off the
/// serial path (keyed by slot) and the wall-clock each took. Empty when the
/// pool is serial or the frame has no uncached slots — the commit pass then
/// *is* the classic serial worker.
#[derive(Default)]
struct Prefetched {
    covs: HashMap<usize, HashMap<(Term, u64), SlotCoverage>>,
    micros: HashMap<usize, HashMap<(Term, u64), u64>>,
}

/// A worker's slot-evaluation pool: `threads - 1` long-lived helper threads
/// plus the worker thread itself, which participates in every round. With
/// `threads <= 1` no helpers are spawned and every request takes the
/// literal serial path. Helpers die with the pool (channel disconnect), so
/// a crashed-and-respawned worker never leaks evaluator threads.
pub struct EvalPool {
    helpers: Vec<Sender<RoundMsg>>,
    ws: DijkstraWorkspace,
}

impl EvalPool {
    pub fn new(machine_id: usize, threads: usize) -> EvalPool {
        let mut helpers = Vec::new();
        for h in 1..threads.max(1) {
            let (tx, rx) = crossbeam::channel::unbounded();
            let name = format!("disks-m{machine_id}-eval{h}");
            std::thread::Builder::new()
                .name(name)
                .spawn(move || helper_loop(rx))
                .expect("spawn evaluator thread");
            helpers.push(tx);
        }
        EvalPool { helpers, ws: DijkstraWorkspace::new(0) }
    }

    fn parallel(&self) -> bool {
        !self.helpers.is_empty()
    }

    /// Phase 1 of the two-phase protocol: walk the frame's queries in
    /// commit order, collect each distinct slot at its *first* non-skipped
    /// reference (routing it to the engine that reference would use), skip
    /// slots the cache predicts as hits, and evaluate the rest
    /// concurrently. The returned table never changes what commit does —
    /// only whether a given Dijkstra runs here (parallel) or there
    /// (serial fallback for predicted hits evicted mid-frame and for slots
    /// whose parallel evaluation panicked).
    fn prefetch(
        &mut self,
        engines: &[WorkerEngine],
        fragments: &[u32],
        queries: &[QueryPlan],
        presets: &[Option<QueryError>],
        inject_panic: bool,
        cache: &CoverageCache,
    ) -> Prefetched {
        if !self.parallel() {
            return Prefetched::default();
        }
        let mut jobs = Vec::new();
        let mut owners: Vec<(usize, (Term, u64))> = Vec::new();
        for (i, engine) in hosted_ref(engines, fragments) {
            let fragment = engine.fragment().0;
            let mut seen: HashSet<(Term, u64)> = HashSet::new();
            for (qi, qplan) in queries.iter().enumerate() {
                if presets[qi].is_some() {
                    continue; // NACKed in commit without evaluating
                }
                if inject_panic && i == 0 && qi == 0 {
                    continue; // commit panics this query before any slot work
                }
                let routed = engine.routed_engine(qplan.max_radius());
                for slot in qplan.slots() {
                    if !seen.insert((slot.term, slot.radius)) {
                        continue; // later references share the first result
                    }
                    if cache.peek(fragment, slot.term, slot.radius) {
                        continue; // predicted LRU hit: commit serves it
                    }
                    jobs.push(EvalJob {
                        term: slot.term,
                        radius: slot.radius,
                        engine: routed as *const FragmentEngine,
                    });
                    owners.push((i, (slot.term, slot.radius)));
                }
            }
        }
        if jobs.is_empty() {
            return Prefetched::default();
        }
        let results = self.run_round(jobs);
        let mut out = Prefetched::default();
        for ((i, key), outcome) in owners.into_iter().zip(results) {
            if let Some((pair, micros)) = outcome {
                out.covs.entry(i).or_default().insert(key, pair);
                out.micros.entry(i).or_default().insert(key, micros);
            }
        }
        out
    }

    /// Fan one round of jobs across the helpers and this thread; block
    /// until every job is accounted for. Results come back indexed, so the
    /// claim order (a scheduling artifact) never leaks into commit order.
    fn run_round(&mut self, jobs: Vec<EvalJob>) -> Vec<Option<(SlotCoverage, u64)>> {
        let n = jobs.len();
        let round = Arc::new(EvalRound { jobs, next: AtomicUsize::new(0) });
        let (tx, rx) = crossbeam::channel::unbounded();
        for helper in &self.helpers {
            // A dead helper (it would take a panic outside catch_unwind)
            // just means fewer claimants; the round still completes.
            let _ = helper.send((Arc::clone(&round), tx.clone()));
        }
        run_jobs(&round, &tx, &mut self.ws);
        drop(tx);
        let mut out: Vec<Option<(SlotCoverage, u64)>> = (0..n).map(|_| None).collect();
        let mut got = 0;
        while got < n {
            // Disconnect before `n` results means a helper died mid-claim;
            // its jobs stay `None` and fall back to serial recompute.
            let Ok(o) = rx.recv() else { break };
            out[o.job] = o.result.map(|pair| (pair, o.micros));
            got += 1;
        }
        out
    }
}

/// Fold the parallel-evaluation timing a query consumed into its wire cost:
/// `busy_micros` accumulates off-thread compute on top of the commit-side
/// elapsed time, and the latency histogram buckets each slot this query was
/// first to reference. Timing-plane only — these fields are excluded from
/// value parity, exactly like `elapsed_micros`.
fn attribute_parallel(
    wire: &mut WireCost,
    cost: &QueryCost,
    micros: Option<&HashMap<(Term, u64), u64>>,
) {
    let Some(per_slot) = micros else { return };
    for sc in &cost.per_slot {
        if sc.cached {
            continue;
        }
        if let Some(&us) = per_slot.get(&(sc.term, sc.radius)) {
            wire.busy_micros += us;
            wire.eval_hist[eval_hist_bucket(us)] += 1;
        }
    }
}

/// Run the worker loop until a `Shutdown` request, channel closure, or an
/// injected crash. Every request is answered statelessly from the hosted
/// engines — the coverage cache is a transparent accelerator, so
/// re-dispatched (retried) tasks remain idempotent by construction; a
/// respawned worker gets a fresh (cold) cache because the cache lives and
/// dies with the thread.
#[allow(clippy::too_many_arguments)]
pub fn worker_loop(
    machine_id: usize,
    mut engines: Vec<WorkerEngine>,
    requests: Receiver<Bytes>,
    responses: LinkSender,
    faults: WorkerFaults,
    cache_budget: usize,
    cache_heat: u32,
    threads: usize,
) {
    let mut cache = CoverageCache::with_heat(cache_budget, cache_heat);
    let mut pool = EvalPool::new(machine_id, threads);
    // Slot directory for reference elision: global slot id → full spec,
    // taught by the full-spec entries of `BatchRef` frames. Separate from
    // the coverage cache (evicting a coverage only costs a recompute from
    // the remembered spec, not a NACK) and, like the cache, it dies with
    // the thread — a respawned worker NACKs stale references.
    let mut directory: HashMap<u32, DTerm> = HashMap::new();
    let mut request_count: u64 = 0;
    while let Ok(frame) = requests.recv() {
        let request = match decode_frame::<Request>(frame) {
            Ok(r) => r,
            Err(_) => continue, // malformed frame: drop, as a server would
        };
        // Probes are health-plane traffic, not work: they do not advance the
        // request ordinal, so fault schedules keyed on "nth request" replay
        // identically whether or not quarantine probing is enabled.
        if !matches!(request, Request::Shutdown | Request::Probe { .. }) {
            request_count += 1;
            if faults.kill_on_request == Some(request_count) {
                return; // simulated machine crash: no response, thread gone
            }
        }
        let inject_panic = faults.panic_on_request == Some(request_count);
        match request {
            Request::Shutdown => break,
            Request::Probe { nonce } => {
                let ack = Response::ProbeAck { machine: machine_id as u32, nonce };
                if !responses.send(encode_frame(&ack)) {
                    return; // coordinator gone
                }
            }
            Request::TopK { query_id, query, fragments } => {
                for (i, engine) in hosted(&mut engines, &fragments) {
                    let fragment = engine.fragment().0;
                    let panic_now = inject_panic && i == 0;
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                        if panic_now {
                            panic!("injected evaluation fault");
                        }
                        engine.topk_local(&query)
                    }));
                    let frame = match outcome {
                        Ok(Ok((ranked, cost))) => {
                            let mut wire = WireCost::from(&cost);
                            wire.replica = machine_id as u64;
                            encode_frame(&Response::TopKResults {
                                query_id,
                                fragment,
                                ranked,
                                cost: wire,
                            })
                        }
                        Ok(Err(e)) => {
                            encode_frame(&Response::Failed { query_id, fragment, error: e })
                        }
                        Err(payload) => encode_frame(&Response::Failed {
                            query_id,
                            fragment,
                            error: QueryError::WorkerPanic(panic_message(payload)),
                        }),
                    };
                    if !responses.send(frame) {
                        return;
                    }
                }
            }
            Request::Evaluate { query_id, plan, fragments } => {
                // Phase 1 (no-op at threads = 1): evaluate the plan's
                // distinct uncached slots concurrently; the commit below
                // replays them in slot-table order through the same store.
                let prefetched = pool.prefetch(
                    &engines,
                    &fragments,
                    std::slice::from_ref(&plan),
                    &[None],
                    inject_panic,
                    &cache,
                );
                let empty = HashMap::new();
                for (i, engine) in hosted(&mut engines, &fragments) {
                    let fragment = engine.fragment().0;
                    let panic_now = inject_panic && i == 0;
                    let cache_before = cache.counters();
                    let ready = prefetched.covs.get(&i).unwrap_or(&empty);
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                        if panic_now {
                            panic!("injected evaluation fault");
                        }
                        let mut store = FragmentCacheStore { fragment, cache: &mut cache };
                        engine.evaluate_plan_prefetched(&plan, &mut store, ready)
                    }));
                    let frame = match outcome {
                        Ok(Ok((nodes, cost))) => {
                            let delta = cache.counters().since(&cache_before);
                            let mut wire = WireCost::from(&cost);
                            wire.cache_hits = delta.hits;
                            wire.cache_misses = delta.misses;
                            wire.cache_evictions = delta.evictions;
                            wire.cache_bypassed = delta.bypassed;
                            wire.replica = machine_id as u64;
                            attribute_parallel(&mut wire, &cost, prefetched.micros.get(&i));
                            encode_frame(&Response::Results {
                                query_id,
                                fragment,
                                nodes,
                                cost: wire,
                            })
                        }
                        Ok(Err(e)) => {
                            encode_frame(&Response::Failed { query_id, fragment, error: e })
                        }
                        Err(payload) => encode_frame(&Response::Failed {
                            query_id,
                            fragment,
                            error: QueryError::WorkerPanic(panic_message(payload)),
                        }),
                    };
                    if !responses.send(frame) {
                        return; // coordinator gone
                    }
                }
            }
            Request::Prewarm { slots, fragments } => {
                // Cold-cache fix for respawned workers: resolve each hot
                // coverage slot once per hosted fragment so retry traffic
                // lands on a warm cache. Fire-and-forget — no response
                // frame; failures (e.g. out-of-contract radii) are ignored
                // because pre-warming is purely an accelerator.
                for (_, engine) in hosted(&mut engines, &fragments) {
                    for slot in &slots {
                        let plan = QueryPlan::lower(&disks_core::DFunction::single(
                            slot.term,
                            slot.radius,
                        ));
                        let _ = panic::catch_unwind(AssertUnwindSafe(|| {
                            engine.evaluate_plan(&plan, &mut cache)
                        }));
                    }
                }
            }
            Request::Batch { base, plan, fragments } => {
                // Split once: each query evaluates through the shared-slot
                // store below, so per-query results are bit-identical to the
                // unbatched path while each distinct slot is resolved once.
                let queries = plan.split();
                let presets = vec![None; queries.len()];
                if !answer_batch(
                    machine_id,
                    &mut engines,
                    &fragments,
                    base,
                    &queries,
                    &presets,
                    inject_panic,
                    &mut cache,
                    &mut pool,
                    &responses,
                ) {
                    return;
                }
            }
            Request::BatchRef { base, plan, fragments } => {
                // Resolve slot references against the directory (full-spec
                // entries teach it as a side effect). Queries touching an
                // unknown id are NACKed typed — never evaluated against a
                // placeholder — while the rest of the batch proceeds
                // normally, bit-identical to a full-spec `Batch`.
                let resolved = plan.resolve(&mut directory);
                let queries = resolved.plan.split();
                let presets: Vec<Option<QueryError>> = resolved
                    .affected
                    .iter()
                    .map(|&hit| {
                        hit.then(|| QueryError::SlotUnknown { ids: resolved.unknown.clone() })
                    })
                    .collect();
                if !answer_batch(
                    machine_id,
                    &mut engines,
                    &fragments,
                    base,
                    &queries,
                    &presets,
                    inject_panic,
                    &mut cache,
                    &mut pool,
                    &responses,
                ) {
                    return;
                }
            }
        }
    }
}

/// Evaluate a batch of split per-query plans on every hosted fragment,
/// sharing slots through a per-fragment [`BatchStore`]. `presets[qi]`, when
/// set, short-circuits query `qi` to a typed failure without evaluating it
/// (the `BatchRef` NACK path). With a parallel pool the frame's distinct
/// uncached slots — across *all* hosted fragments — are evaluated
/// concurrently first; the loop below is then the commit pass, running the
/// unchanged serial protocol with each Dijkstra replaced by its prefetched
/// result. Returns `false` when the coordinator is gone.
#[allow(clippy::too_many_arguments)]
fn answer_batch(
    machine_id: usize,
    engines: &mut [WorkerEngine],
    fragments: &[u32],
    base: u64,
    queries: &[QueryPlan],
    presets: &[Option<QueryError>],
    inject_panic: bool,
    cache: &mut CoverageCache,
    pool: &mut EvalPool,
    responses: &LinkSender,
) -> bool {
    let prefetched = pool.prefetch(engines, fragments, queries, presets, inject_panic, cache);
    let empty = HashMap::new();
    for (i, engine) in hosted(engines, fragments) {
        let fragment = engine.fragment().0;
        let ready = prefetched.covs.get(&i).unwrap_or(&empty);
        let mut store = BatchStore {
            inner: FragmentCacheStore { fragment, cache: &mut *cache },
            resolved: HashMap::new(),
            shared: 0,
        };
        let mut answers = Vec::with_capacity(queries.len());
        for (qi, qplan) in queries.iter().enumerate() {
            if let Some(nack) = &presets[qi] {
                answers.push(BatchAnswer::Failed(nack.clone()));
                continue;
            }
            let panic_now = inject_panic && i == 0 && qi == 0;
            let cache_before = store.inner.cache.counters();
            let shared_before = store.shared;
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                if panic_now {
                    panic!("injected evaluation fault");
                }
                engine.evaluate_plan_prefetched(qplan, &mut store, ready)
            }));
            answers.push(match outcome {
                Ok(Ok((nodes, cost))) => {
                    let delta = store.inner.cache.counters().since(&cache_before);
                    let mut wire = WireCost::from(&cost);
                    wire.cache_hits = delta.hits;
                    wire.cache_misses = delta.misses;
                    wire.cache_evictions = delta.evictions;
                    wire.cache_bypassed = delta.bypassed;
                    wire.batch_shared = store.shared - shared_before;
                    wire.replica = machine_id as u64;
                    attribute_parallel(&mut wire, &cost, prefetched.micros.get(&i));
                    BatchAnswer::Results { nodes, cost: wire }
                }
                Ok(Err(e)) => BatchAnswer::Failed(e),
                Err(payload) => {
                    BatchAnswer::Failed(QueryError::WorkerPanic(panic_message(payload)))
                }
            });
        }
        let frame = encode_frame(&Response::BatchResults { base, fragment, answers });
        if !responses.send(frame) {
            return false;
        }
    }
    true
}

/// Iterate the hosted engines selected by a request's fragment filter
/// (empty = all), with a running index for per-request fault targeting.
fn hosted<'a>(
    engines: &'a mut [WorkerEngine],
    fragments: &'a [u32],
) -> impl Iterator<Item = (usize, &'a mut WorkerEngine)> {
    engines
        .iter_mut()
        .filter(move |e| fragments.is_empty() || fragments.contains(&e.fragment().0))
        .enumerate()
}

/// Read-only twin of [`hosted`] for the prefetch pass — identical filter
/// and enumeration, so hosted indices line up between the two phases.
fn hosted_ref<'a>(
    engines: &'a [WorkerEngine],
    fragments: &'a [u32],
) -> impl Iterator<Item = (usize, &'a WorkerEngine)> {
    engines
        .iter()
        .filter(move |e| fragments.is_empty() || fragments.contains(&e.fragment().0))
        .enumerate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireCost;
    use crate::transport::counted_link;
    use crossbeam::channel::unbounded;
    use disks_core::{build_all_indexes, DFunction, IndexConfig, Term};
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::KeywordId;

    #[test]
    fn worker_answers_and_shuts_down() {
        let net = GridNetworkConfig::tiny(60).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();

        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, counters) = counted_link();
        let handle = std::thread::spawn(move || {
            worker_loop(0, engines, req_rx, resp_tx, WorkerFaults::default(), 1 << 20, 0, 1)
        });

        let freqs = net.keyword_frequencies();
        let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
        let f = DFunction::single(Term::Keyword(top), 3 * net.avg_edge_weight());
        let plan = QueryPlan::lower(&f);
        req_tx
            .send(encode_frame(&Request::Evaluate { query_id: 1, plan, fragments: vec![] }))
            .unwrap();

        // Two fragments hosted → two responses.
        let mut fragments = Vec::new();
        for _ in 0..2 {
            let frame = resp_rx.recv().unwrap();
            match decode_frame::<Response>(frame).unwrap() {
                Response::Results { query_id, fragment, cost, .. } => {
                    assert_eq!(query_id, 1);
                    assert_ne!(cost, WireCost::default());
                    fragments.push(fragment);
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        fragments.sort_unstable();
        assert_eq!(fragments, vec![0, 1]);
        assert!(counters.bytes() > 0);

        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
    }

    /// Radius validation now happens at coordinator admission; the worker's
    /// last-line debug assert turns an out-of-contract plan into a typed
    /// `WorkerPanic` on the wire instead of a dead thread.
    #[test]
    #[cfg(debug_assertions)]
    fn out_of_contract_radius_becomes_typed_worker_panic() {
        let net = GridNetworkConfig::tiny(61).generate();
        let p = MultilevelPartitioner::default().partition(&net, 1);
        let cfg = IndexConfig::with_max_r(net.avg_edge_weight());
        let indexes = build_all_indexes(&net, &p, &cfg);
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();
        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, _) = counted_link();
        let handle = std::thread::spawn(move || {
            worker_loop(0, engines, req_rx, resp_tx, WorkerFaults::default(), 0, 0, 1)
        });
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 1_000_000_000);
        let plan = QueryPlan::lower(&f);
        req_tx
            .send(encode_frame(&Request::Evaluate { query_id: 2, plan, fragments: vec![] }))
            .unwrap();
        match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
            Response::Failed { query_id, error: QueryError::WorkerPanic(msg), .. } => {
                assert_eq!(query_id, 2);
                assert!(msg.contains("maxR"), "debug guard names the violated bound: {msg}");
            }
            other => panic!("expected WorkerPanic failure, got {other:?}"),
        }
        drop(req_tx); // channel closure also terminates the worker
        handle.join().unwrap();
    }

    /// Repeated plans hit the coverage cache: the second response reports
    /// hits, zero settled nodes, and the identical result set.
    #[test]
    fn repeated_plan_served_from_cache() {
        let net = GridNetworkConfig::tiny(66).generate();
        let p = MultilevelPartitioner::default().partition(&net, 1);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();
        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, _) = counted_link();
        let handle = std::thread::spawn(move || {
            worker_loop(0, engines, req_rx, resp_tx, WorkerFaults::default(), 1 << 20, 0, 1)
        });
        let freqs = net.keyword_frequencies();
        let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
        // A radius wide enough that the coverage clears the cache's
        // small-content bypass threshold (content ≥ `ENTRY_OVERHEAD`).
        let plan =
            QueryPlan::lower(&DFunction::single(Term::Keyword(top), 3 * net.avg_edge_weight()));
        for qid in 1..=2u64 {
            let req = Request::Evaluate { query_id: qid, plan: plan.clone(), fragments: vec![] };
            req_tx.send(encode_frame(&req)).unwrap();
        }
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
                Response::Results { query_id, nodes, cost, .. } => {
                    outcomes.push((query_id, nodes, cost))
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        outcomes.sort_by_key(|(qid, _, _)| *qid);
        let (_, cold_nodes, cold) = &outcomes[0];
        let (_, warm_nodes, warm) = &outcomes[1];
        assert_eq!(cold_nodes, warm_nodes, "cache hit never changes the answer");
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 1));
        assert_eq!((warm.cache_hits, warm.cache_misses), (1, 0));
        assert!(cold.settled > 0);
        assert_eq!(warm.settled, 0, "hit skips the coverage Dijkstra");
        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn malformed_frames_are_dropped() {
        let net = GridNetworkConfig::tiny(62).generate();
        let p = MultilevelPartitioner::default().partition(&net, 1);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();
        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, _) = counted_link();
        let handle = std::thread::spawn(move || {
            worker_loop(0, engines, req_rx, resp_tx, WorkerFaults::default(), 1 << 20, 0, 1)
        });
        req_tx.send(Bytes::from_static(&[0xde, 0xad])).unwrap();
        // Worker survives; a valid shutdown still works.
        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
        assert!(resp_rx.try_recv().is_err(), "no response to garbage");
    }

    fn spawn_worker(
        seed: u64,
        faults: WorkerFaults,
    ) -> (
        crossbeam::channel::Sender<Bytes>,
        crossbeam::channel::Receiver<Bytes>,
        std::thread::JoinHandle<()>,
        disks_roadnet::RoadNetwork,
    ) {
        let net = GridNetworkConfig::tiny(seed).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();
        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, _) = counted_link();
        let handle = std::thread::spawn(move || {
            worker_loop(0, engines, req_rx, resp_tx, faults, 1 << 20, 0, 1)
        });
        (req_tx, resp_rx, handle, net)
    }

    fn top_kw(net: &disks_roadnet::RoadNetwork) -> KeywordId {
        let freqs = net.keyword_frequencies();
        KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32)
    }

    #[test]
    fn injected_panic_becomes_typed_failed_response() {
        let faults = WorkerFaults { kill_on_request: None, panic_on_request: Some(1) };
        let (req_tx, resp_rx, handle, net) = spawn_worker(63, faults);
        let f = DFunction::single(Term::Keyword(top_kw(&net)), 3 * net.avg_edge_weight());
        let plan = QueryPlan::lower(&f);
        let request = Request::Evaluate { query_id: 1, plan: plan.clone(), fragments: vec![] };
        req_tx.send(encode_frame(&request)).unwrap();
        // First fragment panics (typed Failed), second still answers: the
        // thread survived the panic.
        let mut failed = 0;
        let mut ok = 0;
        for _ in 0..2 {
            match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
                Response::Failed { error: QueryError::WorkerPanic(msg), .. } => {
                    assert!(msg.contains("injected"));
                    failed += 1;
                }
                Response::Results { .. } => ok += 1,
                other => panic!("unexpected response: {other:?}"),
            }
        }
        assert_eq!((failed, ok), (1, 1));
        // The fault was one-shot: a retry of the same request succeeds.
        let retry = Request::Evaluate { query_id: 2, plan, fragments: vec![] };
        req_tx.send(encode_frame(&retry)).unwrap();
        for _ in 0..2 {
            match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
                Response::Results { query_id, .. } => assert_eq!(query_id, 2),
                other => panic!("retry must succeed, got {other:?}"),
            }
        }
        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn batch_request_shares_slots_and_isolates_failures() {
        use disks_core::SuperPlan;
        // A one-shot panic hits fragment 0's first query only; the rest of
        // the batch — including the same query on fragment 1 — still answers.
        let faults = WorkerFaults { kill_on_request: None, panic_on_request: Some(1) };
        let (req_tx, resp_rx, handle, net) = spawn_worker(67, faults);
        let kw = top_kw(&net);
        let r = 2 * net.avg_edge_weight();
        let shared = QueryPlan::lower(&DFunction::single(Term::Keyword(kw), r));
        let other = QueryPlan::lower(&DFunction::single(Term::Keyword(kw), 2 * r));
        let plans = vec![shared.clone(), other, shared];
        let req = Request::Batch { base: 10, plan: SuperPlan::merge(&plans), fragments: vec![] };
        req_tx.send(encode_frame(&req)).unwrap();

        let mut frames = Vec::new();
        for _ in 0..2 {
            match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
                Response::BatchResults { base, fragment, answers } => {
                    assert_eq!(base, 10);
                    assert_eq!(answers.len(), 3, "one answer per batched query");
                    frames.push((fragment, answers));
                }
                found => panic!("unexpected response: {found:?}"),
            }
        }
        frames.sort_by_key(|(fragment, _)| *fragment);
        let (_, f0) = &frames[0];
        let (_, f1) = &frames[1];
        assert!(
            matches!(&f0[0], BatchAnswer::Failed(QueryError::WorkerPanic(_))),
            "injected fault fails exactly the first query of the first fragment"
        );
        for answer in f0[1..].iter().chain(f1.iter()) {
            assert!(matches!(answer, BatchAnswer::Results { .. }));
        }
        // On the untouched fragment, queries 0 and 2 ran the same plan: the
        // first resolves the slot (LRU miss), the repeat is batch-shared —
        // identical nodes, no second Dijkstra, LRU ledger untouched.
        match (&f1[0], &f1[2]) {
            (
                BatchAnswer::Results { nodes: n0, cost: c0 },
                BatchAnswer::Results { nodes: n2, cost: c2 },
            ) => {
                assert_eq!(n0, n2, "slot sharing never changes the answer");
                assert_eq!((c0.cache_misses, c0.batch_shared), (1, 0));
                assert_eq!((c2.cache_hits, c2.cache_misses, c2.batch_shared), (0, 0, 1));
                assert!(c0.settled > 0);
                assert_eq!(c2.settled, 0, "shared slot skips the Dijkstra");
            }
            other => panic!("expected results, got {other:?}"),
        }
        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
    }

    /// One `BatchResults` frame per hosted fragment, sorted by fragment.
    fn recv_batch(
        resp_rx: &crossbeam::channel::Receiver<Bytes>,
        expect_base: u64,
    ) -> Vec<(u32, Vec<BatchAnswer>)> {
        let mut frames = Vec::new();
        for _ in 0..2 {
            match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
                Response::BatchResults { base, fragment, answers } => {
                    assert_eq!(base, expect_base);
                    frames.push((fragment, answers));
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        frames.sort_by_key(|(fragment, _)| *fragment);
        frames
    }

    /// The slot-reference elision contract, worker side: a reference-only
    /// frame to a cold directory NACKs every query typed (never evaluates a
    /// placeholder), a full-spec frame teaches the directory while
    /// answering, and the same reference-only frame then resolves to
    /// bit-identical answers.
    #[test]
    fn batch_ref_nacks_cold_references_then_answers_after_teaching() {
        use disks_core::{SlotIdTable, SuperPlan};
        use std::collections::HashSet;
        let (req_tx, resp_rx, handle, net) = spawn_worker(68, WorkerFaults::default());
        let kw = top_kw(&net);
        let r = 2 * net.avg_edge_weight();
        let a = QueryPlan::lower(&DFunction::single(Term::Keyword(kw), r));
        let b = QueryPlan::lower(&DFunction::single(Term::Keyword(kw), 2 * r));
        let sp = SuperPlan::merge(&[a, b]);
        let mut table = SlotIdTable::new();
        let full = sp.try_elide(&mut table, &HashSet::new()).unwrap();
        assert_eq!(full.num_elided(), 0, "nothing believed yet");
        let ids: HashSet<u32> = full.slot_ids().collect();
        let refs = sp.try_elide(&mut table, &ids).unwrap();
        assert_eq!(refs.num_elided(), sp.num_slots(), "every slot elides");

        // Reference-only frame to a cold worker: the directory was never
        // taught, so every query NACKs with the sorted unknown ids.
        let req = Request::BatchRef { base: 10, plan: refs.clone(), fragments: vec![] };
        req_tx.send(encode_frame(&req)).unwrap();
        let mut want: Vec<u32> = ids.iter().copied().collect();
        want.sort_unstable();
        for (_, answers) in recv_batch(&resp_rx, 10) {
            assert_eq!(answers.len(), 2);
            for answer in &answers {
                match answer {
                    BatchAnswer::Failed(QueryError::SlotUnknown { ids: unknown }) => {
                        assert_eq!(unknown, &want, "NACK names the missing ids");
                    }
                    other => panic!("cold reference must NACK, got {other:?}"),
                }
            }
        }

        // Full-spec frame: answers and teaches the directory as a side effect.
        let req = Request::BatchRef { base: 20, plan: full, fragments: vec![] };
        req_tx.send(encode_frame(&req)).unwrap();
        let taught = recv_batch(&resp_rx, 20);

        // The same reference-only frame now resolves: identical answers.
        let req = Request::BatchRef { base: 30, plan: refs, fragments: vec![] };
        req_tx.send(encode_frame(&req)).unwrap();
        let elided = recv_batch(&resp_rx, 30);
        for ((tf, t), (ef, e)) in taught.iter().zip(&elided) {
            assert_eq!(tf, ef);
            assert_eq!(t.len(), e.len());
            for (ta, ea) in t.iter().zip(e) {
                match (ta, ea) {
                    (
                        BatchAnswer::Results { nodes: tn, .. },
                        BatchAnswer::Results { nodes: en, .. },
                    ) => assert_eq!(tn, en, "elided references never change the answer"),
                    other => panic!("expected results on both paths, got {other:?}"),
                }
            }
        }
        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn kill_fault_terminates_thread_without_response() {
        let faults = WorkerFaults { kill_on_request: Some(1), panic_on_request: None };
        let (req_tx, resp_rx, handle, net) = spawn_worker(64, faults);
        let f = DFunction::single(Term::Keyword(top_kw(&net)), net.avg_edge_weight());
        let plan = QueryPlan::lower(&f);
        req_tx
            .send(encode_frame(&Request::Evaluate { query_id: 1, plan, fragments: vec![] }))
            .unwrap();
        handle.join().unwrap(); // thread exits on the killed request
        assert!(resp_rx.try_recv().is_err(), "crashed worker must not respond");
    }

    #[test]
    fn fragment_filter_narrows_evaluation() {
        let (req_tx, resp_rx, handle, net) = spawn_worker(65, WorkerFaults::default());
        let f = DFunction::single(Term::Keyword(top_kw(&net)), 2 * net.avg_edge_weight());
        let plan = QueryPlan::lower(&f);
        req_tx
            .send(encode_frame(&Request::Evaluate { query_id: 1, plan, fragments: vec![1] }))
            .unwrap();
        match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
            Response::Results { fragment, .. } => assert_eq!(fragment, 1),
            other => panic!("unexpected response: {other:?}"),
        }
        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
        assert!(resp_rx.try_recv().is_err(), "only the narrowed fragment answers");
    }
}
