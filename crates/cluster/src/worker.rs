//! Worker machines.
//!
//! A worker is an OS thread that owns the [`FragmentEngine`]s of the
//! fragments assigned to it — and nothing else. Its only I/O is the request
//! channel from the coordinator and the counted response link back. Tasks
//! for the fragments a machine hosts are processed sequentially, modeling
//! one CPU per machine (the paper's machines evaluate their fragment's task
//! in a single process).

use bytes::Bytes;
use crossbeam::channel::Receiver;

use disks_core::{BiLevelIndex, DFunction, FragmentEngine, QueryCost, QueryError};
use disks_roadnet::NodeId;

use crate::message::{decode_frame, encode_frame, render_error, Request, Response};
use crate::transport::LinkSender;

/// The engine a worker hosts for one fragment: a plain bounded/unbounded
/// [`FragmentEngine`], or a §5.5 [`BiLevelIndex`] pair that routes by the
/// query radius.
#[allow(clippy::large_enum_variant)] // one engine per fragment lives for the
// worker's lifetime; boxing would only add indirection on the hot path
pub enum WorkerEngine {
    Single(FragmentEngine),
    BiLevel(BiLevelIndex),
}

impl WorkerEngine {
    /// The fragment this engine serves.
    pub fn fragment(&self) -> disks_partition::FragmentId {
        match self {
            WorkerEngine::Single(e) => e.fragment(),
            WorkerEngine::BiLevel(b) => b.fragment(),
        }
    }

    /// Evaluate a D-function on the hosted fragment.
    pub fn evaluate(&mut self, f: &DFunction) -> Result<(Vec<NodeId>, QueryCost), QueryError> {
        match self {
            WorkerEngine::Single(e) => e.evaluate(f),
            WorkerEngine::BiLevel(b) => b.evaluate(f).map(|(n, c, _served)| (n, c)),
        }
    }

    /// Local top-k on the hosted fragment.
    pub fn topk_local(
        &mut self,
        q: &disks_core::TopKQuery,
    ) -> Result<(Vec<disks_core::Ranked>, QueryCost), QueryError> {
        match self {
            WorkerEngine::Single(e) => e.topk_local(q),
            WorkerEngine::BiLevel(b) => b.topk_local(q),
        }
    }
}

/// Run the worker loop until a `Shutdown` request or channel closure.
pub fn worker_loop(
    machine_id: usize,
    mut engines: Vec<WorkerEngine>,
    requests: Receiver<Bytes>,
    responses: LinkSender,
) {
    let _ = machine_id;
    while let Ok(frame) = requests.recv() {
        let request = match decode_frame::<Request>(frame) {
            Ok(r) => r,
            Err(_) => continue, // malformed frame: drop, as a server would
        };
        match request {
            Request::Shutdown => break,
            Request::TopK { query_id, query } => {
                for engine in &mut engines {
                    let fragment = engine.fragment().0;
                    let frame = match engine.topk_local(&query) {
                        Ok((ranked, cost)) => encode_frame(&Response::TopKResults {
                            query_id,
                            fragment,
                            ranked,
                            cost: (&cost).into(),
                        }),
                        Err(e) => encode_frame(&Response::Failed {
                            query_id,
                            fragment,
                            error: render_error(&e),
                        }),
                    };
                    if !responses.send(frame) {
                        return;
                    }
                }
            }
            Request::Evaluate { query_id, dfunction } => {
                for engine in &mut engines {
                    let fragment = engine.fragment().0;
                    let frame = match engine.evaluate(&dfunction) {
                        Ok((nodes, cost)) => encode_frame(&Response::Results {
                            query_id,
                            fragment,
                            nodes,
                            cost: (&cost).into(),
                        }),
                        Err(e) => encode_frame(&Response::Failed {
                            query_id,
                            fragment,
                            error: render_error(&e),
                        }),
                    };
                    if !responses.send(frame) {
                        return; // coordinator gone
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireCost;
    use crate::transport::counted_link;
    use crossbeam::channel::unbounded;
    use disks_core::{build_all_indexes, DFunction, IndexConfig, Term};
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::KeywordId;

    #[test]
    fn worker_answers_and_shuts_down() {
        let net = GridNetworkConfig::tiny(60).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();

        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, counters) = counted_link();
        let handle = std::thread::spawn(move || worker_loop(0, engines, req_rx, resp_tx));

        let freqs = net.keyword_frequencies();
        let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
        let f = DFunction::single(Term::Keyword(top), 3 * net.avg_edge_weight());
        req_tx.send(encode_frame(&Request::Evaluate { query_id: 1, dfunction: f })).unwrap();

        // Two fragments hosted → two responses.
        let mut fragments = Vec::new();
        for _ in 0..2 {
            let frame = resp_rx.recv().unwrap();
            match decode_frame::<Response>(frame).unwrap() {
                Response::Results { query_id, fragment, cost, .. } => {
                    assert_eq!(query_id, 1);
                    assert_ne!(cost, WireCost::default());
                    fragments.push(fragment);
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        fragments.sort_unstable();
        assert_eq!(fragments, vec![0, 1]);
        assert!(counters.bytes() > 0);

        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn worker_reports_query_errors() {
        let net = GridNetworkConfig::tiny(61).generate();
        let p = MultilevelPartitioner::default().partition(&net, 1);
        let cfg = IndexConfig::with_max_r(net.avg_edge_weight());
        let indexes = build_all_indexes(&net, &p, &cfg);
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();
        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, _) = counted_link();
        let handle = std::thread::spawn(move || worker_loop(0, engines, req_rx, resp_tx));
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 1_000_000_000);
        req_tx.send(encode_frame(&Request::Evaluate { query_id: 2, dfunction: f })).unwrap();
        match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
            Response::Failed { query_id, error, .. } => {
                assert_eq!(query_id, 2);
                assert!(error.contains("maxR"));
            }
            other => panic!("expected failure, got {other:?}"),
        }
        drop(req_tx); // channel closure also terminates the worker
        handle.join().unwrap();
    }

    #[test]
    fn malformed_frames_are_dropped() {
        let net = GridNetworkConfig::tiny(62).generate();
        let p = MultilevelPartitioner::default().partition(&net, 1);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();
        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, _) = counted_link();
        let handle = std::thread::spawn(move || worker_loop(0, engines, req_rx, resp_tx));
        req_tx.send(Bytes::from_static(&[0xde, 0xad])).unwrap();
        // Worker survives; a valid shutdown still works.
        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
        assert!(resp_rx.try_recv().is_err(), "no response to garbage");
    }
}
