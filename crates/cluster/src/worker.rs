//! Worker machines.
//!
//! A worker is an OS thread that owns the [`FragmentEngine`]s of the
//! fragments assigned to it — and nothing else. Its only I/O is the request
//! channel from the coordinator and the counted response link back. Tasks
//! for the fragments a machine hosts are processed sequentially, modeling
//! one CPU per machine (the paper's machines evaluate their fragment's task
//! in a single process).
//!
//! Engine evaluation runs under `catch_unwind`, so a panicking task becomes
//! a typed [`Response::Failed`] on the wire instead of a dead thread; a
//! thread that does die (simulated crash) is detected and respawned by the
//! coordinator.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;

use disks_core::bitset::BitSet;
use disks_core::dfunc::DTerm;
use disks_core::{BiLevelIndex, CoverageStore, FragmentEngine, QueryCost, QueryError, QueryPlan};
use disks_roadnet::NodeId;

use crate::cache::CoverageCache;
use crate::message::{decode_frame, encode_frame, Request, Response, WireCost};
use crate::transport::LinkSender;

/// Injected lifecycle faults for one worker spawn (testing substrate; both
/// default to `None` in production spawns and in respawns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerFaults {
    /// Exit the thread (simulated machine crash) upon receiving the nth
    /// Evaluate/TopK request, before answering it.
    pub kill_on_request: Option<u64>,
    /// Panic while evaluating the nth request's first fragment task.
    pub panic_on_request: Option<u64>,
}

/// Render a caught panic payload for the typed wire error.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The engine a worker hosts for one fragment: a plain bounded/unbounded
/// [`FragmentEngine`], or a §5.5 [`BiLevelIndex`] pair that routes by the
/// query radius.
#[allow(clippy::large_enum_variant)] // one engine per fragment lives for the
                                     // worker's lifetime; boxing would only add indirection on the hot path
pub enum WorkerEngine {
    Single(FragmentEngine),
    BiLevel(BiLevelIndex),
}

impl WorkerEngine {
    /// The fragment this engine serves.
    pub fn fragment(&self) -> disks_partition::FragmentId {
        match self {
            WorkerEngine::Single(e) => e.fragment(),
            WorkerEngine::BiLevel(b) => b.fragment(),
        }
    }

    /// Evaluate a normalized plan on the hosted fragment, serving coverage
    /// slots from `cache` where possible (§5.5 bi-level pairs route to the
    /// level admitting the plan's max radius first — both levels are exact
    /// for any radius they admit, so cache entries are shared across
    /// levels).
    pub fn evaluate_plan(
        &mut self,
        plan: &QueryPlan,
        cache: &mut CoverageCache,
    ) -> Result<(Vec<NodeId>, QueryCost), QueryError> {
        let mut store = FragmentCacheStore { fragment: self.fragment().0, cache };
        match self {
            WorkerEngine::Single(e) => e.evaluate_plan_with_cache(plan, &mut store),
            WorkerEngine::BiLevel(b) => b.evaluate_plan_with_cache(plan, &mut store),
        }
    }

    /// Local top-k on the hosted fragment.
    pub fn topk_local(
        &mut self,
        q: &disks_core::TopKQuery,
    ) -> Result<(Vec<disks_core::Ranked>, QueryCost), QueryError> {
        match self {
            WorkerEngine::Single(e) => e.topk_local(q),
            WorkerEngine::BiLevel(b) => b.topk_local(q),
        }
    }
}

/// Adapts the worker's [`CoverageCache`] to one fragment's
/// [`CoverageStore`] view for the duration of a task.
struct FragmentCacheStore<'a> {
    fragment: u32,
    cache: &'a mut CoverageCache,
}

impl CoverageStore for FragmentCacheStore<'_> {
    fn lookup(&mut self, slot: &DTerm) -> Option<Arc<BitSet>> {
        self.cache.get(self.fragment, slot.term, slot.radius)
    }
    fn store(&mut self, slot: &DTerm, coverage: &Arc<BitSet>) {
        self.cache.insert(self.fragment, slot.term, slot.radius, coverage.clone());
    }
}

/// Run the worker loop until a `Shutdown` request, channel closure, or an
/// injected crash. Every request is answered statelessly from the hosted
/// engines — the coverage cache is a transparent accelerator, so
/// re-dispatched (retried) tasks remain idempotent by construction; a
/// respawned worker gets a fresh (cold) cache because the cache lives and
/// dies with the thread.
pub fn worker_loop(
    machine_id: usize,
    mut engines: Vec<WorkerEngine>,
    requests: Receiver<Bytes>,
    responses: LinkSender,
    faults: WorkerFaults,
    cache_budget: usize,
) {
    let _ = machine_id;
    let mut cache = CoverageCache::new(cache_budget);
    let mut request_count: u64 = 0;
    while let Ok(frame) = requests.recv() {
        let request = match decode_frame::<Request>(frame) {
            Ok(r) => r,
            Err(_) => continue, // malformed frame: drop, as a server would
        };
        if !matches!(request, Request::Shutdown) {
            request_count += 1;
            if faults.kill_on_request == Some(request_count) {
                return; // simulated machine crash: no response, thread gone
            }
        }
        let inject_panic = faults.panic_on_request == Some(request_count);
        match request {
            Request::Shutdown => break,
            Request::TopK { query_id, query, fragments } => {
                for (i, engine) in hosted(&mut engines, &fragments) {
                    let fragment = engine.fragment().0;
                    let panic_now = inject_panic && i == 0;
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                        if panic_now {
                            panic!("injected evaluation fault");
                        }
                        engine.topk_local(&query)
                    }));
                    let frame = match outcome {
                        Ok(Ok((ranked, cost))) => encode_frame(&Response::TopKResults {
                            query_id,
                            fragment,
                            ranked,
                            cost: (&cost).into(),
                        }),
                        Ok(Err(e)) => {
                            encode_frame(&Response::Failed { query_id, fragment, error: e })
                        }
                        Err(payload) => encode_frame(&Response::Failed {
                            query_id,
                            fragment,
                            error: QueryError::WorkerPanic(panic_message(payload)),
                        }),
                    };
                    if !responses.send(frame) {
                        return;
                    }
                }
            }
            Request::Evaluate { query_id, plan, fragments } => {
                for (i, engine) in hosted(&mut engines, &fragments) {
                    let fragment = engine.fragment().0;
                    let panic_now = inject_panic && i == 0;
                    let cache_before = cache.counters();
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                        if panic_now {
                            panic!("injected evaluation fault");
                        }
                        engine.evaluate_plan(&plan, &mut cache)
                    }));
                    let frame = match outcome {
                        Ok(Ok((nodes, cost))) => {
                            let delta = cache.counters().since(&cache_before);
                            let mut wire = WireCost::from(&cost);
                            wire.cache_hits = delta.hits;
                            wire.cache_misses = delta.misses;
                            wire.cache_evictions = delta.evictions;
                            encode_frame(&Response::Results {
                                query_id,
                                fragment,
                                nodes,
                                cost: wire,
                            })
                        }
                        Ok(Err(e)) => {
                            encode_frame(&Response::Failed { query_id, fragment, error: e })
                        }
                        Err(payload) => encode_frame(&Response::Failed {
                            query_id,
                            fragment,
                            error: QueryError::WorkerPanic(panic_message(payload)),
                        }),
                    };
                    if !responses.send(frame) {
                        return; // coordinator gone
                    }
                }
            }
        }
    }
}

/// Iterate the hosted engines selected by a request's fragment filter
/// (empty = all), with a running index for per-request fault targeting.
fn hosted<'a>(
    engines: &'a mut [WorkerEngine],
    fragments: &'a [u32],
) -> impl Iterator<Item = (usize, &'a mut WorkerEngine)> {
    engines
        .iter_mut()
        .filter(move |e| fragments.is_empty() || fragments.contains(&e.fragment().0))
        .enumerate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireCost;
    use crate::transport::counted_link;
    use crossbeam::channel::unbounded;
    use disks_core::{build_all_indexes, DFunction, IndexConfig, Term};
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::KeywordId;

    #[test]
    fn worker_answers_and_shuts_down() {
        let net = GridNetworkConfig::tiny(60).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();

        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, counters) = counted_link();
        let handle = std::thread::spawn(move || {
            worker_loop(0, engines, req_rx, resp_tx, WorkerFaults::default(), 1 << 20)
        });

        let freqs = net.keyword_frequencies();
        let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
        let f = DFunction::single(Term::Keyword(top), 3 * net.avg_edge_weight());
        let plan = QueryPlan::lower(&f);
        req_tx
            .send(encode_frame(&Request::Evaluate { query_id: 1, plan, fragments: vec![] }))
            .unwrap();

        // Two fragments hosted → two responses.
        let mut fragments = Vec::new();
        for _ in 0..2 {
            let frame = resp_rx.recv().unwrap();
            match decode_frame::<Response>(frame).unwrap() {
                Response::Results { query_id, fragment, cost, .. } => {
                    assert_eq!(query_id, 1);
                    assert_ne!(cost, WireCost::default());
                    fragments.push(fragment);
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        fragments.sort_unstable();
        assert_eq!(fragments, vec![0, 1]);
        assert!(counters.bytes() > 0);

        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
    }

    /// Radius validation now happens at coordinator admission; the worker's
    /// last-line debug assert turns an out-of-contract plan into a typed
    /// `WorkerPanic` on the wire instead of a dead thread.
    #[test]
    #[cfg(debug_assertions)]
    fn out_of_contract_radius_becomes_typed_worker_panic() {
        let net = GridNetworkConfig::tiny(61).generate();
        let p = MultilevelPartitioner::default().partition(&net, 1);
        let cfg = IndexConfig::with_max_r(net.avg_edge_weight());
        let indexes = build_all_indexes(&net, &p, &cfg);
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();
        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, _) = counted_link();
        let handle = std::thread::spawn(move || {
            worker_loop(0, engines, req_rx, resp_tx, WorkerFaults::default(), 0)
        });
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 1_000_000_000);
        let plan = QueryPlan::lower(&f);
        req_tx
            .send(encode_frame(&Request::Evaluate { query_id: 2, plan, fragments: vec![] }))
            .unwrap();
        match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
            Response::Failed { query_id, error: QueryError::WorkerPanic(msg), .. } => {
                assert_eq!(query_id, 2);
                assert!(msg.contains("maxR"), "debug guard names the violated bound: {msg}");
            }
            other => panic!("expected WorkerPanic failure, got {other:?}"),
        }
        drop(req_tx); // channel closure also terminates the worker
        handle.join().unwrap();
    }

    /// Repeated plans hit the coverage cache: the second response reports
    /// hits, zero settled nodes, and the identical result set.
    #[test]
    fn repeated_plan_served_from_cache() {
        let net = GridNetworkConfig::tiny(66).generate();
        let p = MultilevelPartitioner::default().partition(&net, 1);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();
        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, _) = counted_link();
        let handle = std::thread::spawn(move || {
            worker_loop(0, engines, req_rx, resp_tx, WorkerFaults::default(), 1 << 20)
        });
        let freqs = net.keyword_frequencies();
        let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
        let plan = QueryPlan::lower(&DFunction::single(Term::Keyword(top), net.avg_edge_weight()));
        for qid in 1..=2u64 {
            let req = Request::Evaluate { query_id: qid, plan: plan.clone(), fragments: vec![] };
            req_tx.send(encode_frame(&req)).unwrap();
        }
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
                Response::Results { query_id, nodes, cost, .. } => {
                    outcomes.push((query_id, nodes, cost))
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        outcomes.sort_by_key(|(qid, _, _)| *qid);
        let (_, cold_nodes, cold) = &outcomes[0];
        let (_, warm_nodes, warm) = &outcomes[1];
        assert_eq!(cold_nodes, warm_nodes, "cache hit never changes the answer");
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 1));
        assert_eq!((warm.cache_hits, warm.cache_misses), (1, 0));
        assert!(cold.settled > 0);
        assert_eq!(warm.settled, 0, "hit skips the coverage Dijkstra");
        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn malformed_frames_are_dropped() {
        let net = GridNetworkConfig::tiny(62).generate();
        let p = MultilevelPartitioner::default().partition(&net, 1);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();
        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, _) = counted_link();
        let handle = std::thread::spawn(move || {
            worker_loop(0, engines, req_rx, resp_tx, WorkerFaults::default(), 1 << 20)
        });
        req_tx.send(Bytes::from_static(&[0xde, 0xad])).unwrap();
        // Worker survives; a valid shutdown still works.
        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
        assert!(resp_rx.try_recv().is_err(), "no response to garbage");
    }

    fn spawn_worker(
        seed: u64,
        faults: WorkerFaults,
    ) -> (
        crossbeam::channel::Sender<Bytes>,
        crossbeam::channel::Receiver<Bytes>,
        std::thread::JoinHandle<()>,
        disks_roadnet::RoadNetwork,
    ) {
        let net = GridNetworkConfig::tiny(seed).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|i| WorkerEngine::Single(FragmentEngine::new(&net, &p, i).unwrap()))
            .collect();
        let (req_tx, req_rx) = unbounded();
        let (resp_tx, resp_rx, _) = counted_link();
        let handle =
            std::thread::spawn(move || worker_loop(0, engines, req_rx, resp_tx, faults, 1 << 20));
        (req_tx, resp_rx, handle, net)
    }

    fn top_kw(net: &disks_roadnet::RoadNetwork) -> KeywordId {
        let freqs = net.keyword_frequencies();
        KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32)
    }

    #[test]
    fn injected_panic_becomes_typed_failed_response() {
        let faults = WorkerFaults { kill_on_request: None, panic_on_request: Some(1) };
        let (req_tx, resp_rx, handle, net) = spawn_worker(63, faults);
        let f = DFunction::single(Term::Keyword(top_kw(&net)), 3 * net.avg_edge_weight());
        let plan = QueryPlan::lower(&f);
        let request = Request::Evaluate { query_id: 1, plan: plan.clone(), fragments: vec![] };
        req_tx.send(encode_frame(&request)).unwrap();
        // First fragment panics (typed Failed), second still answers: the
        // thread survived the panic.
        let mut failed = 0;
        let mut ok = 0;
        for _ in 0..2 {
            match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
                Response::Failed { error: QueryError::WorkerPanic(msg), .. } => {
                    assert!(msg.contains("injected"));
                    failed += 1;
                }
                Response::Results { .. } => ok += 1,
                other => panic!("unexpected response: {other:?}"),
            }
        }
        assert_eq!((failed, ok), (1, 1));
        // The fault was one-shot: a retry of the same request succeeds.
        let retry = Request::Evaluate { query_id: 2, plan, fragments: vec![] };
        req_tx.send(encode_frame(&retry)).unwrap();
        for _ in 0..2 {
            match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
                Response::Results { query_id, .. } => assert_eq!(query_id, 2),
                other => panic!("retry must succeed, got {other:?}"),
            }
        }
        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn kill_fault_terminates_thread_without_response() {
        let faults = WorkerFaults { kill_on_request: Some(1), panic_on_request: None };
        let (req_tx, resp_rx, handle, net) = spawn_worker(64, faults);
        let f = DFunction::single(Term::Keyword(top_kw(&net)), net.avg_edge_weight());
        let plan = QueryPlan::lower(&f);
        req_tx
            .send(encode_frame(&Request::Evaluate { query_id: 1, plan, fragments: vec![] }))
            .unwrap();
        handle.join().unwrap(); // thread exits on the killed request
        assert!(resp_rx.try_recv().is_err(), "crashed worker must not respond");
    }

    #[test]
    fn fragment_filter_narrows_evaluation() {
        let (req_tx, resp_rx, handle, net) = spawn_worker(65, WorkerFaults::default());
        let f = DFunction::single(Term::Keyword(top_kw(&net)), 2 * net.avg_edge_weight());
        let plan = QueryPlan::lower(&f);
        req_tx
            .send(encode_frame(&Request::Evaluate { query_id: 1, plan, fragments: vec![1] }))
            .unwrap();
        match decode_frame::<Response>(resp_rx.recv().unwrap()).unwrap() {
            Response::Results { fragment, .. } => assert_eq!(fragment, 1),
            other => panic!("unexpected response: {other:?}"),
        }
        req_tx.send(encode_frame(&Request::Shutdown)).unwrap();
        handle.join().unwrap();
        assert!(resp_rx.try_recv().is_err(), "only the narrowed fragment answers");
    }
}
