//! The coordinator and cluster lifecycle.
//!
//! `Cluster::build` partitions responsibility: each worker thread receives
//! the [`FragmentEngine`]s of its assigned fragments (built from the global
//! network **once**, here — after that the global network is no longer
//! consulted by any worker), plus a request channel and a counted response
//! link. Queries fan out as one `Evaluate` frame per busy machine and gather
//! one `Results` frame per hosted fragment; the final result is the union of
//! per-fragment results (Lemma 1).
//!
//! # Failure model
//!
//! The gather loop never blocks indefinitely: it tracks which `(query_id,
//! fragment)` pairs have answered, treats prolonged silence as a stalled
//! task, and re-dispatches a *narrowed* `Evaluate` listing only the missing
//! fragments. Fragment tasks are stateless and idempotent, so retries and
//! duplicate deliveries are safe — duplicates are deduplicated by
//! `(query_id, fragment)` and Lemma 1's union is unchanged. A worker whose
//! thread died (send failure or finished join handle) is respawned from a
//! retained rebuild spec. After `max_attempts` dispatches a still-missing
//! fragment either fails the query with a typed
//! [`QueryError::WorkerTimeout`] or, under
//! [`ClusterConfig::allow_partial`], degrades the result and lists the
//! fragment in [`QueryStats::degraded_fragments`].

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::Child;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};

use bytes::Bytes;
use disks_core::{
    CostParams, DFunction, DTerm, DlScope, FragmentEngine, NpdIndex, QClassQuery, QueryError,
    QueryPlan, RangeKeywordQuery, SgkQuery, SlotIdTable, SuperPlan, Term,
};
use disks_partition::{FragmentId, Partitioning};
use disks_roadnet::{NodeId, RoadNetwork, INF};

use crate::adaptive::WindowController;
use crate::cache::CacheCounters;
use crate::framing;
use crate::health::{HealthBoard, HealthConfig, HealthDelta, HedgeMode, HEDGE_P99_MULTIPLE};
use crate::heat::HeatSnapshot;
use crate::message::{
    decode_frame, encode_frame, results_frame_len, BatchAnswer, Request, Response, WireCost,
};
use crate::overload::{backoff_delay, splitmix64, OverloadCounters, PressureGauge};
use crate::scheduler::{Placement, RoutePolicy};
use crate::stats::{MachineCost, QueryStats, RecoveryCounters};
use crate::transport::{
    counted_link, epoch_micros, loopback_pair, tcp_worker_endpoint, ChannelLink, FaultInjector,
    FaultPlan, HeartbeatConfig, Link, LinkCounters, LinkDirection, LinkSender, NetworkModel,
    TcpLink, TransportFaults, TransportKind,
};
use crate::worker::{worker_loop, WorkerEngine, WorkerFaults};

/// How many of the hottest coverage slots a freshly respawned worker is
/// pre-warmed with before any retry traffic reaches it.
const PREWARM_TOP_K: usize = 8;

/// How long the straggler drain waits for a frame the wire ledger says was
/// sent but that has not yet been consumed (crossing the TCP pumps takes
/// microseconds; a frame that misses this is lost and gets forgiven).
const STRAGGLER_GRACE: Duration = Duration::from_millis(25);

/// Admissions between slot-heat decay epochs: every `HEAT_EPOCH` admitted
/// queries the ledger halves every count (dropping zeros), so heat tracks
/// recent traffic instead of the whole lifetime.
const HEAT_EPOCH: u64 = 1024;

/// Hard size cap on the slot-heat ledger: past it, only the hottest
/// `HEAT_CAP` slots are retained (deterministic rank: count descending,
/// then slot key), bounding coordinator memory on unbounded slot churn.
const HEAT_CAP: usize = 4096;

/// Deterministic total order on coverage-slot keys, used to break heat
/// ties: keyword slots before node slots, then id, then radius.
pub(crate) fn slot_key(&(term, radius): &(Term, u64)) -> (u8, u64, u64) {
    match term {
        Term::Keyword(kw) => (0, kw.0 as u64, radius),
        Term::Node(n) => (1, n.index() as u64, radius),
    }
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker machines; `None` = one per fragment (the paper's
    /// default deployment).
    pub machines: Option<usize>,
    /// Network model for modeled response times.
    pub network: NetworkModel,
    /// Maximum silence (no worker progress) the gather loop tolerates
    /// before declaring the outstanding fragments stalled and
    /// re-dispatching them.
    pub deadline: Duration,
    /// Total dispatch attempts per fragment task (initial + retries); at
    /// least 1.
    pub max_attempts: u32,
    /// When the retry budget is exhausted, return a degraded result listing
    /// the unanswered fragments instead of failing with
    /// [`QueryError::WorkerTimeout`].
    pub allow_partial: bool,
    /// Deterministic fault schedule injected into the links and workers
    /// (the fault-tolerance test substrate; `None` in production).
    pub faults: Option<FaultPlan>,
    /// Byte budget of each worker's coverage cache; `0` disables caching.
    /// The default honours the `DISKS_COVERAGE_CACHE` environment variable
    /// (bytes, or `0`/`off`/`false` to disable; unset → 64 MiB).
    pub coverage_cache_bytes: usize,
    /// Cross-query batching window for [`Cluster::run_pipelined`] /
    /// [`Cluster::run_batched`]: up to this many admitted plans are merged
    /// into one [`SuperPlan`] per worker per round. `0` or `1` disables
    /// batching (one `Evaluate` frame per query per worker). The default
    /// honours the `DISKS_BATCH` environment variable (a window size, or
    /// `0`/`1`/`off`/`false` to disable; unset → 16). `DISKS_BATCH=adaptive`
    /// keeps this as the *initial* window and sets
    /// [`ClusterConfig::batch_adaptive`].
    pub batch_window: usize,
    /// Latency-aware adaptive batching: the window size is chosen per batch
    /// by an AIMD [`WindowController`] seeded with `batch_window`, growing
    /// while a backlog waits and per-query p99 stays under
    /// [`ClusterConfig::batch_p99_target`], halving when it degrades.
    /// Adaptive windows also ship slot-reference–elided `BatchRef` frames
    /// to workers whose slot directory is believed warm. The default
    /// honours `DISKS_BATCH=adaptive` (any other value → fixed windows).
    pub batch_adaptive: bool,
    /// Time bound on an open adaptive window: ingress closes a window when
    /// it reaches the controller-chosen size *or* this much time has
    /// elapsed since it opened, whichever comes first — a latency floor for
    /// sparse streams. Ignored under fixed windows. The default honours the
    /// `DISKS_BATCH_WINDOW_MS` environment variable (milliseconds, or
    /// `0`/`off`/`false` for size-only closing; unset → 2 ms).
    pub batch_window_ms: Duration,
    /// Per-query p99 service-latency target (window dispatch → last
    /// fragment response) the adaptive controller steers toward. The
    /// default honours the `DISKS_BATCH_P99_US` environment variable
    /// (microseconds; unset or unparseable → 50 000 µs).
    pub batch_p99_target: Duration,
    /// Per-worker in-flight estimated-cost budget ([`disks_core::CostParams`]
    /// units) for cost-model admission; `0` disables overload control
    /// entirely. Queries whose cost cannot fit are shed with
    /// [`QueryError::Overloaded`] before any frame is encoded. The default
    /// honours the `DISKS_COST_LIMIT` environment variable (a cost, or
    /// `0`/`off`/`false` to disable; unset → disabled).
    pub cost_limit: u64,
    /// Fraction of [`ClusterConfig::cost_limit`] at which brownout
    /// degradation begins: above it the cluster serves partial results and
    /// sheds cache-cold queries rather than queueing more work.
    /// `f64::INFINITY` disables brownout; meaningless while `cost_limit` is
    /// 0. The default honours the `DISKS_BROWNOUT` environment variable (a
    /// fraction, or `0`/`off`/`false` to disable; unset → 0.75).
    pub brownout: f64,
    /// Base delay of the exponential, deterministically jittered backoff
    /// applied to narrowed per-fragment retries; `Duration::ZERO` retries
    /// immediately (the pre-backoff behavior). The default honours the
    /// `DISKS_RETRY_BACKOFF` environment variable (milliseconds, or
    /// `0`/`off`/`false` for immediate; unset → 2 ms).
    pub retry_backoff: Duration,
    /// Capacity (frames) of each worker's bounded request queue. The
    /// coordinator `try_send`s first and counts
    /// [`OverloadCounters::queue_full_events`] before falling back to a
    /// blocking send, so saturation is observed instead of absorbed.
    pub queue_capacity: usize,
    /// Transport carrying coordinator↔worker frames: in-process crossbeam
    /// channels, or loopback TCP sockets with length-prefixed framing,
    /// keepalives, and read-timeout supervision — same wire codec, same
    /// counters, same fault plans. The default honours the
    /// `DISKS_TRANSPORT` environment variable (`tcp` or `channel`; unset →
    /// `channel`).
    pub transport: TransportKind,
    /// TCP supervision timing — keepalive interval and read timeout.
    /// Ignored by the channel transport. The default honours
    /// `DISKS_HEARTBEAT_MS` and `DISKS_TCP_READ_TIMEOUT_MS` (milliseconds;
    /// unset → 100 ms / 1000 ms).
    pub heartbeat: HeartbeatConfig,
    /// Number of extra engine copies of every fragment hosted on machines
    /// other than its primary (`DESIGN.md` §6h). `0` disables replication —
    /// the placement and every transcript degenerate bit-for-bit to the
    /// single-owner assignment. Capped at `machines - 1`. The default
    /// honours the `DISKS_REPLICAS` environment variable (a count, or
    /// `0`/`off`/`false` to disable; unset → 0). Ignored by
    /// [`Cluster::build_remote`]: remote workers rebuild their own engines
    /// under the round-robin placement.
    pub replicas: usize,
    /// How the coordinator picks among a fragment's replicas per dispatch
    /// (meaningless while `replicas` is 0). The default honours the
    /// `DISKS_ROUTE` environment variable (`primary` or `least-loaded`;
    /// unset → `least-loaded`).
    pub route: RoutePolicy,
    /// Per-fragment heat estimates steering replica *placement* (hotter
    /// fragments claim the idlest machines first); one entry per fragment.
    /// `None` (the default) treats every fragment as equally hot. Set
    /// programmatically — e.g. from a profiling run's per-machine compute
    /// or a [`crate::HeatSnapshot`] profile — not from the environment.
    pub placement_heat: Option<Vec<u64>>,
    /// Heat-aware coverage-cache admission threshold (DESIGN.md §6i):
    /// slots looked up at least this many times resist eviction, one-shot
    /// slots are admitted at the eviction end; `0` keeps the plain LRU
    /// (bit-identical to the pre-layout cache). The default honours the
    /// `DISKS_CACHE_HEAT` environment variable (a lookup count, or
    /// `0`/`off`/`false` for plain LRU); unset, it follows `DISKS_LAYOUT`
    /// — 3 under `workload`, 0 under `static`.
    pub cache_heat: u32,
    /// Straggler hedging over replicas (DESIGN.md §6j): when a dispatched
    /// slot is still missing answers past the hedge deadline, the missing
    /// fragments are speculatively re-dispatched (narrowed) to a different
    /// live replica — first answer wins, the loser's late frame dedups as a
    /// duplicate. [`HedgeMode::Off`] (the default) is bit-identical to the
    /// pre-health cluster; a no-op without ≥1 replica. The default honours
    /// the `DISKS_HEDGE` environment variable (`off`/`fixed`/`adaptive`;
    /// unset → off).
    pub hedge: HedgeMode,
    /// Fixed hedge deadline ([`HedgeMode::Fixed`]) or adaptive-mode floor
    /// ([`HedgeMode::Adaptive`] hedges at `max(this, 4 × evaluation p99)`),
    /// in milliseconds. The default honours `DISKS_HEDGE_MS` (unset → 50).
    pub hedge_ms: u64,
    /// Quarantine with probation (DESIGN.md §6j): machines whose suspicion
    /// score crosses the health board's threshold are softly removed from
    /// least-loaded replica selection and probed under jittered backoff
    /// until reinstated; a fragment with no healthy host degrades to its
    /// least-suspect replica. Off (the default) is bit-identical to the
    /// pre-health cluster. The default honours the `DISKS_QUARANTINE`
    /// environment variable (`0`/`off`/`false` to disable; unset → off).
    pub quarantine: bool,
    /// Evaluator threads per worker (DESIGN.md §6k): `1` (the default) is
    /// the classic sequential worker, bit-for-bit; `n > 1` fans the
    /// distinct coverage slots of each frame across `n - 1` helper threads
    /// plus the worker thread, then commits serially — answers, cache/LRU
    /// ledgers, and wire bytes are identical to `1` at any thread count.
    /// The default honours the `DISKS_WORKER_THREADS` environment variable
    /// (a count, or `0`/`off`/`false` for sequential; unset → 1).
    pub worker_threads: usize,
}

impl ClusterConfig {
    /// Per-worker coverage-cache budget from `DISKS_COVERAGE_CACHE`
    /// (bytes, or `0`/`off`/`false` to disable); 64 MiB when unset or
    /// unparseable.
    pub fn coverage_cache_bytes_from_env() -> usize {
        const DEFAULT: usize = 64 << 20;
        match std::env::var("DISKS_COVERAGE_CACHE") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                    0
                } else {
                    v.parse().unwrap_or(DEFAULT)
                }
            }
            Err(_) => DEFAULT,
        }
    }

    /// Batching window from `DISKS_BATCH` (a window size, or
    /// `0`/`1`/`off`/`false` to disable batching); 16 when unset or
    /// unparseable.
    pub fn batch_window_from_env() -> usize {
        const DEFAULT: usize = 16;
        match std::env::var("DISKS_BATCH") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                    1
                } else {
                    v.parse().unwrap_or(DEFAULT).max(1)
                }
            }
            Err(_) => DEFAULT,
        }
    }

    /// Whether `DISKS_BATCH` selects adaptive batching (`adaptive`,
    /// case-insensitive).
    pub fn batch_adaptive_from_env() -> bool {
        std::env::var("DISKS_BATCH")
            .map(|v| v.trim().eq_ignore_ascii_case("adaptive"))
            .unwrap_or(false)
    }

    /// Adaptive window time bound from `DISKS_BATCH_WINDOW_MS`
    /// (milliseconds, or `0`/`off`/`false` for size-only window closing);
    /// 2 ms when unset or unparseable.
    pub fn batch_window_ms_from_env() -> Duration {
        const DEFAULT: Duration = Duration::from_millis(2);
        match std::env::var("DISKS_BATCH_WINDOW_MS") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") || v == "0" {
                    Duration::MAX
                } else {
                    v.parse().map(Duration::from_millis).unwrap_or(DEFAULT)
                }
            }
            Err(_) => DEFAULT,
        }
    }

    /// Adaptive p99 service-latency target from `DISKS_BATCH_P99_US`
    /// (microseconds); 50 000 µs when unset, unparseable, or zero.
    pub fn batch_p99_target_from_env() -> Duration {
        const DEFAULT: Duration = Duration::from_micros(50_000);
        match std::env::var("DISKS_BATCH_P99_US") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(us) if us > 0 => Duration::from_micros(us),
                _ => DEFAULT,
            },
            Err(_) => DEFAULT,
        }
    }

    /// Per-worker cost budget from `DISKS_COST_LIMIT` (a cost, or
    /// `0`/`off`/`false` to disable admission control); disabled when unset
    /// or unparseable.
    pub fn cost_limit_from_env() -> u64 {
        match std::env::var("DISKS_COST_LIMIT") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                    0
                } else {
                    v.parse().unwrap_or(0)
                }
            }
            Err(_) => 0,
        }
    }

    /// Brownout threshold from `DISKS_BROWNOUT` (a fraction of the cost
    /// budget, or `0`/`off`/`false` to disable brownout); 0.75 when unset
    /// or unparseable.
    pub fn brownout_from_env() -> f64 {
        const DEFAULT: f64 = 0.75;
        match std::env::var("DISKS_BROWNOUT") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                    f64::INFINITY
                } else {
                    match v.parse::<f64>() {
                        Ok(f) if f > 0.0 => f,
                        Ok(_) => f64::INFINITY,
                        Err(_) => DEFAULT,
                    }
                }
            }
            Err(_) => DEFAULT,
        }
    }

    /// Replica count from `DISKS_REPLICAS` (extra engine copies per
    /// fragment, or `0`/`off`/`false` to disable replication); disabled
    /// when unset or unparseable.
    pub fn replicas_from_env() -> usize {
        match std::env::var("DISKS_REPLICAS") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                    0
                } else {
                    v.parse().unwrap_or(0)
                }
            }
            Err(_) => 0,
        }
    }

    /// Replica routing policy from `DISKS_ROUTE` (`primary` or
    /// `least-loaded`); least-loaded when unset or unrecognised.
    pub fn route_from_env() -> RoutePolicy {
        match std::env::var("DISKS_ROUTE") {
            Ok(v) if v.trim().eq_ignore_ascii_case("primary") => RoutePolicy::Primary,
            _ => RoutePolicy::LeastLoaded,
        }
    }

    /// Cache heat-admission threshold from `DISKS_CACHE_HEAT` (a lookup
    /// count, or `0`/`off`/`false` for plain LRU). Unset or unparseable,
    /// the default follows the layout mode: 3 under
    /// `DISKS_LAYOUT=workload`, 0 (plain LRU) otherwise.
    pub fn cache_heat_from_env() -> u32 {
        let default = if disks_core::LayoutMode::from_env().is_workload() { 3 } else { 0 };
        match std::env::var("DISKS_CACHE_HEAT") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                    0
                } else {
                    v.parse().unwrap_or(default)
                }
            }
            Err(_) => default,
        }
    }

    /// Retry backoff base from `DISKS_RETRY_BACKOFF` (milliseconds, or
    /// `0`/`off`/`false` for immediate retries); 2 ms when unset or
    /// unparseable.
    pub fn retry_backoff_from_env() -> Duration {
        const DEFAULT: Duration = Duration::from_millis(2);
        match std::env::var("DISKS_RETRY_BACKOFF") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                    Duration::ZERO
                } else {
                    v.parse().map(Duration::from_millis).unwrap_or(DEFAULT)
                }
            }
            Err(_) => DEFAULT,
        }
    }

    /// Hedge mode from `DISKS_HEDGE` (`fixed`, `adaptive`, or
    /// `0`/`off`/`false` to disable); off when unset or unrecognised.
    pub fn hedge_from_env() -> HedgeMode {
        match std::env::var("DISKS_HEDGE") {
            Ok(v) if v.trim().eq_ignore_ascii_case("fixed") => HedgeMode::Fixed,
            Ok(v) if v.trim().eq_ignore_ascii_case("adaptive") => HedgeMode::Adaptive,
            _ => HedgeMode::Off,
        }
    }

    /// Hedge deadline / adaptive floor from `DISKS_HEDGE_MS` (milliseconds,
    /// minimum 1); 50 ms when unset or unparseable.
    pub fn hedge_ms_from_env() -> u64 {
        std::env::var("DISKS_HEDGE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(50)
            .max(1)
    }

    /// Quarantine switch from `DISKS_QUARANTINE` (anything but
    /// `0`/`off`/`false` enables); off when unset.
    pub fn quarantine_from_env() -> bool {
        match std::env::var("DISKS_QUARANTINE") {
            Ok(v) => {
                let v = v.trim();
                !(v.is_empty()
                    || v == "0"
                    || v.eq_ignore_ascii_case("off")
                    || v.eq_ignore_ascii_case("false"))
            }
            Err(_) => false,
        }
    }

    /// Evaluator threads per worker from `DISKS_WORKER_THREADS` (a count,
    /// or `0`/`off`/`false` for the sequential worker); 1 when unset or
    /// unparseable.
    pub fn worker_threads_from_env() -> usize {
        match std::env::var("DISKS_WORKER_THREADS") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
                    1
                } else {
                    v.parse().unwrap_or(1).max(1)
                }
            }
            Err(_) => 1,
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            machines: None,
            // The paper's setting: a 100 Mb TP-LINK switch.
            network: NetworkModel::switch_100mbps(),
            deadline: Duration::from_secs(30),
            max_attempts: 3,
            allow_partial: false,
            faults: None,
            coverage_cache_bytes: Self::coverage_cache_bytes_from_env(),
            batch_window: Self::batch_window_from_env(),
            batch_adaptive: Self::batch_adaptive_from_env(),
            batch_window_ms: Self::batch_window_ms_from_env(),
            batch_p99_target: Self::batch_p99_target_from_env(),
            cost_limit: Self::cost_limit_from_env(),
            brownout: Self::brownout_from_env(),
            retry_backoff: Self::retry_backoff_from_env(),
            queue_capacity: 1024,
            transport: TransportKind::from_env(),
            heartbeat: HeartbeatConfig::from_env(),
            replicas: Self::replicas_from_env(),
            route: Self::route_from_env(),
            placement_heat: None,
            cache_heat: Self::cache_heat_from_env(),
            hedge: Self::hedge_from_env(),
            hedge_ms: Self::hedge_ms_from_env(),
            quarantine: Self::quarantine_from_env(),
            worker_threads: Self::worker_threads_from_env(),
        }
    }
}

/// Result + statistics of one distributed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Union of per-fragment results, sorted by node id. When
    /// [`QueryStats::degraded_fragments`] is non-empty this is the union of
    /// the fragments that *did* answer.
    pub results: Vec<NodeId>,
    pub stats: QueryStats,
}

/// How a worker peer is hosted: an in-process thread (channel and loopback
/// TCP transports) or a separate OS process (remote clusters).
enum WorkerPeer {
    Thread(Option<JoinHandle<()>>),
    Process(Option<Child>),
}

impl WorkerPeer {
    /// Whether the peer has terminated (finished thread / exited process).
    fn is_dead(&mut self) -> bool {
        match self {
            WorkerPeer::Thread(join) => join.as_ref().is_none_or(|j| j.is_finished()),
            WorkerPeer::Process(child) => match child.as_mut() {
                None => true,
                Some(c) => c.try_wait().map(|s| s.is_some()).unwrap_or(true),
            },
        }
    }
}

/// Command line relaunched whenever a remote worker must be (re)spawned —
/// the process analogue of `RespawnSpec`'s engine rebuild. The program must
/// rebuild its machine's engines deterministically and connect back to the
/// coordinator's listener (see `src/bin/disks-worker.rs`).
#[derive(Debug, Clone)]
pub struct RemoteWorkerCommand {
    /// Worker executable path.
    pub program: PathBuf,
    /// Arguments identifying the machine and its workload.
    pub args: Vec<String>,
}

impl RemoteWorkerCommand {
    fn spawn(&self) -> io::Result<Child> {
        std::process::Command::new(&self.program).args(&self.args).spawn()
    }
}

struct WorkerHandle {
    /// The coordinator end of the worker's request link — [`ChannelLink`]
    /// or [`TcpLink`] behind the same seam, carrying this direction's
    /// counters and fault injector.
    link: Box<dyn Link>,
    to_faults: Option<Arc<FaultInjector>>,
    from_faults: Option<Arc<FaultInjector>>,
    /// Pump-level TCP faults (mid-frame cut, stalled socket). The Arcs'
    /// fired-ordinal state survives respawn, so one-shot nth-frame faults
    /// fire exactly once across reconnects.
    c2w_pump_faults: Option<Arc<TransportFaults>>,
    w2c_pump_faults: Option<Arc<TransportFaults>>,
    peer: WorkerPeer,
}

/// Everything needed to rebuild a dead worker's engines: the global network
/// and partitioning (cheap relative to the engines) plus the engine source.
struct RespawnSpec {
    net: RoadNetwork,
    partitioning: Partitioning,
    source: EngineSource,
}

enum EngineSource {
    /// Retained per-fragment NPD-indexes (`Cluster::build`).
    Indexes(Vec<NpdIndex>),
    /// §5.5 bi-level deployment: rebuilt from the primary index config.
    BiLevel(disks_core::IndexConfig),
    /// Remote workers: engines live in other processes; respawn relaunches
    /// the machine's command and re-accepts on the retained listener.
    Remote { listener: TcpListener, commands: Vec<RemoteWorkerCommand> },
}

impl RespawnSpec {
    fn build_engine(&self, f: FragmentId) -> WorkerEngine {
        match &self.source {
            EngineSource::Indexes(v) => WorkerEngine::Single(
                FragmentEngine::new(&self.net, &self.partitioning, &v[f.index()])
                    .expect("engine rebuild"),
            ),
            EngineSource::BiLevel(cfg) => WorkerEngine::BiLevel(
                disks_core::BiLevelIndex::build(&self.net, &self.partitioning, f, cfg)
                    .expect("bilevel rebuild"),
            ),
            EngineSource::Remote { .. } => {
                unreachable!("remote workers rebuild their own engines")
            }
        }
    }
}

/// Spawn one in-process worker over the selected transport, returning the
/// coordinator's [`Link`] end and the worker thread's join handle. The
/// worker loop itself is transport-agnostic — it always drains a frame
/// `Receiver` and answers through a counted [`LinkSender`]; under TCP those
/// ends are the socket pumps of [`tcp_worker_endpoint`].
#[allow(clippy::too_many_arguments)] // internal spawn plumbing
fn spawn_local_worker(
    m: usize,
    engines: Vec<WorkerEngine>,
    transport: TransportKind,
    heartbeat: HeartbeatConfig,
    queue_capacity: usize,
    cache_budget: usize,
    cache_heat: u32,
    worker_threads: usize,
    counters: Arc<LinkCounters>,
    to_faults: Option<Arc<FaultInjector>>,
    from_faults: Option<Arc<FaultInjector>>,
    c2w_pump_faults: Option<Arc<TransportFaults>>,
    w2c_pump_faults: Option<Arc<TransportFaults>>,
    worker_faults: WorkerFaults,
    resp_tx: &LinkSender,
) -> (Box<dyn Link>, JoinHandle<()>) {
    let spawn_thread = move |requests: Receiver<Bytes>, responses: LinkSender| {
        std::thread::Builder::new()
            .name(format!("disks-worker-{m}"))
            .spawn(move || {
                worker_loop(
                    m,
                    engines,
                    requests,
                    responses,
                    worker_faults,
                    cache_budget,
                    cache_heat,
                    worker_threads,
                )
            })
            .expect("spawn worker")
    };
    match transport {
        TransportKind::Channel => {
            let (req_tx, req_rx) = crossbeam::channel::bounded(queue_capacity.max(1));
            let responses = resp_tx.with_faults(from_faults);
            let join = spawn_thread(req_rx, responses);
            (Box::new(ChannelLink::new(req_tx, counters, to_faults)), join)
        }
        TransportKind::Tcp => {
            let (coordinator_side, worker_side) = loopback_pair().expect("loopback socket pair");
            let endpoint = tcp_worker_endpoint(worker_side, m, heartbeat, w2c_pump_faults)
                .expect("worker tcp endpoint");
            // The worker's sender shares the cluster-wide w2c counters and
            // fault injector, so the wire ledger and fault ordinals stay
            // identical to channel mode; the coordinator's ingress pump
            // must not count again (received = None).
            let responses = LinkSender::over(endpoint.egress, Arc::clone(resp_tx.counters()))
                .with_faults(from_faults);
            let join = spawn_thread(endpoint.requests, responses);
            let link = TcpLink::spawn(
                coordinator_side,
                m,
                counters,
                to_faults,
                c2w_pump_faults,
                resp_tx.raw(),
                None,
                heartbeat,
                queue_capacity,
            )
            .expect("coordinator tcp link");
            (Box::new(link), join)
        }
    }
}

/// Bookkeeping for one gather: recovery events observed plus the
/// `(slot, fragment)` pairs given up on under `allow_partial`.
#[derive(Debug, Default)]
struct GatherReport {
    retries: u32,
    timeouts: u32,
    respawned_workers: u32,
    duplicate_responses: u64,
    corrupt_frames: u64,
    out_of_window_responses: u64,
    /// `SlotUnknown` NACKs for elided frames, each repaired by a full-spec
    /// narrowed retry (counted in `retries` too).
    slot_nacks: u32,
    /// Narrowed retries moved to a *different* replica of their fragment
    /// (replicated placements only; counted in `retries` too).
    reroutes: u32,
    /// Speculative hedge frames sent for slots outstanding past the hedge
    /// deadline (`DISKS_HEDGE`; never counted in `retries` — attempts are
    /// untouched, the original dispatch stays outstanding).
    hedges: u32,
    /// Hedged fragments whose first answer came from the hedge target.
    hedge_wins: u32,
    degraded: Vec<(usize, u32)>,
    /// Worker coverage-cache activity summed over this gather's responses.
    cache: CacheCounters,
    /// Narrowed re-dispatches per query slot — keeps retry attribution
    /// per-query exact even when the original dispatch was batched.
    retries_by_slot: Vec<u32>,
}

/// Resumable gather bookkeeping: which query slots are active (dispatched),
/// which `(slot, fragment)` pairs answered, per-pair retry budgets, and
/// per-slot dispatch/completion timing. The all-at-once [`Cluster::gather`]
/// is a thin wrapper — activate every slot, then finish — while adaptive
/// streaming dispatch activates window by window, draining in-flight
/// responses between windows.
struct GatherState {
    n: usize,
    k: usize,
    allow_partial: bool,
    /// Whether each query slot has been dispatched yet.
    active: Vec<bool>,
    responded: Vec<Vec<bool>>,
    attempts: Vec<Vec<u32>>,
    report: GatherReport,
    /// Outstanding responses among active slots.
    missing: usize,
    missing_by_slot: Vec<usize>,
    /// Narrowed retries waiting out their backoff: (due, slot, fragments).
    pending_retries: Vec<(Instant, usize, Vec<u32>)>,
    stall_deadline: Instant,
    dispatched_at: Vec<Option<Instant>>,
    /// `(service, evaluation)` latency pairs of slots completed since the
    /// last `take_latencies` — the window controller's feedback signal.
    /// Service is dispatch → last fragment response; evaluation is the
    /// worker-reported time of the slot's slowest fragment, so the
    /// controller can separate queue wait from real work.
    latencies: Vec<(Duration, Duration)>,
    /// Per-slot maximum worker-reported evaluation time (µs) among the
    /// fragments answered so far.
    eval_micros: Vec<u64>,
    /// Deadline offset after which an outstanding slot is hedged (`None` =
    /// hedging off or no replicas to hedge onto). Refreshed per adaptive
    /// window so the adaptive deadline follows the evolving p99.
    hedge_after: Option<Duration>,
    /// Per-slot hedge deadline; cleared once the slot hedges (at most one
    /// hedge per slot) or is disarmed.
    hedge_at: Vec<Option<Instant>>,
    /// `(slot, fragment)` → machine the hedge was sent to, for win
    /// attribution when the first answer lands.
    hedge_targets: HashMap<(usize, u32), usize>,
}

impl GatherState {
    fn new(cluster: &Cluster, n: usize, allow_partial: bool) -> GatherState {
        let k = cluster.placement.num_fragments();
        GatherState {
            n,
            k,
            allow_partial,
            active: vec![false; n],
            responded: vec![vec![false; k]; n],
            attempts: vec![vec![1u32; k]; n],
            report: GatherReport { retries_by_slot: vec![0; n], ..GatherReport::default() },
            missing: 0,
            missing_by_slot: vec![0; n],
            pending_retries: Vec::new(),
            // The deadline measures *silence*, not total time: any
            // in-window frame resets it, so a long streak of slow-but-live
            // responses is never mistaken for a stall.
            stall_deadline: Instant::now() + cluster.deadline,
            dispatched_at: vec![None; n],
            latencies: Vec::new(),
            eval_micros: vec![0; n],
            hedge_after: cluster.hedge_after(),
            hedge_at: vec![None; n],
            hedge_targets: HashMap::new(),
        }
    }

    /// Mark slots `[from, to)` dispatched: their fragments join the
    /// outstanding set, their service-latency clocks start, and (when
    /// hedging is armed) their hedge deadlines are set.
    fn activate(&mut self, from: usize, to: usize) {
        let now = Instant::now();
        for slot in from..to {
            debug_assert!(!self.active[slot], "slot activated twice");
            self.active[slot] = true;
            self.missing += self.k;
            self.missing_by_slot[slot] = self.k;
            self.dispatched_at[slot] = Some(now);
            self.hedge_at[slot] = self.hedge_after.map(|d| now + d);
        }
    }

    /// Earliest pending hedge deadline among active slots still missing
    /// answers (`None` when hedging is off or nothing is armed).
    fn next_hedge_due(&self) -> Option<Instant> {
        (0..self.n)
            .filter(|&s| self.active[s] && self.missing_by_slot[s] > 0)
            .filter_map(|s| self.hedge_at[s])
            .min()
    }

    /// Record one answered `(slot, fragment)` pair, closing the slot's
    /// service-latency sample when its last fragment answers.
    fn note_answered(&mut self, slot: usize) {
        self.missing -= 1;
        self.missing_by_slot[slot] -= 1;
        if self.missing_by_slot[slot] == 0 {
            if let Some(t0) = self.dispatched_at[slot] {
                self.latencies.push((t0.elapsed(), Duration::from_micros(self.eval_micros[slot])));
            }
        }
    }

    /// Drain the `(service, evaluation)` latency samples accumulated since
    /// the last call.
    fn take_latencies(&mut self) -> Vec<(Duration, Duration)> {
        std::mem::take(&mut self.latencies)
    }
}

/// What the overload ladder decided for one query of a stream.
#[derive(Debug)]
enum Disposition {
    /// Queued in the current admission group; rewritten to `Ran` at flush.
    Pending,
    /// Rejected by validity admission before any grouping.
    Invalid(QueryError),
    /// Shed by cost admission with this `retry_after` (milliseconds).
    Shed(u64),
    /// Dispatched as slot `pos` of admission group `group`.
    Ran { group: usize, pos: usize },
}

/// One flushed admission group: its gather report (slot indices are
/// positions within the group) plus group-level outcome data.
struct GroupRun {
    /// Estimated cost per member, in group slot order.
    costs: Vec<u64>,
    report: GatherReport,
    /// Fatal gather error — every member query inherits it.
    error: Option<QueryError>,
    dispatch_respawns: u32,
    /// Offset from stream start when the group's gather completed; member
    /// queries report it as `wall_time`, making queueing delay visible.
    elapsed: Duration,
    /// Whether the group ran browned-out (partial-result semantics).
    browned: bool,
}

/// Result of [`Cluster::run_stream_core`]: per-query dispositions plus the
/// flushed groups they reference.
struct StreamRun {
    disposition: Vec<Disposition>,
    groups: Vec<GroupRun>,
}

/// A running share-nothing cluster.
pub struct Cluster {
    workers: RefCell<Vec<WorkerHandle>>,
    responses: Receiver<Bytes>,
    /// A retained sender half so the response channel never disconnects
    /// even if every worker is dead, and so respawned workers can be handed
    /// a fresh counted link.
    resp_tx: LinkSender,
    from_workers: Arc<LinkCounters>,
    /// Lifetime count of frames consumed off `responses`, matched against
    /// `from_workers.messages()` by the straggler drain in `gather_finish`
    /// so duplicate/late-frame attribution does not depend on how the
    /// transport's pump threads happen to be scheduled.
    consumed_responses: Cell<u64>,
    /// Frames the wire ledger says were sent but that the straggler drain
    /// gave up waiting for (dropped on the wire, torn mid-frame, stranded
    /// in a dead worker's egress queue) — forgiven so no later drain waits
    /// on them again.
    forgiven_responses: Cell<u64>,
    placement: Placement,
    /// How the coordinator picks among a fragment's replicas per dispatch.
    route_policy: RoutePolicy,
    /// The replica serving each fragment for the in-flight gather, set by
    /// [`Cluster::route_fragments`] at dispatch time. Gathers never overlap
    /// on the single-threaded coordinator, so one table suffices; narrowed
    /// retries rewrite entries when they move to a different replica.
    route: RefCell<Vec<usize>>,
    /// Cumulative estimated cost routed to each machine — the deterministic
    /// load signal `RoutePolicy::LeastLoaded` balances on.
    route_load: RefCell<Vec<u64>>,
    /// Per-fragment routing weight (the placement heat, uniform when none
    /// was given): each routed dispatch charges its target machine the
    /// fragment's weighted share of the dispatch cost, so hot fragments
    /// rotate across their replicas instead of pinning to one host.
    route_weight: Vec<u64>,
    /// Lifetime worker-reported evaluation time per machine (µs), credited
    /// to the replica named on each response frame — the observed compute
    /// behind [`Cluster::unbalance_factor`].
    compute_micros: RefCell<Vec<u64>>,
    /// Admissions since build, driving the slot-heat decay epochs.
    heat_admissions: Cell<u64>,
    network: NetworkModel,
    deadline: Duration,
    max_attempts: u32,
    allow_partial: bool,
    /// DL scope of the indexes, for query-location validation.
    dl_scope: DlScope,
    /// Global object bitmap: the coordinator validates RKQ locations before
    /// dispatch (workers cannot — they are share-nothing; see
    /// `FragmentEngine::coverage`).
    is_object: Vec<bool>,
    /// Largest radius the cluster admits: the indexes' `maxR` for a bounded
    /// single-level deployment, [`INF`] for unbounded or §5.5 bi-level
    /// deployments (whose secondary serves any radius).
    admission_max_r: u64,
    /// Byte budget handed to each worker's coverage cache (0 = disabled).
    cache_budget: usize,
    /// Heat-admission threshold of each worker's coverage cache (0 = plain
    /// LRU; respawn recreates like for like).
    cache_heat: u32,
    /// Evaluator threads per worker (1 = sequential; respawn recreates
    /// like for like).
    worker_threads: usize,
    /// Cross-query batching window (≤1 = unbatched dispatch). Under
    /// adaptive batching this is the controller's seed.
    batch_window: usize,
    /// Whether the batching window is chosen per batch by the AIMD
    /// controller (and elided `BatchRef` frames are used).
    batch_adaptive: bool,
    /// Time bound on an open adaptive window (`Duration::MAX` = size-only).
    batch_window_ms: Duration,
    /// The latency-aware window controller (adaptive mode only).
    controller: RefCell<WindowController>,
    /// Fragment-stable global slot ids, grown monotonically as slots are
    /// first dispatched — the coordinator side of reference elision.
    slot_ids: RefCell<SlotIdTable>,
    /// Per-machine slot ids the coordinator believes the worker's directory
    /// knows (taught by earlier `BatchRef` full-spec entries). Beliefs are
    /// *not* cleared on respawn: staleness is repaired by the worker's
    /// `SlotUnknown` NACK followed by a full-spec re-dispatch, so
    /// correctness never depends on this view being fresh.
    believed: RefCell<Vec<HashSet<u32>>>,
    /// Ring of recent per-query service latencies (µs, dispatch → last
    /// fragment response) from grouped runs on either dispatch path —
    /// drained by [`Cluster::take_service_latencies`] for benchmarking.
    service_lat: RefCell<VecDeque<u64>>,
    /// Ring of recent per-query *evaluation* latencies (µs, the
    /// worker-reported slowest fragment) — the adaptive hedge deadline's
    /// fixed-window fallback signal. Kept separate from `service_lat`
    /// deliberately: wire stalls inflate service latency (exactly the tail
    /// hedging recovers), and feeding recovered tails back into the
    /// deadline would run it away from the very stall it must beat.
    eval_lat: RefCell<VecDeque<u64>>,
    /// Capacity of each worker's bounded request queue.
    queue_capacity: usize,
    /// Transport of the worker links (respawn recreates like for like).
    transport: TransportKind,
    /// TCP supervision timing (unused by the channel transport).
    heartbeat: HeartbeatConfig,
    /// Theorem 5 cost-model parameters derived from the global network's
    /// keyword statistics, used to estimate plan cost at admission.
    cost_params: CostParams,
    /// The shared overload dial: in-flight estimated cost vs. the budget.
    gauge: PressureGauge,
    /// Backoff base for narrowed per-fragment retries (zero = immediate).
    retry_backoff: Duration,
    /// Dispatch counts per `(term, radius)` coverage slot — the brownout
    /// ladder's notion of cache-warm, and the pre-warm set for respawned
    /// workers.
    slot_heat: RefCell<HashMap<(Term, u64), u64>>,
    query_counter: Cell<u64>,
    respawn: RespawnSpec,
    recovery: Cell<RecoveryCounters>,
    /// Cumulative coverage-cache counters over the cluster's lifetime.
    cache: Cell<CacheCounters>,
    /// Straggler-hedging mode (`Off` = bit-identical to no health plane).
    hedge: HedgeMode,
    /// Fixed hedge deadline, or the adaptive mode's floor.
    hedge_floor: Duration,
    /// Whether quarantine (suspicion-filtered routing + probation probes)
    /// is enabled.
    quarantine: bool,
    /// Per-machine graded health: suspicion scores, quarantine state, and
    /// probe scheduling. Dormant (never fed or refreshed) unless hedging or
    /// quarantine is enabled.
    health: RefCell<HealthBoard>,
}

impl Cluster {
    /// Build engines from `indexes` and spawn the worker machines. The
    /// indexes are retained as the rebuild spec for worker respawn.
    ///
    /// # Panics
    /// Panics if `indexes` does not contain exactly one index per fragment
    /// of `partitioning`, in fragment order (as produced by
    /// [`disks_core::build_all_indexes`]).
    pub fn build(
        net: &RoadNetwork,
        partitioning: &Partitioning,
        indexes: Vec<NpdIndex>,
        config: ClusterConfig,
    ) -> Cluster {
        let k = partitioning.num_fragments();
        assert_eq!(indexes.len(), k, "one index per fragment required");
        for (i, idx) in indexes.iter().enumerate() {
            assert_eq!(idx.fragment().index(), i, "indexes must be in fragment order");
        }
        let dl_scope = indexes.first().map(|i| i.dl_scope()).unwrap_or(DlScope::ObjectsOnly);
        let admission_max_r = indexes.first().map(|i| i.max_r()).unwrap_or(INF);
        let spec = RespawnSpec {
            net: net.clone(),
            partitioning: partitioning.clone(),
            source: EngineSource::Indexes(indexes),
        };
        Self::build_from_spec(spec, dl_scope, admission_max_r, config)
    }

    /// Build a §5.5 **bi-level** cluster: every machine holds a bounded
    /// primary index (`config_primary.max_r`, which must be finite) plus an
    /// unbounded secondary, and routes each query by its largest radius —
    /// so queries with `r > maxR` are served instead of rejected.
    pub fn build_bilevel(
        net: &RoadNetwork,
        partitioning: &Partitioning,
        config_primary: &disks_core::IndexConfig,
        config: ClusterConfig,
    ) -> Cluster {
        let spec = RespawnSpec {
            net: net.clone(),
            partitioning: partitioning.clone(),
            source: EngineSource::BiLevel(*config_primary),
        };
        // The secondary level is unbounded, so no radius is inadmissible.
        Self::build_from_spec(spec, config_primary.dl_scope, INF, config)
    }

    fn build_from_spec(
        spec: RespawnSpec,
        dl_scope: DlScope,
        admission_max_r: u64,
        config: ClusterConfig,
    ) -> Cluster {
        let k = spec.partitioning.num_fragments();
        let machines = config.machines.unwrap_or(k).max(1);
        let uniform_heat = vec![1u64; k];
        let heat = config.placement_heat.as_deref().unwrap_or(&uniform_heat);
        assert!(
            config.placement_heat.is_none() || heat.len() == k,
            "placement_heat needs one entry per fragment"
        );
        let placement = Placement::replicated(k, machines, config.replicas, heat);
        let plan = config.faults;

        let (resp_tx, resp_rx, from_workers) = counted_link();
        let mut workers = Vec::with_capacity(machines);
        for m in 0..machines {
            let engines: Vec<WorkerEngine> =
                placement.fragments_of(m).iter().map(|&f| spec.build_engine(f)).collect();
            let counters = Arc::new(LinkCounters::default());
            let to_faults =
                plan.as_ref().and_then(|p| p.injector_for(m, LinkDirection::CoordinatorToWorker));
            let from_faults =
                plan.as_ref().and_then(|p| p.injector_for(m, LinkDirection::WorkerToCoordinator));
            let c2w_pump_faults = plan
                .as_ref()
                .and_then(|p| p.transport_faults_for(m, LinkDirection::CoordinatorToWorker));
            let w2c_pump_faults = plan
                .as_ref()
                .and_then(|p| p.transport_faults_for(m, LinkDirection::WorkerToCoordinator));
            let worker_faults = WorkerFaults {
                kill_on_request: plan.as_ref().and_then(|p| p.kill_request_for(m)),
                panic_on_request: plan.as_ref().and_then(|p| p.panic_request_for(m)),
            };
            let (link, join) = spawn_local_worker(
                m,
                engines,
                config.transport,
                config.heartbeat,
                config.queue_capacity.max(1),
                config.coverage_cache_bytes,
                config.cache_heat,
                config.worker_threads.max(1),
                counters,
                to_faults.clone(),
                from_faults.clone(),
                c2w_pump_faults.clone(),
                w2c_pump_faults.clone(),
                worker_faults,
                &resp_tx,
            );
            workers.push(WorkerHandle {
                link,
                to_faults,
                from_faults,
                c2w_pump_faults,
                w2c_pump_faults,
                peer: WorkerPeer::Thread(Some(join)),
            });
        }

        let is_object = spec.net.node_ids().map(|n| spec.net.is_object(n)).collect();
        let cost_params = CostParams::from_network(&spec.net);
        Cluster {
            workers: RefCell::new(workers),
            responses: resp_rx,
            resp_tx,
            from_workers,
            consumed_responses: Cell::new(0),
            forgiven_responses: Cell::new(0),
            route: RefCell::new(
                (0..k).map(|f| placement.machine_of(FragmentId(f as u32))).collect(),
            ),
            route_load: RefCell::new(vec![0; machines]),
            route_weight: heat.to_vec(),
            compute_micros: RefCell::new(vec![0; machines]),
            heat_admissions: Cell::new(0),
            placement,
            route_policy: config.route,
            network: config.network,
            deadline: config.deadline,
            max_attempts: config.max_attempts.max(1),
            allow_partial: config.allow_partial,
            dl_scope,
            is_object,
            admission_max_r,
            cache_budget: config.coverage_cache_bytes,
            cache_heat: config.cache_heat,
            worker_threads: config.worker_threads.max(1),
            batch_window: config.batch_window,
            batch_adaptive: config.batch_adaptive,
            batch_window_ms: config.batch_window_ms,
            controller: RefCell::new(WindowController::new(
                config.batch_window,
                config.batch_p99_target,
            )),
            slot_ids: RefCell::new(SlotIdTable::new()),
            believed: RefCell::new(vec![HashSet::new(); machines]),
            service_lat: RefCell::new(VecDeque::new()),
            eval_lat: RefCell::new(VecDeque::new()),
            queue_capacity: config.queue_capacity.max(1),
            transport: config.transport,
            heartbeat: config.heartbeat,
            cost_params,
            gauge: PressureGauge::new(config.cost_limit, config.brownout),
            retry_backoff: config.retry_backoff,
            slot_heat: RefCell::new(HashMap::new()),
            query_counter: Cell::new(0),
            respawn: spec,
            recovery: Cell::new(RecoveryCounters::default()),
            cache: Cell::new(CacheCounters::default()),
            hedge: config.hedge,
            hedge_floor: Duration::from_millis(config.hedge_ms.max(1)),
            quarantine: config.quarantine,
            health: RefCell::new(HealthBoard::new(
                machines,
                HealthConfig {
                    expected_interval: config.heartbeat.interval,
                    ..HealthConfig::default()
                },
            )),
        }
    }

    /// Build a cluster whose workers are separate OS processes connected
    /// over real TCP: spawn each [`RemoteWorkerCommand`], accept the
    /// connections on `listener` in arrival order (each worker's hello
    /// frame names its machine, so startup order is irrelevant), and run
    /// the same coordinator against the sockets. Command `m` must rebuild
    /// machine `m`'s engines deterministically under the same partitioning
    /// and connect back to the listener's address.
    ///
    /// `index_config` supplies the admission metadata (`max_r`, DL scope)
    /// the in-process builders read off the indexes themselves.
    ///
    /// # Panics
    /// Panics if `config.faults` is set — fault injectors live in-process
    /// and cannot reach remote workers.
    pub fn build_remote(
        net: &RoadNetwork,
        partitioning: &Partitioning,
        index_config: &disks_core::IndexConfig,
        config: ClusterConfig,
        listener: TcpListener,
        commands: Vec<RemoteWorkerCommand>,
    ) -> io::Result<Cluster> {
        assert!(config.faults.is_none(), "fault plans require in-process workers");
        let k = partitioning.num_fragments();
        let machines = commands.len().max(1);
        // Remote workers rebuild their own engines from seeds under the
        // round-robin placement (`workload::machine_engines`), so replication
        // knobs are ignored here — the placement is always single-owner.
        let placement = Placement::round_robin(k, machines);
        let (resp_tx, resp_rx, from_workers) = counted_link();

        // Launch every worker first, then accept whoever arrives.
        let mut children: Vec<Option<Child>> = Vec::with_capacity(machines);
        for c in &commands {
            children.push(Some(c.spawn()?));
        }
        let mut streams: Vec<Option<TcpStream>> = (0..machines).map(|_| None).collect();
        for _ in 0..machines {
            let (mut s, _) = listener.accept()?;
            let id = framing::read_hello(&mut s, Duration::from_secs(30))? as usize;
            if id >= machines || streams[id].is_some() {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "unexpected worker hello"));
            }
            streams[id] = Some(s);
        }
        let mut workers = Vec::with_capacity(machines);
        for (m, stream) in streams.into_iter().enumerate() {
            // Remote workers cannot share the coordinator's counters, so
            // the ingress pump counts w2c frames on receipt instead.
            let link = TcpLink::spawn(
                stream.expect("accepted above"),
                m,
                Arc::new(LinkCounters::default()),
                None,
                None,
                resp_tx.raw(),
                Some(Arc::clone(&from_workers)),
                config.heartbeat,
                config.queue_capacity.max(1),
            )?;
            workers.push(WorkerHandle {
                link: Box::new(link),
                to_faults: None,
                from_faults: None,
                c2w_pump_faults: None,
                w2c_pump_faults: None,
                peer: WorkerPeer::Process(children[m].take()),
            });
        }

        let spec = RespawnSpec {
            net: net.clone(),
            partitioning: partitioning.clone(),
            source: EngineSource::Remote { listener, commands },
        };
        let is_object = spec.net.node_ids().map(|n| spec.net.is_object(n)).collect();
        let cost_params = CostParams::from_network(&spec.net);
        Ok(Cluster {
            workers: RefCell::new(workers),
            responses: resp_rx,
            resp_tx,
            from_workers,
            consumed_responses: Cell::new(0),
            forgiven_responses: Cell::new(0),
            route: RefCell::new(
                (0..k).map(|f| placement.machine_of(FragmentId(f as u32))).collect(),
            ),
            route_load: RefCell::new(vec![0; machines]),
            route_weight: vec![1; k],
            compute_micros: RefCell::new(vec![0; machines]),
            heat_admissions: Cell::new(0),
            placement,
            route_policy: config.route,
            network: config.network,
            deadline: config.deadline,
            max_attempts: config.max_attempts.max(1),
            allow_partial: config.allow_partial,
            dl_scope: index_config.dl_scope,
            is_object,
            admission_max_r: index_config.max_r,
            cache_budget: config.coverage_cache_bytes,
            cache_heat: config.cache_heat,
            worker_threads: config.worker_threads.max(1),
            batch_window: config.batch_window,
            batch_adaptive: config.batch_adaptive,
            batch_window_ms: config.batch_window_ms,
            controller: RefCell::new(WindowController::new(
                config.batch_window,
                config.batch_p99_target,
            )),
            slot_ids: RefCell::new(SlotIdTable::new()),
            believed: RefCell::new(vec![HashSet::new(); machines]),
            service_lat: RefCell::new(VecDeque::new()),
            eval_lat: RefCell::new(VecDeque::new()),
            queue_capacity: config.queue_capacity.max(1),
            transport: TransportKind::Tcp,
            heartbeat: config.heartbeat,
            cost_params,
            gauge: PressureGauge::new(config.cost_limit, config.brownout),
            retry_backoff: config.retry_backoff,
            slot_heat: RefCell::new(HashMap::new()),
            query_counter: Cell::new(0),
            respawn: spec,
            recovery: Cell::new(RecoveryCounters::default()),
            cache: Cell::new(CacheCounters::default()),
            hedge: config.hedge,
            hedge_floor: Duration::from_millis(config.hedge_ms.max(1)),
            quarantine: config.quarantine,
            health: RefCell::new(HealthBoard::new(
                machines,
                HealthConfig {
                    expected_interval: config.heartbeat.interval,
                    ..HealthConfig::default()
                },
            )),
        })
    }

    /// Number of worker machines.
    pub fn num_machines(&self) -> usize {
        self.workers.borrow().len()
    }

    /// The fragment → machine placement in effect (primaries + replicas).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Theorem 6's unbalance factor `U` over the cluster lifetime: the
    /// maximum / minimum worker-reported evaluation time across busy
    /// machines, credited per response frame to the replica that served it.
    /// `1.0` while any busy machine has yet to report work (the per-query
    /// convention of [`QueryStats::finalize`]).
    pub fn unbalance_factor(&self) -> f64 {
        let compute = self.compute_micros.borrow();
        let busy: Vec<u64> = self.placement.busy_machines().map(|m| compute[m]).collect();
        let max = busy.iter().copied().max().unwrap_or(0);
        let min = busy.iter().copied().min().unwrap_or(0);
        if min == 0 {
            1.0
        } else {
            max as f64 / min as f64
        }
    }

    /// Cumulative recovery events observed over the cluster's lifetime
    /// (all queries, including pipelined batches).
    pub fn recovery_counters(&self) -> RecoveryCounters {
        self.recovery.get()
    }

    /// Cumulative worker coverage-cache counters over the cluster's
    /// lifetime (all queries, including pipelined batches), as reported on
    /// the response frames.
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.get()
    }

    /// Cumulative overload-control decisions (admitted / shed / browned-out
    /// queries, queue pauses and saturation events, initial-dispatch frames,
    /// and the `retry_after` histogram) over the cluster's lifetime.
    pub fn overload_counters(&self) -> OverloadCounters {
        self.gauge.counters()
    }

    /// Current measured pressure: in-flight estimated cost as a fraction of
    /// [`ClusterConfig::cost_limit`] (0.0 while overload control is off).
    pub fn pressure(&self) -> f64 {
        self.gauge.pressure()
    }

    /// Lifetime bytes sent over the coordinator→worker and
    /// worker→coordinator links. A delta of `(0, 0)` around a rejected
    /// query proves no worker ever saw it.
    pub fn link_totals(&self) -> (u64, u64) {
        self.link_bytes()
    }

    /// Admit a query plan (coordinator-side admission): every invalid query
    /// is rejected here, *before* any dispatch, with the same typed
    /// [`QueryError`] a centralized engine raises. Workers therefore assume
    /// admitted plans and only carry `debug_assert` guards.
    fn admit(&self, plan: &QueryPlan) -> Result<(), QueryError> {
        if plan.num_slots() == 0 {
            return Err(QueryError::EmptyQuery);
        }
        let r = plan.max_radius();
        if r > self.admission_max_r {
            return Err(QueryError::RadiusExceedsMaxR { r, max_r: self.admission_max_r });
        }
        for l in plan.locations() {
            if l.index() >= self.is_object.len() {
                return Err(QueryError::UnindexedQueryLocation(l));
            }
            if self.dl_scope == DlScope::ObjectsOnly && !self.is_object[l.index()] {
                return Err(QueryError::UnindexedQueryLocation(l));
            }
        }
        Ok(())
    }

    /// Whether machine `m` is gone: its peer terminated (finished thread,
    /// exited process) or its link supervisor declared the connection down
    /// (EOF, reset, framing loss, heartbeat miss).
    fn worker_is_dead(&self, m: usize) -> bool {
        let mut workers = self.workers.borrow_mut();
        let w = &mut workers[m];
        w.peer.is_dead() || w.link.is_down()
    }

    /// Tear down and relaunch machine `m` with freshly rebuilt engines (or
    /// a freshly respawned process for remote clusters). Respawned workers
    /// keep their fault-injector Arcs — ordinal state persists across the
    /// link rebuild — but never inherit one-shot kill/panic faults.
    ///
    /// The replacement starts with a cold coverage cache (the cache lived
    /// inside the dead worker), so before any retry traffic reaches it the
    /// coordinator queues a single `Prewarm` frame listing the hottest
    /// coverage slots by dispatch count — FIFO ordering guarantees the
    /// cache is repopulated before the first re-dispatched query arrives,
    /// instead of every hot slot missing at once (a thundering herd of
    /// cold Dijkstras).
    fn respawn_worker(&self, m: usize) {
        let mut workers = self.workers.borrow_mut();
        let w = &mut workers[m];
        // Closing first guarantees a TCP worker thread sees EOF and exits,
        // so the join below cannot hang on a half-dead peer.
        w.link.close();
        match &mut w.peer {
            WorkerPeer::Thread(join) => {
                if let Some(join) = join.take() {
                    let _ = join.join(); // thread already finished; reap it
                }
            }
            WorkerPeer::Process(child) => {
                if let Some(mut c) = child.take() {
                    let _ = c.kill();
                    let _ = c.wait();
                }
            }
        }
        let counters = Arc::clone(w.link.counters());
        if let EngineSource::Remote { listener, commands } = &self.respawn.source {
            let (link, child) = self
                .accept_remote_worker(listener, &commands[m], m, counters)
                .expect("respawn remote worker");
            w.link = link;
            w.peer = WorkerPeer::Process(Some(child));
        } else {
            let engines: Vec<WorkerEngine> = self
                .placement
                .fragments_of(m)
                .iter()
                .map(|&f| self.respawn.build_engine(f))
                .collect();
            let (link, join) = spawn_local_worker(
                m,
                engines,
                self.transport,
                self.heartbeat,
                self.queue_capacity,
                self.cache_budget,
                self.cache_heat,
                self.worker_threads,
                counters,
                w.to_faults.clone(),
                w.from_faults.clone(),
                w.c2w_pump_faults.clone(),
                w.w2c_pump_faults.clone(),
                WorkerFaults::default(),
                &self.resp_tx,
            );
            w.link = link;
            w.peer = WorkerPeer::Thread(Some(join));
        }
        if self.cache_budget > 0 {
            let slots = self.hottest_slots(PREWARM_TOP_K);
            if !slots.is_empty() {
                let num_slots = slots.len() as u64;
                let frame = encode_frame(&Request::Prewarm { slots, fragments: vec![] });
                let _ = w.link.deliver_unfaulted(&frame);
                let mut c = self.recovery.get();
                c.prewarm_frames += 1;
                c.prewarmed_slots += num_slots;
                self.recovery.set(c);
            }
        }
    }

    /// Accept the connection of a freshly respawned remote worker on the
    /// retained listener, polling with the same deterministic-jitter
    /// backoff narrowed retries use, and verify its hello names machine
    /// `m` (a stale stream from an earlier incarnation is dropped).
    fn accept_remote_worker(
        &self,
        listener: &TcpListener,
        command: &RemoteWorkerCommand,
        m: usize,
        counters: Arc<LinkCounters>,
    ) -> io::Result<(Box<dyn Link>, Child)> {
        let child = command.spawn()?;
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + Duration::from_secs(30);
        let base = if self.retry_backoff.is_zero() {
            Duration::from_millis(2)
        } else {
            self.retry_backoff
        };
        let mut attempt = 1u32;
        let stream = loop {
            match listener.accept() {
                Ok((mut s, _)) => {
                    s.set_nonblocking(false)?;
                    let id = framing::read_hello(&mut s, Duration::from_secs(10))?;
                    if id as usize == m {
                        break s;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "respawned worker never connected",
                        ));
                    }
                    let seed = splitmix64(0x00AC_CE97 ^ ((m as u64) << 32) ^ attempt as u64);
                    std::thread::sleep(backoff_delay(base, attempt.min(5), seed));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        };
        listener.set_nonblocking(false)?;
        let link = TcpLink::spawn(
            stream,
            m,
            counters,
            None,
            None,
            self.resp_tx.raw(),
            Some(Arc::clone(&self.from_workers)),
            self.heartbeat,
            self.queue_capacity,
        )?;
        Ok((Box::new(link) as Box<dyn Link>, child))
    }

    /// The `k` hottest coverage slots by lifetime dispatch count,
    /// deterministically ordered (count desc, then slot key).
    fn hottest_slots(&self, k: usize) -> Vec<DTerm> {
        let heat = self.slot_heat.borrow();
        let mut ranked: Vec<(&(Term, u64), &u64)> = heat.iter().collect();
        ranked
            .sort_unstable_by(|a, b| b.1.cmp(a.1).then_with(|| slot_key(a.0).cmp(&slot_key(b.0))));
        ranked.into_iter().take(k).map(|(&(term, radius), _)| DTerm { term, radius }).collect()
    }

    /// Export the slot-heat ledger as a portable [`HeatSnapshot`]: every
    /// tracked `(term, radius)` slot with its lifetime dispatch count,
    /// hottest first (count descending, ties by the deterministic slot
    /// key). Feed the snapshot's [`HeatSnapshot::to_profile`] into the
    /// offline layout pipeline (query-weighted refinement, observed-radius
    /// split, heat-seeded placement) to re-lay the cluster out around the
    /// workload it actually served.
    pub fn heat_snapshot(&self) -> HeatSnapshot {
        let heat = self.slot_heat.borrow();
        let mut ranked: Vec<((Term, u64), u64)> = heat.iter().map(|(&k, &v)| (k, v)).collect();
        ranked.sort_unstable_by(|a, b| {
            b.1.cmp(&a.1).then_with(|| slot_key(&a.0).cmp(&slot_key(&b.0)))
        });
        HeatSnapshot {
            entries: ranked.into_iter().map(|((term, r), count)| (term, r, count)).collect(),
        }
    }

    /// Record a plan's coverage slots in the heat map (admission time).
    ///
    /// The ledger is bounded two ways: every [`HEAT_EPOCH`] admissions all
    /// counts halve (dropping zeros), an exponential decay that keeps heat
    /// tracking *recent* traffic; and past [`HEAT_CAP`] distinct slots only
    /// the hottest cap survive, bounding memory under unbounded slot churn.
    fn charge_heat(&self, plan: &QueryPlan) {
        let mut heat = self.slot_heat.borrow_mut();
        for s in plan.slots() {
            *heat.entry((s.term, s.radius)).or_insert(0) += 1;
        }
        let admissions = self.heat_admissions.get() + 1;
        self.heat_admissions.set(admissions);
        if admissions.is_multiple_of(HEAT_EPOCH) {
            heat.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
        }
        if heat.len() > HEAT_CAP {
            let mut ranked: Vec<((Term, u64), u64)> = heat.drain().collect();
            ranked.sort_unstable_by(|a, b| {
                b.1.cmp(&a.1).then_with(|| slot_key(&a.0).cmp(&slot_key(&b.0)))
            });
            ranked.truncate(HEAT_CAP);
            heat.extend(ranked);
        }
    }

    /// Whether any of the plan's coverage slots has never been dispatched —
    /// the brownout ladder sheds such cache-cold queries first.
    fn has_cold_slot(&self, plan: &QueryPlan) -> bool {
        let heat = self.slot_heat.borrow();
        plan.slots().iter().any(|s| !heat.contains_key(&(s.term, s.radius)))
    }

    /// Whether the health plane is live: with both knobs off the board is
    /// never fed, refreshed, or consulted, keeping the default dispatch
    /// path bit-identical to the pre-health cluster.
    fn health_active(&self) -> bool {
        self.quarantine || self.hedge != HedgeMode::Off
    }

    /// Deadline offset after which an outstanding slot is hedged, or `None`
    /// when hedging is off or the placement has no replicas to hedge onto.
    /// Adaptive mode tracks [`HEDGE_P99_MULTIPLE`] × the observed
    /// evaluation p99 (window controller first, the evaluation-latency ring
    /// as the fixed-window fallback), floored at `DISKS_HEDGE_MS` — the
    /// floor also covers the cold start before any p99 exists. Both signals
    /// are *evaluation* time (worker-reported compute), never end-to-end
    /// service time: a stalled wire inflates service latency, and a
    /// deadline fed its own recovered tails would run away past the stall
    /// it exists to beat.
    fn hedge_after(&self) -> Option<Duration> {
        if !self.placement.is_replicated() {
            return None;
        }
        match self.hedge {
            HedgeMode::Off => None,
            HedgeMode::Fixed => Some(self.hedge_floor),
            HedgeMode::Adaptive => {
                let p99 = self.controller.borrow().p99().or_else(|| {
                    let ring = self.eval_lat.borrow();
                    let mut v: Vec<u64> = ring.iter().copied().collect();
                    if v.is_empty() {
                        return None;
                    }
                    v.sort_unstable();
                    Some(Duration::from_micros(v[(v.len() - 1) * 99 / 100]))
                });
                let adaptive = p99.map_or(Duration::ZERO, |p| p * HEDGE_P99_MULTIPLE);
                Some(adaptive.max(self.hedge_floor))
            }
        }
    }

    /// One pass of the health plane, piggybacked on gather wakes: fold the
    /// pump-exported arrival stamps into the board, re-grade every machine
    /// (folding quarantine/reinstatement transitions into the lifetime
    /// counters), and probe quarantined machines whose jittered backoff
    /// expired. No-op unless hedging or quarantine is enabled.
    fn health_tick(&self, respawned: &mut u32) {
        if !self.health_active() {
            return;
        }
        let now = epoch_micros();
        let delta = {
            let mut board = self.health.borrow_mut();
            {
                let workers = self.workers.borrow();
                for (m, w) in workers.iter().enumerate() {
                    if let Some(us) = w.link.last_arrival_micros() {
                        board.observe_arrival(m, us);
                    }
                }
            }
            board.refresh(now)
        };
        if delta != HealthDelta::default() {
            let mut c = self.recovery.get();
            c.quarantines += delta.quarantines;
            c.reinstatements += delta.reinstatements;
            self.recovery.set(c);
        }
        if !self.quarantine {
            return;
        }
        let due = self.health.borrow().due_probes(now);
        for m in due {
            // The probe ordinal doubles as the frame nonce and the jitter
            // seed, so a replayed run probes on an identical schedule.
            let mut c = self.recovery.get();
            let nonce = c.probe_frames;
            c.probe_frames += 1;
            self.recovery.set(c);
            let frame = encode_frame(&Request::Probe { nonce });
            self.send_to_worker(m, &frame, respawned);
            self.health.borrow_mut().note_probe_sent(m, epoch_micros(), nonce);
        }
    }

    /// Deliver one request frame to machine `m`, respawning it first if its
    /// peer is dead or its link is down, and routing through the link's
    /// fault injector.
    fn send_to_worker(&self, m: usize, frame: &Bytes, respawned: &mut u32) {
        if self.health_active() {
            self.health.borrow_mut().observe_dispatch(m, epoch_micros());
        }
        if self.worker_is_dead(m) {
            self.respawn_worker(m);
            *respawned += 1;
        }
        let undelivered = {
            let workers = self.workers.borrow();
            workers[m].link.deliver(frame, &mut || self.gauge.note_queue_full())
        };
        for f in undelivered {
            // The worker died between the liveness check and the send:
            // respawn once and re-deliver raw (the delivery attempt already
            // counted the frame's bytes).
            self.respawn_worker(m);
            *respawned += 1;
            let workers = self.workers.borrow();
            let _ = workers[m].link.send_raw(f);
        }
    }

    /// Choose the serving replica of every fragment for the next dispatch.
    /// No-op on single-owner placements (the route table stays at the
    /// primaries). Under [`RoutePolicy::LeastLoaded`] fragments in id order
    /// each go to their hosting replica with the least cumulative routed
    /// cost (ties toward the smaller machine id), which is then charged the
    /// fragment's heat-weighted share of `cost` — a hot fragment's share
    /// dominates its host's ledger, so consecutive dispatches rotate it
    /// across its replicas; [`RoutePolicy::Primary`] keeps every fragment
    /// on its primary (routing inert, replicas idle).
    fn route_fragments(&self, cost: u64) {
        if !self.placement.is_replicated() {
            return;
        }
        let k = self.placement.num_fragments();
        let total_weight = self.route_weight.iter().sum::<u64>().max(1);
        let mut route = self.route.borrow_mut();
        let mut load = self.route_load.borrow_mut();
        for f in 0..k {
            let m = match self.route_policy {
                RoutePolicy::Primary => self.placement.machine_of(FragmentId(f as u32)),
                // Under quarantine the candidate set is softly filtered:
                // quarantined replicas are skipped while any healthy host
                // remains, and a fragment whose every host is quarantined
                // degrades to the least-suspect one instead of stalling.
                RoutePolicy::LeastLoaded if self.quarantine => {
                    let board = self.health.borrow();
                    let fid = FragmentId(f as u32);
                    let (cands, degraded) =
                        self.placement.routable_replicas(fid, &|m| board.is_quarantined(m));
                    if degraded {
                        board
                            .least_suspect(&cands, epoch_micros())
                            .expect("every fragment has at least its primary")
                    } else {
                        cands
                            .into_iter()
                            .min_by_key(|&m| (load[m], m))
                            .expect("every fragment has at least its primary")
                    }
                }
                RoutePolicy::LeastLoaded => self
                    .placement
                    .replicas_of(FragmentId(f as u32))
                    .iter()
                    .copied()
                    .min_by_key(|&m| (load[m], m))
                    .expect("every fragment has at least its primary"),
            };
            route[f] = m;
            let share = (cost as u128 * self.route_weight[f] as u128 / total_weight as u128) as u64;
            load[m] += share.max(1);
        }
    }

    /// Every fragment grouped by its currently routed machine, in
    /// first-seen machine order — the replicated dispatch shape: one
    /// request per machine listing exactly the fragments it serves this
    /// gather (a broadcast with empty fragment lists would make every
    /// replica answer and flood the coordinator with duplicates).
    fn routed_groups(&self) -> Vec<(usize, Vec<u32>)> {
        let route = self.route.borrow();
        let mut groups: Vec<(usize, Vec<u32>)> = Vec::new();
        let mut slot = vec![usize::MAX; self.placement.num_machines()];
        for (f, &m) in route.iter().enumerate() {
            if slot[m] == usize::MAX {
                slot[m] = groups.len();
                groups.push((m, Vec::new()));
            }
            groups[slot[m]].1.push(f as u32);
        }
        groups
    }

    /// Group retried fragments by target machine, moving each to a
    /// *different* replica than the one that just stalled or failed —
    /// preferring live machines, then least routed load, then the smaller
    /// id — so a retry completes against a surviving replica immediately
    /// while the dead machine's respawn proceeds on its own schedule. A
    /// fragment with no alternative host stays where it is (exactly the
    /// single-owner behavior).
    fn reroute(&self, fragments: &[u32], report: &mut GatherReport) -> Vec<(usize, Vec<u32>)> {
        let mut groups: Vec<(usize, Vec<u32>)> = Vec::new();
        let mut slot = vec![usize::MAX; self.placement.num_machines()];
        for &f in fragments {
            let cur = self.route.borrow()[f as usize];
            // Rank (not filter) quarantined machines behind healthy ones:
            // a retry prefers a live un-quarantined replica but still
            // degrades to a quarantined one over a dead one.
            let alt = {
                let board = self.health.borrow();
                self.placement
                    .replicas_of(FragmentId(f))
                    .iter()
                    .copied()
                    .filter(|&m| m != cur)
                    .min_by_key(|&m| {
                        (
                            self.worker_is_dead(m),
                            self.quarantine && board.is_quarantined(m),
                            self.route_load.borrow()[m],
                            m,
                        )
                    })
            };
            let target = match alt {
                Some(m) => {
                    self.route.borrow_mut()[f as usize] = m;
                    report.reroutes += 1;
                    m
                }
                None => cur,
            };
            if slot[target] == usize::MAX {
                slot[target] = groups.len();
                groups.push((target, Vec::new()));
            }
            groups[slot[target]].1.push(f);
        }
        groups
    }

    /// The machine that served a response, from the wire-reported replica
    /// id — validated against the placement (an out-of-range or
    /// non-hosting claim falls back to the fragment's primary, so a
    /// corrupt frame cannot misattribute cost). Identical to the primary
    /// on single-owner placements.
    fn serving_machine(&self, fragment: u32, cost: &WireCost) -> usize {
        let f = FragmentId(fragment);
        let m = cost.replica as usize;
        if m < self.placement.num_machines() && self.placement.replicas_of(f).contains(&m) {
            m
        } else {
            self.placement.machine_of(f)
        }
    }

    /// Re-dispatch narrowed requests for the given fragments of one query
    /// slot, one request per hosting machine. On replicated placements the
    /// retried fragments are first moved to a different live replica.
    fn redispatch(
        &self,
        slot: usize,
        fragments: &[u32],
        make_request: &dyn Fn(usize, Vec<u32>) -> Request,
        report: &mut GatherReport,
    ) {
        let groups = if self.placement.is_replicated() {
            self.reroute(fragments, report)
        } else {
            self.placement.machines_hosting(fragments)
        };
        for (m, frags) in groups {
            let frame = encode_frame(&make_request(slot, frags));
            self.send_to_worker(m, &frame, &mut report.respawned_workers);
            report.retries += 1;
            report.retries_by_slot[slot] += 1;
        }
    }

    /// Queue a narrowed retry behind its exponential backoff (immediate
    /// when [`ClusterConfig::retry_backoff`] is zero). The jitter seed mixes
    /// query id, slot, fragment, and retry ordinal, so a replayed run backs
    /// off identically while concurrent retries spread out.
    #[allow(clippy::too_many_arguments)] // private gather helper
    fn schedule_retry(
        &self,
        base: u64,
        slot: usize,
        frags: Vec<u32>,
        retry_index: u32,
        pending: &mut Vec<(Instant, usize, Vec<u32>)>,
        make_request: &dyn Fn(usize, Vec<u32>) -> Request,
        report: &mut GatherReport,
    ) {
        if self.retry_backoff.is_zero() {
            self.redispatch(slot, &frags, make_request, report);
            return;
        }
        let seed = base
            .wrapping_add((slot as u64) << 20)
            .wrapping_add((retry_index as u64) << 40)
            .wrapping_add(frags.first().copied().unwrap_or(0) as u64);
        let delay = backoff_delay(self.retry_backoff, retry_index, splitmix64(seed));
        pending.push((Instant::now() + delay, slot, frags));
    }

    /// The shared deadline-aware gather: collect one response per fragment
    /// for each of the `n` queries `base+1 ..= base+n`, retrying stalled or
    /// transiently failed fragments with narrowed re-dispatches.
    ///
    /// `allow_partial` is passed per gather (rather than read from the
    /// config) because brownout degrades a group to partial semantics even
    /// when the cluster default is strict.
    ///
    /// Retries are spaced by [`ClusterConfig::retry_backoff`]: instead of
    /// re-dispatching immediately, each narrowed retry is scheduled
    /// `base · 2^(retry−1)` (plus deterministic jitter) in the future, so a
    /// struggling worker is not hammered by synchronized retry bursts.
    ///
    /// `on_response` receives each first-seen in-window `Results` /
    /// `TopKResults` payload along with its query slot and frame size.
    fn gather(
        &self,
        base: u64,
        n: usize,
        allow_partial: bool,
        make_request: &dyn Fn(usize, Vec<u32>) -> Request,
        on_response: &mut dyn FnMut(usize, Response, u64),
    ) -> Result<GatherReport, QueryError> {
        let mut gs = GatherState::new(self, n, allow_partial);
        gs.activate(0, n);
        let out = self.gather_finish(base, &mut gs, make_request, on_response);
        self.note_service_latencies(&mut gs);
        out
    }

    /// Drain the gather state's completed-query service latencies into the
    /// cluster's sample ring (for [`Cluster::take_service_latencies`]) and
    /// return them — the adaptive path feeds the same values to the window
    /// controller.
    fn note_service_latencies(&self, gs: &mut GatherState) -> Vec<(Duration, Duration)> {
        let lats = gs.take_latencies();
        let mut ring = self.service_lat.borrow_mut();
        let mut evals = self.eval_lat.borrow_mut();
        for (service, eval) in &lats {
            if ring.len() == 4096 {
                ring.pop_front();
            }
            ring.push_back(service.as_micros() as u64);
            if evals.len() == 4096 {
                evals.pop_front();
            }
            evals.push_back(eval.as_micros() as u64);
        }
        lats
    }

    /// Drain the recorded per-query service latencies (dispatch → last
    /// fragment response) of grouped runs since the last call, in
    /// completion order. Recorded on the fixed-window and adaptive paths
    /// alike, so benchmarks can compare tail latency across dispatch modes
    /// on the same metric.
    pub fn take_service_latencies(&self) -> Vec<Duration> {
        self.service_lat.borrow_mut().drain(..).map(Duration::from_micros).collect()
    }

    /// Flush scheduled retries whose backoff has elapsed, skipping
    /// fragments that answered while the retry waited.
    fn gather_flush_retries(
        &self,
        gs: &mut GatherState,
        make_request: &dyn Fn(usize, Vec<u32>) -> Request,
    ) {
        if gs.pending_retries.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut i = 0;
        while i < gs.pending_retries.len() {
            if gs.pending_retries[i].0 <= now {
                let (_, slot, frags) = gs.pending_retries.swap_remove(i);
                let frags: Vec<u32> =
                    frags.into_iter().filter(|&f| !gs.responded[slot][f as usize]).collect();
                if !frags.is_empty() {
                    self.redispatch(slot, &frags, make_request, &mut gs.report);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Fire overdue hedges: every active slot past its hedge deadline with
    /// answers still missing gets its missing fragments speculatively
    /// re-dispatched — narrowed, through the same `make_request` shape a
    /// retry uses — to an alternate live, un-quarantined replica. At most
    /// one hedge per slot; the original dispatch stays outstanding, the
    /// retry budget (`attempts`) is untouched, and whichever answer lands
    /// first wins — the loser is deduped by the `(slot, fragment)`
    /// responded table or the straggler drain's duplicate accounting.
    fn gather_flush_hedges(
        &self,
        gs: &mut GatherState,
        make_request: &dyn Fn(usize, Vec<u32>) -> Request,
    ) {
        if gs.hedge_after.is_none() {
            return;
        }
        let now = Instant::now();
        for slot in 0..gs.n {
            let Some(due) = gs.hedge_at[slot] else { continue };
            if due > now {
                continue;
            }
            gs.hedge_at[slot] = None;
            if !gs.active[slot] || gs.missing_by_slot[slot] == 0 {
                continue;
            }
            let mut groups: Vec<(usize, Vec<u32>)> = Vec::new();
            for f in 0..gs.k {
                if gs.responded[slot][f] {
                    continue;
                }
                let cur = self.route.borrow()[f];
                let target = {
                    let board = self.health.borrow();
                    self.placement
                        .replicas_of(FragmentId(f as u32))
                        .iter()
                        .copied()
                        .filter(|&m| {
                            m != cur && !self.worker_is_dead(m) && !board.is_quarantined(m)
                        })
                        .min_by_key(|&m| (self.route_load.borrow()[m], m))
                };
                // No alternate live host: the slot falls back to the
                // ordinary stall-retry path.
                let Some(m) = target else { continue };
                gs.hedge_targets.insert((slot, f as u32), m);
                match groups.iter_mut().find(|(g, _)| *g == m) {
                    Some((_, frags)) => frags.push(f as u32),
                    None => groups.push((m, vec![f as u32])),
                }
            }
            for (m, frags) in groups {
                let frame = encode_frame(&make_request(slot, frags));
                self.send_to_worker(m, &frame, &mut gs.report.respawned_workers);
                gs.report.hedges += 1;
            }
        }
    }

    /// Pull one already-queued response frame, charging the consumption
    /// ledger the straggler drain reconciles against `from_workers`.
    fn try_recv_response(&self) -> Result<Bytes, TryRecvError> {
        let frame = self.responses.try_recv()?;
        self.consumed_responses.set(self.consumed_responses.get() + 1);
        Ok(frame)
    }

    /// Blocking variant of [`Cluster::try_recv_response`].
    fn recv_response_timeout(&self, timeout: Duration) -> Result<Bytes, RecvTimeoutError> {
        let frame = self.responses.recv_timeout(timeout)?;
        self.consumed_responses.set(self.consumed_responses.get() + 1);
        Ok(frame)
    }

    /// Non-blocking drain: flush due retries, then process every response
    /// frame already queued. The adaptive ingress calls this between
    /// admissions to an open window so `SuperPlan::merge` and dispatch of
    /// the next window overlap in-flight gathers instead of queueing
    /// behind them.
    fn gather_drain(
        &self,
        base: u64,
        gs: &mut GatherState,
        make_request: &dyn Fn(usize, Vec<u32>) -> Request,
        on_response: &mut dyn FnMut(usize, Response, u64),
    ) -> Result<(), QueryError> {
        self.gather_flush_retries(gs, make_request);
        self.health_tick(&mut gs.report.respawned_workers);
        self.gather_flush_hedges(gs, make_request);
        while let Ok(frame) = self.try_recv_response() {
            self.gather_process_frame(base, gs, frame, make_request, on_response)?;
        }
        Ok(())
    }

    /// Process one response frame against the gather state: window and
    /// duplicate filtering, retry scheduling for retryable failures, and
    /// first-seen payload delivery. Returns only fatal (non-retryable,
    /// non-degradable) errors.
    fn gather_process_frame(
        &self,
        base: u64,
        gs: &mut GatherState,
        frame: Bytes,
        make_request: &dyn Fn(usize, Vec<u32>) -> Request,
        on_response: &mut dyn FnMut(usize, Response, u64),
    ) -> Result<(), QueryError> {
        let frame_bytes = frame.len() as u64;
        let response = match decode_frame::<Response>(frame) {
            Ok(r) => r,
            Err(_) => {
                gs.report.corrupt_frames += 1;
                return Ok(());
            }
        };
        // Health-plane traffic: a probe ack is proof of life plus one
        // probation success, never counted against any query window.
        if let Response::ProbeAck { machine, .. } = &response {
            let m = *machine as usize;
            if m < self.placement.num_machines() {
                self.health.borrow_mut().note_probe_ack(m, epoch_micros());
            }
            return Ok(());
        }
        // A batch frame expands into one positional answer per member
        // query; each then flows through the same window/dedup/retry
        // machinery as a standalone frame. Per-answer bytes are what the
        // answer's standalone result frame would have cost
        // (`results_frame_len`), keeping per-query byte attribution
        // comparable across batched and unbatched runs.
        let items: Vec<(Response, u64)> = match response {
            Response::BatchResults { base: chunk_base, fragment, answers } => answers
                .into_iter()
                .enumerate()
                .map(|(i, answer)| {
                    let query_id = chunk_base + 1 + i as u64;
                    match answer {
                        BatchAnswer::Results { nodes, cost } => {
                            let bytes = results_frame_len(nodes.len() as u64);
                            (Response::Results { query_id, fragment, nodes, cost }, bytes)
                        }
                        BatchAnswer::Failed(error) => {
                            (Response::Failed { query_id, fragment, error }, 0)
                        }
                    }
                })
                .collect(),
            other => vec![(other, frame_bytes)],
        };
        for (response, bytes) in items {
            let (qid, fragment) = match &response {
                Response::Results { query_id, fragment, .. }
                | Response::TopKResults { query_id, fragment, .. }
                | Response::Failed { query_id, fragment, .. } => (*query_id, *fragment),
                Response::BatchResults { .. } => unreachable!("expanded above"),
                Response::ProbeAck { .. } => unreachable!("intercepted above"),
            };
            if qid <= base || qid > base + gs.n as u64 || fragment as usize >= gs.k {
                gs.report.out_of_window_responses += 1;
                continue;
            }
            let slot = (qid - base - 1) as usize;
            let f = fragment as usize;
            if !gs.active[slot] {
                gs.report.out_of_window_responses += 1;
                continue;
            }
            if gs.responded[slot][f] {
                gs.report.duplicate_responses += 1;
                continue;
            }
            gs.stall_deadline = Instant::now() + self.deadline;
            match response {
                Response::Failed { error, .. } => {
                    if let QueryError::SlotUnknown { .. } = &error {
                        // An elided reference outran the worker's directory
                        // (typically a respawn wiped it): drop every belief
                        // about that machine and fall back to full-spec
                        // narrowed re-dispatches through the retry path.
                        gs.report.slot_nacks += 1;
                        // Any replica of the fragment may have served the
                        // elided frame, so drop beliefs about all of them.
                        let mut believed = self.believed.borrow_mut();
                        for &m in self.placement.replicas_of(FragmentId(fragment)) {
                            believed[m].clear();
                        }
                    }
                    if !error.is_retryable() {
                        return Err(error);
                    }
                    if gs.attempts[slot][f] < self.max_attempts {
                        gs.attempts[slot][f] += 1;
                        let retry_index = gs.attempts[slot][f] - 1;
                        // Once a fragment enters the retry path its hedge
                        // race is void: a later answer from the old hedge
                        // target is ordinary recovery, not a win.
                        gs.hedge_targets.remove(&(slot, fragment));
                        self.schedule_retry(
                            base,
                            slot,
                            vec![fragment],
                            retry_index,
                            &mut gs.pending_retries,
                            make_request,
                            &mut gs.report,
                        );
                    } else if gs.allow_partial {
                        gs.responded[slot][f] = true;
                        gs.note_answered(slot);
                        gs.report.degraded.push((slot, fragment));
                    } else {
                        return Err(error);
                    }
                }
                payload => {
                    gs.responded[slot][f] = true;
                    if let Response::Results { cost, .. } | Response::TopKResults { cost, .. } =
                        &payload
                    {
                        gs.report.cache.absorb(&CacheCounters {
                            hits: cost.cache_hits,
                            misses: cost.cache_misses,
                            evictions: cost.cache_evictions,
                            bypassed: cost.cache_bypassed,
                        });
                        // Track the slot's slowest evaluation *before*
                        // note_answered closes its latency sample.
                        gs.eval_micros[slot] = gs.eval_micros[slot].max(cost.elapsed_micros);
                        // Credit the observed compute to the replica that
                        // actually served the task — the lifetime signal
                        // behind the reported unbalance factor U.
                        let m = self.serving_machine(fragment, cost);
                        self.compute_micros.borrow_mut()[m] += cost.elapsed_micros;
                        if self.health_active() {
                            let mut board = self.health.borrow_mut();
                            board.observe_arrival(m, epoch_micros());
                            board.observe_service(m, cost.elapsed_micros);
                        }
                        // First answer settles a hedged fragment's race —
                        // a win iff it came from the hedge target.
                        if gs.hedge_targets.remove(&(slot, fragment)) == Some(m) {
                            gs.report.hedge_wins += 1;
                        }
                    }
                    gs.note_answered(slot);
                    on_response(slot, payload, bytes);
                }
            }
        }
        Ok(())
    }

    /// Attribute one straggler frame drained after a completed gather:
    /// in-window answers are duplicates (every needed response has already
    /// been consumed), everything else is out-of-window. Probe acks are
    /// health-plane traffic and fold into the board without touching either
    /// ledger counter.
    fn classify_straggler(&self, frame: Bytes, base: u64, gs: &mut GatherState) {
        let (n, k) = (gs.n, gs.k);
        let mut in_window = |qid: u64, fragment: u32| {
            if qid > base && qid <= base + n as u64 && (fragment as usize) < k {
                gs.report.duplicate_responses += 1;
            } else {
                gs.report.out_of_window_responses += 1;
            }
        };
        match decode_frame::<Response>(frame) {
            Err(_) => gs.report.corrupt_frames += 1,
            Ok(Response::ProbeAck { machine, .. }) => {
                let m = machine as usize;
                if m < self.placement.num_machines() {
                    self.health.borrow_mut().note_probe_ack(m, epoch_micros());
                }
            }
            Ok(Response::BatchResults { base: b, fragment, answers }) => {
                for i in 0..answers.len() {
                    in_window(b + 1 + i as u64, fragment);
                }
            }
            Ok(Response::Results { query_id, fragment, .. })
            | Ok(Response::TopKResults { query_id, fragment, .. })
            | Ok(Response::Failed { query_id, fragment, .. }) => in_window(query_id, fragment),
        }
    }

    /// Blocking completion of a gather: collect one response per fragment
    /// for every *active* slot, retrying stalled or transiently failed
    /// fragments with narrowed re-dispatches, then drain stragglers. Folds
    /// the report into the lifetime counters on success and failure alike.
    fn gather_finish(
        &self,
        base: u64,
        gs: &mut GatherState,
        make_request: &dyn Fn(usize, Vec<u32>) -> Request,
        on_response: &mut dyn FnMut(usize, Response, u64),
    ) -> Result<GatherReport, QueryError> {
        let (n, k) = (gs.n, gs.k);
        let outcome = loop {
            if gs.missing == 0 {
                // Drain stragglers (duplicated frames, late answers landing
                // just after the last needed response) so duplicate
                // accounting does not depend on how the final frames
                // interleaved in the channel. Draining only already-queued
                // frames is not enough: under the TCP transport a frame the
                // worker-side sender has already counted may still be
                // crossing the socket pumps when the gather completes, so
                // the drain reconciles against the wire ledger — while
                // `from_workers` says sent frames remain unconsumed, wait
                // briefly for them, and forgive whatever never shows up
                // (dropped on the wire, torn mid-frame, stranded in a dead
                // worker's egress queue) so no later drain waits on it
                // again.
                loop {
                    while let Ok(frame) = self.try_recv_response() {
                        self.classify_straggler(frame, base, gs);
                    }
                    let outstanding = self.from_workers.messages().saturating_sub(
                        self.consumed_responses.get() + self.forgiven_responses.get(),
                    );
                    if outstanding == 0 {
                        break;
                    }
                    match self.recv_response_timeout(STRAGGLER_GRACE) {
                        Ok(frame) => self.classify_straggler(frame, base, gs),
                        Err(_) => {
                            self.forgiven_responses
                                .set(self.forgiven_responses.get() + outstanding);
                            break;
                        }
                    }
                }
                break Ok(());
            }
            self.gather_flush_retries(gs, make_request);
            self.health_tick(&mut gs.report.respawned_workers);
            self.gather_flush_hedges(gs, make_request);
            // Fast path: drain already-queued frames without the
            // park/unpark round-trip `recv_timeout` pays even when a frame
            // is ready (the machines=2 throughput cliff; see
            // EXPERIMENTS.md).
            let received = match self.try_recv_response() {
                Ok(frame) => Ok(frame),
                Err(TryRecvError::Disconnected) => Err(RecvTimeoutError::Disconnected),
                Err(TryRecvError::Empty) => {
                    // Wake at whichever comes first: the stall deadline,
                    // the next scheduled retry, or the next hedge deadline.
                    let wake = gs
                        .pending_retries
                        .iter()
                        .map(|&(due, _, _)| due)
                        .chain(gs.next_hedge_due())
                        .min()
                        .map_or(gs.stall_deadline, |due| due.min(gs.stall_deadline));
                    let timeout = wake.saturating_duration_since(Instant::now());
                    self.recv_response_timeout(timeout)
                }
            };
            match received {
                Ok(frame) => {
                    if let Err(e) =
                        self.gather_process_frame(base, gs, frame, make_request, on_response)
                    {
                        break Err(e);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() < gs.stall_deadline {
                        // Woke early to flush a scheduled retry (handled at
                        // the top of the loop), not a stall.
                        continue;
                    }
                    gs.report.timeouts += 1;
                    let mut exhausted: Vec<u32> = Vec::new();
                    let mut retry_by_slot: Vec<Vec<u32>> = vec![Vec::new(); n];
                    for (slot, retries) in retry_by_slot.iter_mut().enumerate() {
                        if !gs.active[slot] {
                            continue;
                        }
                        for f in 0..k {
                            if gs.responded[slot][f] {
                                continue;
                            }
                            if gs.attempts[slot][f] < self.max_attempts {
                                gs.attempts[slot][f] += 1;
                                retries.push(f as u32);
                            } else {
                                exhausted.push(f as u32);
                                if gs.allow_partial {
                                    gs.responded[slot][f] = true;
                                    gs.note_answered(slot);
                                    gs.report.degraded.push((slot, f as u32));
                                }
                            }
                        }
                    }
                    if !exhausted.is_empty() && !gs.allow_partial {
                        exhausted.sort_unstable();
                        exhausted.dedup();
                        break Err(QueryError::WorkerTimeout {
                            fragments: exhausted,
                            attempts: self.max_attempts,
                        });
                    }
                    for (slot, frags) in retry_by_slot.into_iter().enumerate() {
                        if !frags.is_empty() {
                            // Retried fragments void their hedge race (see
                            // the NACK retry path above).
                            for &f in &frags {
                                gs.hedge_targets.remove(&(slot, f));
                            }
                            let retry_index = gs.attempts[slot][frags[0] as usize] - 1;
                            self.schedule_retry(
                                base,
                                slot,
                                frags,
                                retry_index,
                                &mut gs.pending_retries,
                                make_request,
                                &mut gs.report,
                            );
                        }
                    }
                    gs.stall_deadline = Instant::now() + self.deadline;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("cluster retains a response sender half")
                }
            }
        };
        self.note_recovery(&gs.report);
        outcome.map(|()| std::mem::take(&mut gs.report))
    }

    /// Fold one gather's recovery events into the lifetime counters.
    fn note_recovery(&self, report: &GatherReport) {
        let mut c = self.recovery.get();
        c.retries += report.retries as u64;
        c.timeouts += report.timeouts as u64;
        c.respawned_workers += report.respawned_workers as u64;
        c.duplicate_responses += report.duplicate_responses;
        c.corrupt_frames += report.corrupt_frames;
        c.out_of_window_responses += report.out_of_window_responses;
        c.slot_nacks += report.slot_nacks as u64;
        c.reroutes += report.reroutes as u64;
        c.hedges += report.hedges as u64;
        c.hedge_wins += report.hedge_wins as u64;
        self.recovery.set(c);
        let mut cache = self.cache.get();
        cache.absorb(&report.cache);
        self.cache.set(cache);
    }

    fn note_respawns(&self, respawned: u32) {
        if respawned > 0 {
            let mut c = self.recovery.get();
            c.respawned_workers += respawned as u64;
            self.recovery.set(c);
        }
    }

    /// Bytes sent over the coordinator→worker and worker→coordinator links.
    fn link_bytes(&self) -> (u64, u64) {
        let c2w = self.workers.borrow().iter().map(|w| w.link.counters().bytes()).sum();
        (c2w, self.from_workers.bytes())
    }

    /// Lifetime frames (not bytes) sent over the coordinator→worker and
    /// worker→coordinator links — the round-trip economy of batching shows
    /// up here as frames-per-query < 1.
    pub fn link_message_totals(&self) -> (u64, u64) {
        let c2w = self.workers.borrow().iter().map(|w| w.link.counters().messages()).sum();
        (c2w, self.from_workers.messages())
    }

    /// Dispatch admitted plans for queries `base+1 ..= base+plans.len()` to
    /// every busy machine, honouring the batching window: chunks of ≥2
    /// plans merge into one [`SuperPlan`] shipped as a single
    /// `Request::Batch` frame per machine; a window of 1 (batching
    /// disabled) or a trailing singleton ships a plain `Evaluate`.
    fn dispatch_plans(&self, base: u64, plans: &[QueryPlan]) -> u32 {
        let window = self.batch_window.max(1);
        let mut respawns = 0u32;
        let mut s = 0usize;
        while s < plans.len() {
            let end = (s + window).min(plans.len());
            let chunk = &plans[s..end];
            let make = |frags: Vec<u32>| {
                if chunk.len() >= 2 {
                    Request::Batch {
                        base: base + s as u64,
                        plan: SuperPlan::merge(chunk),
                        fragments: frags,
                    }
                } else {
                    Request::Evaluate {
                        query_id: base + 1 + s as u64,
                        plan: chunk[0].clone(),
                        fragments: frags,
                    }
                }
            };
            if self.placement.is_replicated() {
                // Routed dispatch, one routing decision per window: each
                // machine gets only its routed fragments (exactly one
                // replica answers each task), and consecutive windows of a
                // hot fragment rotate across its replicas — since every
                // window of the group is dispatched before any gather, the
                // replicas chew on a skewed stream *concurrently*.
                let window_cost: u64 =
                    chunk.iter().map(|p| p.estimated_cost(&self.cost_params)).sum();
                self.route_fragments(window_cost);
                for (m, frags) in self.routed_groups() {
                    let frame = encode_frame(&make(frags));
                    self.send_to_worker(m, &frame, &mut respawns);
                    self.gauge.note_dispatch_frames(1);
                }
            } else {
                let frame = encode_frame(&make(vec![]));
                for m in self.placement.busy_machines() {
                    self.send_to_worker(m, &frame, &mut respawns);
                    self.gauge.note_dispatch_frames(1);
                }
            }
            s = end;
        }
        self.note_respawns(respawns);
        respawns
    }

    /// Whether adaptive streaming dispatch is active for grouped streams
    /// ([`ClusterConfig::batch_adaptive`] with a batching window > 1).
    pub fn adaptive_enabled(&self) -> bool {
        self.batch_adaptive && self.batch_window > 1
    }

    /// The adaptive controller's window size after each closed window, in
    /// close order (empty under fixed windows).
    pub fn window_trace(&self) -> Vec<u32> {
        self.controller.borrow().trace().to_vec()
    }

    /// Adaptive streaming dispatch of one admission group: plans are
    /// admitted into an *open* window, draining in-flight responses of
    /// earlier windows between admissions; the window closes at the
    /// controller-chosen size or after [`ClusterConfig::batch_window_ms`],
    /// whichever comes first, is dispatched (reference-elided where the
    /// target's slot directory is believed warm), and feeds the controller
    /// its completed-query latencies. Answers are byte-identical to the
    /// fixed-window path — only frame boundaries and slot encodings differ.
    fn run_group_adaptive(
        &self,
        base: u64,
        plans: &[QueryPlan],
        allow_partial: bool,
        make_request: &dyn Fn(usize, Vec<u32>) -> Request,
        on_response: &mut dyn FnMut(usize, Response, u64),
    ) -> (Result<GatherReport, QueryError>, u32) {
        let n = plans.len();
        let mut gs = GatherState::new(self, n, allow_partial);
        let mut respawns = 0u32;
        let mut s = 0usize;
        while s < n {
            let target = self.controller.borrow().window().max(1);
            let mut opened = Instant::now();
            // A window never closes empty; past that, time-closed ingress:
            // admit until the controller's size is reached or the window's
            // time budget elapses, using the wait to overlap gathers.
            let mut end = s + 1;
            while end < n && end - s < target {
                let drain_start = Instant::now();
                if let Err(e) = self.gather_drain(base, &mut gs, make_request, on_response) {
                    self.note_respawns(respawns);
                    return (Err(e), respawns);
                }
                // The time budget bounds how long early queries wait on
                // *ingress* — time spent usefully draining earlier windows'
                // responses doesn't count against it, or heavy gathers
                // would shrink every window to the clock instead of the
                // controller's choice.
                opened += drain_start.elapsed();
                if opened.elapsed() >= self.batch_window_ms {
                    break;
                }
                end += 1;
            }
            respawns += self.dispatch_window(base + s as u64, &plans[s..end]);
            // Re-derive the adaptive hedge deadline per window so it tracks
            // the controller's evolving p99 across the stream.
            gs.hedge_after = self.hedge_after();
            gs.activate(s, end);
            let mut controller = self.controller.borrow_mut();
            for (service, eval) in self.note_service_latencies(&mut gs) {
                controller.observe(service, eval);
            }
            controller.on_window_closed(end - s, n - end);
            drop(controller);
            s = end;
        }
        self.note_respawns(respawns);
        let out = self.gather_finish(base, &mut gs, make_request, on_response);
        let mut controller = self.controller.borrow_mut();
        for (service, eval) in self.note_service_latencies(&mut gs) {
            controller.observe(service, eval);
        }
        (out, respawns)
    }

    /// Dispatch one closed window of admitted plans for queries
    /// `window_base+1 ..= window_base+chunk.len()`. Windows of ≥2 plans
    /// merge into one super-plan per busy machine and ship
    /// **reference-elided**: coverage slots the machine's directory is
    /// believed to know are encoded as compact slot ids
    /// (`ElidedSlot::Cached`, 5 bytes) instead of full `DTerm` specs, and
    /// full-spec entries teach the directory for next time. A machine whose
    /// directory turns out stale NACKs with `QueryError::SlotUnknown`,
    /// repaired by full-spec narrowed retries — see `gather_process_frame`.
    fn dispatch_window(&self, window_base: u64, chunk: &[QueryPlan]) -> u32 {
        let mut respawns = 0u32;
        // On replicated placements every window ships routed: one frame per
        // machine listing exactly its routed fragments, the route chosen
        // fresh per window so hot fragments rotate across their replicas.
        let targets: Vec<(usize, Vec<u32>)> = if self.placement.is_replicated() {
            let window_cost: u64 = chunk.iter().map(|p| p.estimated_cost(&self.cost_params)).sum();
            self.route_fragments(window_cost);
            self.routed_groups()
        } else {
            self.placement.busy_machines().map(|m| (m, Vec::new())).collect()
        };
        if chunk.len() < 2 {
            for (m, frags) in targets {
                let frame = encode_frame(&Request::Evaluate {
                    query_id: window_base + 1,
                    plan: chunk[0].clone(),
                    fragments: frags,
                });
                self.send_to_worker(m, &frame, &mut respawns);
                self.gauge.note_dispatch_frames(1);
            }
            return respawns;
        }
        let sp = SuperPlan::merge(chunk);
        let mut table = self.slot_ids.borrow_mut();
        for (m, frags) in targets {
            let frame = {
                let mut believed = self.believed.borrow_mut();
                match sp.try_elide(&mut table, &believed[m]) {
                    Some(elided) => {
                        // Once this FIFO frame lands, every id in it is in
                        // the worker's directory: full-spec entries teach
                        // it, references were already believed known.
                        for id in elided.slot_ids() {
                            believed[m].insert(id);
                        }
                        encode_frame(&Request::BatchRef {
                            base: window_base,
                            plan: elided,
                            fragments: frags,
                        })
                    }
                    // Over-wide plan (beyond the compact codec's u16/u8
                    // ranges): fall back to full specs.
                    None => encode_frame(&Request::Batch {
                        base: window_base,
                        plan: sp.clone(),
                        fragments: frags,
                    }),
                }
            };
            self.send_to_worker(m, &frame, &mut respawns);
            self.gauge.note_dispatch_frames(1);
        }
        respawns
    }

    /// Cost-model admission for one synchronous query: shed it with a typed
    /// [`QueryError::Overloaded`] when its estimated cost cannot fit the
    /// per-worker budget, or when brownout is active and the query is
    /// cache-cold. Returns the estimated cost and whether the query runs
    /// browned-out (degraded to partial semantics).
    fn admit_cost(&self, plan: &QueryPlan) -> Result<(u64, bool), QueryError> {
        let cost = plan.estimated_cost(&self.cost_params);
        if !self.gauge.enabled() {
            self.gauge.note_admitted();
            return Ok((cost, false));
        }
        if self.gauge.would_overflow(cost) {
            let retry = self.gauge.shed(0, cost);
            return Err(QueryError::Overloaded {
                retry_after_millis: (retry.as_millis() as u64).max(1),
            });
        }
        let browned = self.gauge.brownout_at(0);
        if browned && self.has_cold_slot(plan) {
            let retry = self.gauge.shed(0, cost);
            return Err(QueryError::Overloaded {
                retry_after_millis: (retry.as_millis() as u64).max(1),
            });
        }
        self.gauge.note_admitted();
        if browned {
            self.gauge.note_browned_out();
        }
        Ok((cost, browned))
    }

    /// Run a D-function distributedly: lower it to a [`QueryPlan`], admit
    /// it (validity, then estimated cost against the overload budget),
    /// dispatch to busy machines, gather one response per fragment, union
    /// the results (Lemma 1).
    pub fn run(&self, f: &DFunction) -> Result<QueryOutcome, QueryError> {
        let plan = QueryPlan::lower(f);
        self.admit(&plan)?;
        let (cost, browned) = self.admit_cost(&plan)?;
        self.charge_heat(&plan);
        self.gauge.charge(cost);
        let start = Instant::now();
        let base = self.query_counter.get();
        let query_id = base + 1;
        self.query_counter.set(query_id);

        let (c2w_before, w2c_before) = self.link_bytes();

        self.route_fragments(cost);
        let mut request_bytes = 0u64;
        let mut dispatch_respawns = 0u32;
        if self.placement.is_replicated() {
            for (m, frags) in self.routed_groups() {
                let frame = encode_frame(&Request::Evaluate {
                    query_id,
                    plan: plan.clone(),
                    fragments: frags,
                });
                request_bytes = request_bytes.max(frame.len() as u64);
                self.send_to_worker(m, &frame, &mut dispatch_respawns);
                self.gauge.note_dispatch_frames(1);
            }
        } else {
            let request = encode_frame(&Request::Evaluate {
                query_id,
                plan: plan.clone(),
                fragments: vec![],
            });
            request_bytes = request.len() as u64;
            for m in self.placement.busy_machines() {
                self.send_to_worker(m, &request, &mut dispatch_respawns);
                self.gauge.note_dispatch_frames(1);
            }
        }
        self.note_respawns(dispatch_respawns);

        let mut per_machine: Vec<MachineCost> = vec![MachineCost::default(); self.num_machines()];
        let mut results: Vec<NodeId> = Vec::new();
        let make_request = |_: usize, frags: Vec<u32>| Request::Evaluate {
            query_id,
            plan: plan.clone(),
            fragments: frags,
        };
        let mut on_response = |_: usize, response: Response, bytes: u64| {
            if let Response::Results { fragment, nodes, cost, .. } = response {
                let m = self.serving_machine(fragment, &cost);
                per_machine[m].absorb(fragment, &cost, nodes.len() as u64, bytes);
                results.extend(nodes);
            }
        };
        let allow_partial = self.allow_partial || browned;
        let gathered = self.gather(base, 1, allow_partial, &make_request, &mut on_response);
        self.gauge.release(cost);
        let report = gathered?;
        results.sort_unstable();

        let (c2w_after, w2c_after) = self.link_bytes();
        let stats = self.build_stats(
            start,
            per_machine,
            c2w_after - c2w_before,
            w2c_after - w2c_before,
            results.len(),
            request_bytes,
            &report,
            dispatch_respawns,
            cost,
            browned,
        );
        Ok(QueryOutcome { results, stats })
    }

    #[allow(clippy::too_many_arguments)] // private stats assembly helper
    fn build_stats(
        &self,
        start: Instant,
        per_machine: Vec<MachineCost>,
        c2w: u64,
        w2c: u64,
        results: usize,
        request_bytes: u64,
        report: &GatherReport,
        dispatch_respawns: u32,
        estimated_cost: u64,
        browned_out: bool,
    ) -> QueryStats {
        let mut degraded: Vec<u32> = report.degraded.iter().map(|&(_, f)| f).collect();
        degraded.sort_unstable();
        degraded.dedup();
        QueryStats {
            wall_time: start.elapsed(),
            per_machine,
            coordinator_to_worker_bytes: c2w,
            worker_to_coordinator_bytes: w2c,
            inter_worker_bytes: 0, // no worker↔worker links exist (Theorem 3)
            // Each narrowed re-dispatch is an extra coordinator round.
            rounds: 1 + report.retries,
            results,
            retries: report.retries,
            timeouts: report.timeouts,
            respawned_workers: dispatch_respawns + report.respawned_workers,
            degraded_fragments: degraded,
            duplicate_responses: report.duplicate_responses,
            corrupt_frames: report.corrupt_frames,
            out_of_window_responses: report.out_of_window_responses,
            cache_hits: report.cache.hits,
            cache_misses: report.cache.misses,
            cache_evictions: report.cache.evictions,
            cache_bypassed: report.cache.bypassed,
            estimated_cost,
            browned_out,
            ..QueryStats::default()
        }
        .finalize(&self.network, request_bytes)
    }

    /// The admission-grouped dispatch/gather core shared by
    /// [`Cluster::run_pipelined`], [`Cluster::run_batched`], and
    /// [`Cluster::run_stream`]. Walks the stream in order, applying the
    /// overload ladder per query:
    ///
    /// 1. invalid (failed [`Cluster::admit`]) → typed error, no dispatch;
    /// 2. estimated cost alone over the budget → shed, no dispatch;
    /// 3. brownout active and the query cache-cold → shed, no dispatch;
    /// 4. cost does not fit the budget on top of the queued group → the
    ///    group is flushed first (a *queue pause*: dispatch + gather, which
    ///    bounds every worker's in-flight cost), then the query queues;
    /// 5. otherwise the query joins the current group.
    ///
    /// A group that flushes at ≥ the brownout fraction of the budget runs
    /// with partial-result semantics (degrade before shedding). With
    /// overload control disabled (`cost_limit = 0`) the whole stream is one
    /// group and the ladder is inert — exactly the pre-overload behavior.
    ///
    /// `on_response` receives first-seen `Results` payloads keyed by the
    /// query's *original stream index*.
    fn run_stream_core(
        &self,
        plans: Vec<Result<QueryPlan, QueryError>>,
        start: Instant,
        on_response: &mut dyn FnMut(usize, Response, u64),
    ) -> StreamRun {
        let mut disposition: Vec<Disposition> = Vec::with_capacity(plans.len());
        let mut groups: Vec<GroupRun> = Vec::new();
        let mut pending: Vec<(usize, QueryPlan, u64)> = Vec::new();
        let mut pending_cost: u64 = 0;
        for (i, plan) in plans.into_iter().enumerate() {
            let plan = match plan {
                Ok(p) => p,
                Err(e) => {
                    disposition.push(Disposition::Invalid(e));
                    continue;
                }
            };
            let cost = plan.estimated_cost(&self.cost_params);
            if self.gauge.enabled() {
                if cost > self.gauge.cost_limit() {
                    let retry = self.gauge.shed(pending_cost, cost);
                    disposition.push(Disposition::Shed((retry.as_millis() as u64).max(1)));
                    continue;
                }
                if self.gauge.brownout_at(pending_cost) && self.has_cold_slot(&plan) {
                    let retry = self.gauge.shed(pending_cost, cost);
                    disposition.push(Disposition::Shed((retry.as_millis() as u64).max(1)));
                    continue;
                }
                if pending_cost.saturating_add(cost) > self.gauge.cost_limit()
                    && !pending.is_empty()
                {
                    self.gauge.note_queue_pause();
                    self.flush_group(
                        &mut pending,
                        &mut pending_cost,
                        &mut disposition,
                        &mut groups,
                        start,
                        on_response,
                    );
                }
            }
            self.gauge.note_admitted();
            self.charge_heat(&plan);
            disposition.push(Disposition::Pending);
            pending_cost = pending_cost.saturating_add(cost);
            pending.push((i, plan, cost));
        }
        self.flush_group(
            &mut pending,
            &mut pending_cost,
            &mut disposition,
            &mut groups,
            start,
            on_response,
        );
        StreamRun { disposition, groups }
    }

    /// Dispatch and gather the queued admission group, releasing its cost
    /// from the gauge when the gather completes (or fails).
    fn flush_group(
        &self,
        pending: &mut Vec<(usize, QueryPlan, u64)>,
        pending_cost: &mut u64,
        disposition: &mut [Disposition],
        groups: &mut Vec<GroupRun>,
        start: Instant,
        on_response: &mut dyn FnMut(usize, Response, u64),
    ) {
        if pending.is_empty() {
            return;
        }
        let group_cost = std::mem::take(pending_cost);
        let mut members: Vec<usize> = Vec::with_capacity(pending.len());
        let mut plans: Vec<QueryPlan> = Vec::with_capacity(pending.len());
        let mut costs: Vec<u64> = Vec::with_capacity(pending.len());
        for (i, plan, cost) in pending.drain(..) {
            members.push(i);
            plans.push(plan);
            costs.push(cost);
        }
        let n = plans.len();
        let gidx = groups.len();
        let browned = self.gauge.brownout_at(group_cost);
        for (pos, &i) in members.iter().enumerate() {
            disposition[i] = Disposition::Ran { group: gidx, pos };
            if browned {
                self.gauge.note_browned_out();
            }
        }
        let base = self.query_counter.get();
        self.query_counter.set(base + n as u64);
        self.gauge.charge(group_cost);
        let make_request = |slot: usize, frags: Vec<u32>| Request::Evaluate {
            query_id: base + 1 + slot as u64,
            plan: plans[slot].clone(),
            fragments: frags,
        };
        let allow_partial = self.allow_partial || browned;
        let mut slot_on_response =
            |slot: usize, resp: Response, bytes: u64| on_response(members[slot], resp, bytes);
        let (gathered, dispatch_respawns) = if self.adaptive_enabled() {
            self.run_group_adaptive(
                base,
                &plans,
                allow_partial,
                &make_request,
                &mut slot_on_response,
            )
        } else {
            let respawns = self.dispatch_plans(base, &plans);
            (self.gather(base, n, allow_partial, &make_request, &mut slot_on_response), respawns)
        };
        self.gauge.release(group_cost);
        let (report, error) = match gathered {
            Ok(r) => (r, None),
            Err(e) => {
                (GatherReport { retries_by_slot: vec![0; n], ..GatherReport::default() }, Some(e))
            }
        };
        groups.push(GroupRun {
            costs,
            report,
            error,
            dispatch_respawns,
            elapsed: start.elapsed(),
            browned,
        });
    }

    /// Run a batch of D-functions *pipelined*: all requests of an admission
    /// group are dispatched before any response is gathered, so worker
    /// machines process their queues concurrently — the throughput mode the
    /// paper's introduction motivates ("it will improve query throughput").
    /// Dispatch honours [`ClusterConfig::batch_window`]: windows of admitted
    /// plans merge into per-worker super-plans; retries always narrow to
    /// single-query `Evaluate` frames for only the failed queries. Returns
    /// the sorted result set per query plus the batch wall-clock. Recovery
    /// events are folded into [`Cluster::recovery_counters`].
    ///
    /// Under a [`ClusterConfig::cost_limit`], any shed query fails the
    /// whole call with [`QueryError::Overloaded`] — use
    /// [`Cluster::run_stream`] for per-query outcomes.
    pub fn run_pipelined(
        &self,
        fs: &[DFunction],
    ) -> Result<(Vec<Vec<NodeId>>, std::time::Duration), QueryError> {
        let plans: Vec<QueryPlan> = fs.iter().map(QueryPlan::lower).collect();
        for plan in &plans {
            self.admit(plan)?;
        }
        let start = Instant::now();
        let mut results: Vec<Vec<NodeId>> = vec![Vec::new(); fs.len()];
        let mut on_response = |i: usize, response: Response, _bytes: u64| {
            if let Response::Results { nodes, .. } = response {
                results[i].extend(nodes);
            }
        };
        let stream =
            self.run_stream_core(plans.into_iter().map(Ok).collect(), start, &mut on_response);
        for d in &stream.disposition {
            match d {
                Disposition::Invalid(e) => return Err(e.clone()),
                Disposition::Shed(ms) => {
                    return Err(QueryError::Overloaded { retry_after_millis: *ms })
                }
                Disposition::Ran { group, .. } => {
                    if let Some(e) = &stream.groups[*group].error {
                        return Err(e.clone());
                    }
                }
                Disposition::Pending => unreachable!("all admitted queries are flushed"),
            }
        }
        for r in &mut results {
            r.sort_unstable();
        }
        Ok((results, start.elapsed()))
    }

    /// Run a stream of D-functions through the overload-controlled batched
    /// dispatch path, returning a **per-query** `Result`: each query ends in
    /// exactly one of full results, typed-partial results (degraded
    /// fragments listed in its stats), or a typed error — notably
    /// [`QueryError::Overloaded`] for queries shed by cost admission, which
    /// provably cost zero wire bytes. This is the API overload-tolerant
    /// clients drive: shed queries are resubmitted after their
    /// `retry_after` instead of failing the whole stream.
    ///
    /// Per-query stats follow [`Cluster::run_batched`] conventions;
    /// `wall_time` is the query's *group* completion offset from stream
    /// start, so queueing delay behind earlier admission groups is visible
    /// in tail latencies.
    pub fn run_stream(
        &self,
        fs: &[DFunction],
    ) -> (Vec<Result<QueryOutcome, QueryError>>, Duration) {
        let start = Instant::now();
        let n = fs.len();
        let machines = self.num_machines();
        let plans: Vec<Result<QueryPlan, QueryError>> = fs
            .iter()
            .map(|f| {
                let p = QueryPlan::lower(f);
                self.admit(&p).map(|()| p)
            })
            .collect();
        let (c2w_before, _) = self.link_bytes();
        let mut results: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut per_machine: Vec<Vec<MachineCost>> =
            vec![vec![MachineCost::default(); machines]; n];
        let mut cache_by_slot: Vec<CacheCounters> = vec![CacheCounters::default(); n];
        let mut on_response = |i: usize, response: Response, bytes: u64| {
            if let Response::Results { fragment, nodes, cost, .. } = response {
                let m = self.serving_machine(fragment, &cost);
                per_machine[i][m].absorb(fragment, &cost, nodes.len() as u64, bytes);
                cache_by_slot[i].absorb(&CacheCounters {
                    hits: cost.cache_hits,
                    misses: cost.cache_misses,
                    evictions: cost.cache_evictions,
                    bypassed: cost.cache_bypassed,
                });
                results[i].extend(nodes);
            }
        };
        let stream = self.run_stream_core(plans, start, &mut on_response);
        let elapsed = start.elapsed();
        let (c2w_after, _) = self.link_bytes();
        let ran = stream.disposition.iter().filter(|d| matches!(d, Disposition::Ran { .. })).count()
            as u64;
        let c2w_each = (c2w_after - c2w_before).checked_div(ran).unwrap_or(0);

        let mut out: Vec<Result<QueryOutcome, QueryError>> = Vec::with_capacity(n);
        for (i, d) in stream.disposition.iter().enumerate() {
            match d {
                Disposition::Invalid(e) => out.push(Err(e.clone())),
                Disposition::Shed(ms) => {
                    out.push(Err(QueryError::Overloaded { retry_after_millis: *ms }))
                }
                Disposition::Pending => unreachable!("all admitted queries are flushed"),
                Disposition::Ran { group, pos } => {
                    let g = &stream.groups[*group];
                    if let Some(e) = &g.error {
                        out.push(Err(e.clone()));
                        continue;
                    }
                    let mut nodes = std::mem::take(&mut results[i]);
                    nodes.sort_unstable();
                    let machine_costs = std::mem::take(&mut per_machine[i]);
                    let mut degraded: Vec<u32> = g
                        .report
                        .degraded
                        .iter()
                        .filter(|&&(s, _)| s == *pos)
                        .map(|&(_, f)| f)
                        .collect();
                    degraded.sort_unstable();
                    degraded.dedup();
                    let w2c: u64 = machine_costs.iter().map(|m| m.response_bytes).sum();
                    let stats = QueryStats {
                        wall_time: g.elapsed,
                        per_machine: machine_costs,
                        coordinator_to_worker_bytes: c2w_each,
                        worker_to_coordinator_bytes: w2c,
                        inter_worker_bytes: 0, // Theorem 3: no worker↔worker links
                        rounds: 1 + g.report.retries_by_slot[*pos],
                        results: nodes.len(),
                        retries: g.report.retries_by_slot[*pos],
                        timeouts: g.report.timeouts,
                        respawned_workers: g.dispatch_respawns + g.report.respawned_workers,
                        degraded_fragments: degraded,
                        duplicate_responses: g.report.duplicate_responses,
                        corrupt_frames: g.report.corrupt_frames,
                        out_of_window_responses: g.report.out_of_window_responses,
                        cache_hits: cache_by_slot[i].hits,
                        cache_misses: cache_by_slot[i].misses,
                        cache_evictions: cache_by_slot[i].evictions,
                        cache_bypassed: cache_by_slot[i].bypassed,
                        estimated_cost: g.costs[*pos],
                        browned_out: g.browned,
                        ..QueryStats::default()
                    }
                    .finalize(&self.network, c2w_each);
                    out.push(Ok(QueryOutcome { results: nodes, stats }));
                }
            }
        }
        (out, elapsed)
    }

    /// Run a batch of D-functions through the batched dispatch path with
    /// **per-query statistics**: like [`Cluster::run_pipelined`] but each
    /// query's [`QueryOutcome`] carries its own exact per-machine wire
    /// costs, cache counters, and retry count (`GatherReport` attribution
    /// is per query slot even inside a shared batch frame).
    ///
    /// Shared-by-construction fields are documented group-level values:
    /// `wall_time` is the query's admission-group completion offset, and
    /// `coordinator_to_worker_bytes` apportions the dispatch bytes evenly
    /// across the batch (a super-plan frame has no exact per-query split).
    ///
    /// The whole call fails on the first per-query error — including
    /// [`QueryError::Overloaded`] for a shed query when a
    /// [`ClusterConfig::cost_limit`] is set; use [`Cluster::run_stream`]
    /// when individual outcomes should survive shedding.
    pub fn run_batched(
        &self,
        fs: &[DFunction],
    ) -> Result<(Vec<QueryOutcome>, Duration), QueryError> {
        // Validity pre-pass: reject the whole batch before any dispatch,
        // matching single-query admission semantics.
        for f in fs {
            self.admit(&QueryPlan::lower(f))?;
        }
        let (items, elapsed) = self.run_stream(fs);
        let mut outcomes = Vec::with_capacity(items.len());
        for item in items {
            outcomes.push(item?);
        }
        Ok((outcomes, elapsed))
    }

    /// Run a top-k group keyword query distributedly: every fragment ships
    /// its local top-k, the coordinator merges (exact within the horizon).
    pub fn run_topk(
        &self,
        q: &disks_core::TopKQuery,
    ) -> Result<(Vec<disks_core::Ranked>, QueryStats), QueryError> {
        if q.keywords.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        if q.horizon > self.admission_max_r {
            return Err(QueryError::RadiusExceedsMaxR {
                r: q.horizon,
                max_r: self.admission_max_r,
            });
        }
        // Cost admission: a top-k query's work is bounded by the coverage
        // Dijkstras of its keyword terms at the horizon radius.
        let topk_plan = QueryPlan::lower(&DFunction::intersection_of(&q.keywords, q.horizon));
        let (cost, browned) = self.admit_cost(&topk_plan)?;
        self.gauge.charge(cost);
        let start = Instant::now();
        let base = self.query_counter.get();
        let query_id = base + 1;
        self.query_counter.set(query_id);
        let (c2w_before, w2c_before) = self.link_bytes();

        self.route_fragments(cost);
        let mut request_bytes = 0u64;
        let mut dispatch_respawns = 0u32;
        if self.placement.is_replicated() {
            for (m, frags) in self.routed_groups() {
                let frame =
                    encode_frame(&Request::TopK { query_id, query: q.clone(), fragments: frags });
                request_bytes = request_bytes.max(frame.len() as u64);
                self.send_to_worker(m, &frame, &mut dispatch_respawns);
                self.gauge.note_dispatch_frames(1);
            }
        } else {
            let request =
                encode_frame(&Request::TopK { query_id, query: q.clone(), fragments: vec![] });
            request_bytes = request.len() as u64;
            for m in self.placement.busy_machines() {
                self.send_to_worker(m, &request, &mut dispatch_respawns);
                self.gauge.note_dispatch_frames(1);
            }
        }
        self.note_respawns(dispatch_respawns);

        let mut per_machine: Vec<MachineCost> = vec![MachineCost::default(); self.num_machines()];
        let mut lists: Vec<Vec<disks_core::Ranked>> = Vec::new();
        let make_request = |_: usize, frags: Vec<u32>| Request::TopK {
            query_id,
            query: q.clone(),
            fragments: frags,
        };
        let mut on_response = |_: usize, response: Response, bytes: u64| {
            if let Response::TopKResults { fragment, ranked, cost, .. } = response {
                let m = self.serving_machine(fragment, &cost);
                per_machine[m].absorb(fragment, &cost, ranked.len() as u64, bytes);
                lists.push(ranked);
            }
        };
        let allow_partial = self.allow_partial || browned;
        let gathered = self.gather(base, 1, allow_partial, &make_request, &mut on_response);
        self.gauge.release(cost);
        let report = gathered?;
        let merged = disks_core::merge_topk(lists, q.k);
        let (c2w_after, w2c_after) = self.link_bytes();
        let stats = self.build_stats(
            start,
            per_machine,
            c2w_after - c2w_before,
            w2c_after - w2c_before,
            merged.len(),
            request_bytes,
            &report,
            dispatch_respawns,
            cost,
            browned,
        );
        Ok((merged, stats))
    }

    /// Run an SGKQ (Definition 2).
    pub fn run_sgkq(&self, q: &SgkQuery) -> Result<QueryOutcome, QueryError> {
        let f = q.to_dfunction_checked().ok_or(QueryError::EmptyQuery)?;
        self.run(&f)
    }

    /// Run an RKQ (Definition 3).
    pub fn run_rkq(&self, q: &RangeKeywordQuery) -> Result<QueryOutcome, QueryError> {
        self.run(&q.to_dfunction())
    }

    /// Run a Q-class query (Definition 8).
    pub fn run_qclass(&self, q: &QClassQuery) -> Result<QueryOutcome, QueryError> {
        self.run(&q.to_dfunction())
    }

    /// Shared teardown: signal every worker, then join threads / reap
    /// processes. Safe to call twice (join handles and children are taken).
    fn shutdown_inner(&mut self) {
        let frame = encode_frame(&Request::Shutdown);
        let mut workers = self.workers.borrow_mut();
        for w in workers.iter() {
            let _ = w.link.send_raw(frame.clone());
        }
        for w in workers.iter_mut() {
            match &mut w.peer {
                WorkerPeer::Thread(join) => {
                    if let Some(join) = join.take() {
                        let _ = join.join();
                    }
                }
                WorkerPeer::Process(child) => {
                    if let Some(mut c) = child.take() {
                        // Give the process a moment to exit on the shutdown
                        // frame, then force it.
                        let deadline = Instant::now() + Duration::from_secs(5);
                        loop {
                            match c.try_wait() {
                                Ok(Some(_)) => break,
                                Ok(None) if Instant::now() < deadline => {
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                                _ => {
                                    let _ = c.kill();
                                    let _ = c.wait();
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            w.link.close();
        }
    }

    /// Shut down all workers and join their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_core::{build_all_indexes, CentralizedCoverage, IndexConfig, SetOp, Term};
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::KeywordId;

    fn setup(seed: u64, k: usize, cfg: &IndexConfig) -> (RoadNetwork, Partitioning, Cluster) {
        let net = GridNetworkConfig::tiny(seed).generate();
        let p = MultilevelPartitioner::default().partition(&net, k);
        let indexes = build_all_indexes(&net, &p, cfg);
        let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
        (net, p, cluster)
    }

    fn top_keywords(net: &RoadNetwork, n: usize) -> Vec<KeywordId> {
        let freqs = net.keyword_frequencies();
        let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
        ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
        ranked.into_iter().take(n).map(|k| KeywordId(k as u32)).collect()
    }

    #[test]
    fn distributed_sgkq_matches_centralized_with_zero_inter_worker_bytes() {
        let (net, _, cluster) = setup(70, 3, &IndexConfig::unbounded());
        let kws = top_keywords(&net, 2);
        let q = SgkQuery::new(kws, 4 * net.avg_edge_weight());
        let outcome = cluster.run_sgkq(&q).unwrap();
        let mut central = CentralizedCoverage::new(&net);
        assert_eq!(outcome.results, central.sgkq(&q).unwrap());
        assert_eq!(outcome.stats.inter_worker_bytes, 0);
        assert_eq!(outcome.stats.rounds, 1);
        assert_eq!(outcome.stats.retries, 0);
        assert_eq!(outcome.stats.respawned_workers, 0);
        assert!(outcome.stats.degraded_fragments.is_empty());
        assert!(outcome.stats.coordinator_to_worker_bytes > 0);
        assert!(outcome.stats.worker_to_coordinator_bytes > 0);
        cluster.shutdown();
    }

    #[test]
    fn rkq_and_qclass_match_centralized() {
        let (net, _, cluster) = setup(71, 4, &IndexConfig::unbounded());
        let mut central = CentralizedCoverage::new(&net);
        let obj = net.node_ids().find(|&n| net.is_object(n)).unwrap();
        let kw = net.keywords(obj)[0];
        let rkq = RangeKeywordQuery::new(obj, vec![kw], 6 * net.avg_edge_weight());
        assert_eq!(cluster.run_rkq(&rkq).unwrap().results, central.rkq(&rkq).unwrap());

        let kws = top_keywords(&net, 3);
        let f = DFunction::single(Term::Keyword(kws[0]), 4 * net.avg_edge_weight())
            .then(SetOp::Subtract, Term::Keyword(kws[1]), 2 * net.avg_edge_weight())
            .then(SetOp::Union, Term::Keyword(kws[2]), net.avg_edge_weight());
        let q = QClassQuery::new(f);
        assert_eq!(cluster.run_qclass(&q).unwrap().results, central.qclass(&q).unwrap());
        cluster.shutdown();
    }

    #[test]
    fn fewer_machines_than_fragments_still_correct() {
        let net = GridNetworkConfig::tiny(72).generate();
        let p = MultilevelPartitioner::default().partition(&net, 6);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let cluster = Cluster::build(
            &net,
            &p,
            indexes,
            ClusterConfig {
                machines: Some(2),
                network: NetworkModel::instant(),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(cluster.num_machines(), 2);
        let kws = top_keywords(&net, 2);
        let q = SgkQuery::new(kws, 3 * net.avg_edge_weight());
        let outcome = cluster.run_sgkq(&q).unwrap();
        let mut central = CentralizedCoverage::new(&net);
        assert_eq!(outcome.results, central.sgkq(&q).unwrap());
        // Each busy machine hosts 3 fragments.
        let busy: Vec<_> =
            outcome.stats.per_machine.iter().filter(|m| !m.fragments.is_empty()).collect();
        assert_eq!(busy.len(), 2);
        assert_eq!(busy[0].fragments.len(), 3);
        cluster.shutdown();
    }

    #[test]
    fn unindexed_rkq_location_rejected_by_coordinator() {
        let (net, _, cluster) = setup(73, 2, &IndexConfig::unbounded());
        // A junction node is not DL-indexed under ObjectsOnly scope.
        let junction = net.node_ids().find(|&n| !net.is_object(n)).unwrap();
        let rkq = RangeKeywordQuery::new(junction, vec![KeywordId(0)], 10);
        assert!(matches!(cluster.run_rkq(&rkq), Err(QueryError::UnindexedQueryLocation(_))));
        // With AllNodes scope the same query is served.
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let cfg = IndexConfig::unbounded().with_scope(DlScope::AllNodes);
        let indexes = build_all_indexes(&net, &p, &cfg);
        let cluster2 = Cluster::build(&net, &p, indexes, ClusterConfig::default());
        let mut central = CentralizedCoverage::new(&net);
        // Use a keyword that exists so intersection may be non-trivial.
        let kw = top_keywords(&net, 1)[0];
        let rkq2 = RangeKeywordQuery::new(junction, vec![kw], 8 * net.avg_edge_weight());
        assert_eq!(cluster2.run_rkq(&rkq2).unwrap().results, central.rkq(&rkq2).unwrap());
        cluster2.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn radius_over_max_r_rejected_at_admission_without_dispatch() {
        let net = GridNetworkConfig::tiny(74).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let max_r = 2 * net.avg_edge_weight();
        let cfg = IndexConfig::with_max_r(max_r);
        let indexes = build_all_indexes(&net, &p, &cfg);
        let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
        let r = 100 * net.avg_edge_weight();
        let q = SgkQuery::new(vec![KeywordId(0)], r);
        let (c2w_before, w2c_before) = cluster.link_totals();
        // The coordinator rejects at admission with the same typed error a
        // worker used to raise — including the index's real maxR.
        match cluster.run_sgkq(&q) {
            Err(QueryError::RadiusExceedsMaxR { r: got_r, max_r: got_max }) => {
                assert_eq!(got_r, r);
                assert_eq!(got_max, max_r);
            }
            other => panic!("expected RadiusExceedsMaxR, got {other:?}"),
        }
        // The dispatch counters prove no worker ever saw the query.
        assert_eq!(cluster.link_totals(), (c2w_before, w2c_before));
        // An admitted radius at the boundary still runs.
        let ok = SgkQuery::new(vec![KeywordId(0)], max_r);
        cluster.run_sgkq(&ok).expect("boundary radius admitted");
        assert!(cluster.link_totals().0 > c2w_before);
        cluster.shutdown();
    }

    #[test]
    fn empty_plan_rejected_at_admission_without_dispatch() {
        let (_, _, cluster) = setup(83, 2, &IndexConfig::unbounded());
        let (c2w_before, _) = cluster.link_totals();
        let q = SgkQuery { keywords: vec![], radius: 5 };
        assert!(matches!(cluster.run_sgkq(&q), Err(QueryError::EmptyQuery)));
        assert_eq!(cluster.link_totals().0, c2w_before, "no frame dispatched");
        cluster.shutdown();
    }

    #[test]
    fn repeated_queries_hit_the_coverage_cache() {
        // Explicit budget: the default honours DISKS_COVERAGE_CACHE, which
        // the cache-disabled CI lane sets to 0.
        let net = GridNetworkConfig::tiny(84).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let cluster = Cluster::build(
            &net,
            &p,
            indexes,
            ClusterConfig { coverage_cache_bytes: 64 << 20, ..ClusterConfig::default() },
        );
        let kws = top_keywords(&net, 2);
        let q = SgkQuery::new(kws, 4 * net.avg_edge_weight());
        let cold = cluster.run_sgkq(&q).unwrap();
        assert_eq!(cold.stats.cache_hits, 0, "cold cache");
        assert!(cold.stats.cache_misses > 0);
        // This net yields both cacheable coverages and ones small enough for
        // the content bypass, so the test covers their interplay.
        assert!(cold.stats.cache_bypassed > 0, "expected some bypass-small coverages");
        assert!(cold.stats.cache_bypassed < cold.stats.cache_misses, "and some cacheable ones");
        let warm = cluster.run_sgkq(&q).unwrap();
        assert_eq!(warm.results, cold.results);
        // Bypassed slots miss (and bypass) again; every cached slot hits.
        assert_eq!(warm.stats.cache_misses, cold.stats.cache_bypassed, "only bypassed slots miss");
        assert_eq!(warm.stats.cache_hits, cold.stats.cache_misses - cold.stats.cache_bypassed);
        assert_eq!(warm.stats.cache_bypassed, cold.stats.cache_bypassed);
        // Warm hits skip their per-slot Dijkstras; only bypassed slots settle.
        assert!(warm.stats.total_settled() < cold.stats.total_settled());
        let lifetime = cluster.cache_counters();
        assert_eq!(lifetime.hits, warm.stats.cache_hits);
        assert_eq!(lifetime.misses, cold.stats.cache_misses + warm.stats.cache_misses);
        assert_eq!(lifetime.bypassed, cold.stats.cache_bypassed + warm.stats.cache_bypassed);
        cluster.shutdown();
    }

    #[test]
    fn disabled_cache_answers_identically_with_zero_cache_traffic() {
        let net = GridNetworkConfig::tiny(85).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let cluster = Cluster::build(
            &net,
            &p,
            indexes,
            ClusterConfig { coverage_cache_bytes: 0, ..ClusterConfig::default() },
        );
        let kws = top_keywords(&net, 2);
        let q = SgkQuery::new(kws, 4 * net.avg_edge_weight());
        let first = cluster.run_sgkq(&q).unwrap();
        let second = cluster.run_sgkq(&q).unwrap();
        assert_eq!(first.results, second.results);
        assert_eq!(cluster.cache_counters(), crate::cache::CacheCounters::default());
        assert_eq!(second.stats.cache_hits, 0);
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.inter_worker_bytes, 0);
        cluster.shutdown();
    }

    #[test]
    fn stats_report_load_balance() {
        let (net, _, cluster) = setup(75, 4, &IndexConfig::unbounded());
        let kws = top_keywords(&net, 2);
        let q = SgkQuery::new(kws, 5 * net.avg_edge_weight());
        let outcome = cluster.run_sgkq(&q).unwrap();
        assert!(outcome.stats.unbalance_factor >= 1.0);
        assert_eq!(outcome.stats.per_machine.len(), 4);
        assert!(outcome.stats.modeled_response_time >= outcome.stats.slowest_task);
        assert_eq!(outcome.stats.results, outcome.results.len());
        cluster.shutdown();
    }

    #[test]
    fn pipelined_batch_matches_sequential_runs() {
        let (net, _, cluster) = setup(78, 3, &IndexConfig::unbounded());
        let kws = top_keywords(&net, 3);
        let e = net.avg_edge_weight();
        let fs: Vec<DFunction> = (1..=6)
            .map(|i| SgkQuery::new(vec![kws[i % kws.len()]], (i as u64) * e).to_dfunction())
            .collect();
        let (batch, elapsed) = cluster.run_pipelined(&fs).unwrap();
        assert_eq!(batch.len(), fs.len());
        assert!(elapsed > std::time::Duration::ZERO);
        for (f, nodes) in fs.iter().zip(&batch) {
            let solo = cluster.run(f).unwrap();
            assert_eq!(&solo.results, nodes, "query {f}");
        }
        // Fault-free batches record no recovery events.
        assert_eq!(cluster.recovery_counters(), RecoveryCounters::default());
        cluster.shutdown();
    }

    #[test]
    fn empty_sgkq_rejected() {
        let (_, _, cluster) = setup(76, 2, &IndexConfig::unbounded());
        let q = SgkQuery { keywords: vec![], radius: 5 };
        assert!(matches!(cluster.run_sgkq(&q), Err(QueryError::EmptyQuery)));
        cluster.shutdown();
    }

    #[test]
    fn distributed_topk_matches_centralized() {
        use disks_core::{centralized_topk, ScoreCombine, TopKQuery};
        let (net, _, cluster) = setup(80, 4, &IndexConfig::unbounded());
        let kws = top_keywords(&net, 2);
        let e = net.avg_edge_weight();
        for combine in [ScoreCombine::Max, ScoreCombine::Sum] {
            for k in [1usize, 5, 25, 10_000] {
                let q = TopKQuery::new(kws.clone(), k, 8 * e, combine);
                let (ranked, stats) = cluster.run_topk(&q).unwrap();
                let expect = centralized_topk(&net, &q).unwrap();
                assert_eq!(ranked, expect, "combine={combine:?} k={k}");
                assert_eq!(stats.inter_worker_bytes, 0);
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn topk_horizon_above_max_r_rejected() {
        let net = GridNetworkConfig::tiny(81).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let cfg = IndexConfig::with_max_r(net.avg_edge_weight());
        let indexes = build_all_indexes(&net, &p, &cfg);
        let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
        let q = disks_core::TopKQuery::new(
            vec![KeywordId(0)],
            5,
            100 * net.avg_edge_weight(),
            disks_core::ScoreCombine::Max,
        );
        assert!(cluster.run_topk(&q).is_err());
        // A bi-level cluster serves the same query.
        let bilevel = Cluster::build_bilevel(&net, &p, &cfg, ClusterConfig::default());
        let (ranked, _) = bilevel.run_topk(&q).unwrap();
        let expect = disks_core::centralized_topk(&net, &q).unwrap();
        assert_eq!(ranked, expect);
        bilevel.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn bilevel_cluster_serves_radii_beyond_max_r() {
        let net = GridNetworkConfig::tiny(79).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let e = net.avg_edge_weight();
        let cfg = IndexConfig::with_max_r(3 * e);
        let cluster = Cluster::build_bilevel(&net, &p, &cfg, ClusterConfig::default());
        let mut central = CentralizedCoverage::new(&net);
        let kw = top_keywords(&net, 1)[0];
        // Small radius → primary; large radius → secondary; both exact.
        for r in [e, 2 * e, 10 * e, 30 * e] {
            let q = SgkQuery::new(vec![kw], r);
            let outcome = cluster.run_sgkq(&q).expect("bilevel query");
            assert_eq!(outcome.results, central.sgkq(&q).unwrap(), "r={r}");
        }
        cluster.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let (net, _, cluster) = setup(77, 2, &IndexConfig::unbounded());
        let kws = top_keywords(&net, 1);
        let _ = cluster.run_sgkq(&SgkQuery::new(kws, net.avg_edge_weight())).unwrap();
        drop(cluster); // must not hang or leak threads
    }

    #[test]
    fn shutdown_after_explicit_worker_death_does_not_hang() {
        // Kill machine 0 on its first request; shutdown must still join
        // cleanly even though one thread is already gone.
        let net = GridNetworkConfig::tiny(82).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let cluster = Cluster::build(
            &net,
            &p,
            indexes,
            ClusterConfig {
                faults: Some(FaultPlan::new(1).kill_worker(0, 1)),
                deadline: Duration::from_millis(200),
                // Pinned: this test asserts the respawn-on-retry path, which
                // the replicated CI lane would bypass by re-routing the
                // retry to a surviving replica.
                replicas: 0,
                ..ClusterConfig::default()
            },
        );
        let kws = top_keywords(&net, 1);
        // The killed worker is detected and respawned on retry; the query
        // still completes.
        let outcome = cluster.run_sgkq(&SgkQuery::new(kws, net.avg_edge_weight())).unwrap();
        assert!(outcome.stats.respawned_workers >= 1);
        cluster.shutdown();
    }
}
