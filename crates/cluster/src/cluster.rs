//! The coordinator and cluster lifecycle.
//!
//! `Cluster::build` partitions responsibility: each worker thread receives
//! the [`FragmentEngine`]s of its assigned fragments (built from the global
//! network **once**, here — after that the global network is no longer
//! consulted by any worker), plus a request channel and a counted response
//! link. Queries fan out as one `Evaluate` frame per busy machine and gather
//! one `Results` frame per hosted fragment; the final result is the union of
//! per-fragment results (Lemma 1).

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};

use bytes::Bytes;
use disks_core::{
    DFunction, DlScope, FragmentEngine, NpdIndex, QClassQuery, QueryError, RangeKeywordQuery,
    SgkQuery, Term,
};
use disks_partition::Partitioning;
use disks_roadnet::{NodeId, RoadNetwork};

use crate::message::{decode_frame, encode_frame, Request, Response};
use crate::scheduler::Assignment;
use crate::stats::{MachineCost, QueryStats};
use crate::transport::{counted_link, LinkCounters, NetworkModel};
use crate::worker::{worker_loop, WorkerEngine};

/// Cluster construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of worker machines; `None` = one per fragment (the paper's
    /// default deployment).
    pub machines: Option<usize>,
    /// Network model for modeled response times.
    pub network: NetworkModel,
}

impl Default for ClusterConfig {
    // NetworkModel::default() is switch_100mbps(), but spelling it out here
    // documents the paper's setting; silence the derivable-impls lint.
    #[allow(clippy::derivable_impls)]
    fn default() -> Self {
        ClusterConfig { machines: None, network: NetworkModel::switch_100mbps() }
    }
}

/// Result + statistics of one distributed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Union of per-fragment results, sorted by node id.
    pub results: Vec<NodeId>,
    pub stats: QueryStats,
}

struct WorkerHandle {
    requests: Sender<Bytes>,
    to_worker: Arc<LinkCounters>,
    join: Option<JoinHandle<()>>,
}

/// A running share-nothing cluster.
pub struct Cluster {
    workers: Vec<WorkerHandle>,
    responses: Receiver<Bytes>,
    from_workers: Arc<LinkCounters>,
    assignment: Assignment,
    network: NetworkModel,
    /// DL scope of the indexes, for query-location validation.
    dl_scope: DlScope,
    /// Global object bitmap: the coordinator validates RKQ locations before
    /// dispatch (workers cannot — they are share-nothing; see
    /// `FragmentEngine::coverage`).
    is_object: Vec<bool>,
    query_counter: std::cell::Cell<u64>,
}

impl Cluster {
    /// Build engines from `indexes` and spawn the worker machines.
    ///
    /// # Panics
    /// Panics if `indexes` does not contain exactly one index per fragment
    /// of `partitioning`, in fragment order (as produced by
    /// [`disks_core::build_all_indexes`]).
    pub fn build(
        net: &RoadNetwork,
        partitioning: &Partitioning,
        indexes: Vec<NpdIndex>,
        config: ClusterConfig,
    ) -> Cluster {
        let k = partitioning.num_fragments();
        assert_eq!(indexes.len(), k, "one index per fragment required");
        for (i, idx) in indexes.iter().enumerate() {
            assert_eq!(idx.fragment().index(), i, "indexes must be in fragment order");
        }
        let dl_scope = indexes.first().map(|i| i.dl_scope()).unwrap_or(DlScope::ObjectsOnly);
        // Build each fragment's engine, then distribute them to machines.
        let engines: Vec<WorkerEngine> = indexes
            .iter()
            .map(|idx| {
                WorkerEngine::Single(
                    FragmentEngine::new(net, partitioning, idx).expect("engine build"),
                )
            })
            .collect();
        Self::build_with_engines(net, partitioning, engines, dl_scope, config)
    }

    /// Build a §5.5 **bi-level** cluster: every machine holds a bounded
    /// primary index (`config_primary.max_r`, which must be finite) plus an
    /// unbounded secondary, and routes each query by its largest radius —
    /// so queries with `r > maxR` are served instead of rejected.
    pub fn build_bilevel(
        net: &RoadNetwork,
        partitioning: &Partitioning,
        config_primary: &disks_core::IndexConfig,
        config: ClusterConfig,
    ) -> Cluster {
        let engines: Vec<WorkerEngine> = partitioning
            .fragment_ids()
            .map(|f| {
                WorkerEngine::BiLevel(
                    disks_core::BiLevelIndex::build(net, partitioning, f, config_primary)
                        .expect("bilevel build"),
                )
            })
            .collect();
        Self::build_with_engines(net, partitioning, engines, config_primary.dl_scope, config)
    }

    fn build_with_engines(
        net: &RoadNetwork,
        partitioning: &Partitioning,
        engines: Vec<WorkerEngine>,
        dl_scope: DlScope,
        config: ClusterConfig,
    ) -> Cluster {
        let k = partitioning.num_fragments();
        let machines = config.machines.unwrap_or(k).max(1);
        let assignment = Assignment::round_robin(k, machines);
        let mut engines: Vec<Option<WorkerEngine>> = engines.into_iter().map(Some).collect();

        let (resp_tx, resp_rx, from_workers) = counted_link();
        let mut workers = Vec::with_capacity(machines);
        for m in 0..machines {
            let my_engines: Vec<WorkerEngine> = assignment
                .fragments_of(m)
                .iter()
                .map(|f| engines[f.index()].take().expect("engine assigned once"))
                .collect();
            let (req_tx, req_rx) = crossbeam::channel::unbounded();
            let to_worker = Arc::new(LinkCounters::default());
            let responses = resp_tx.clone();
            let join = std::thread::Builder::new()
                .name(format!("disks-worker-{m}"))
                .spawn(move || worker_loop(m, my_engines, req_rx, responses))
                .expect("spawn worker");
            workers.push(WorkerHandle { requests: req_tx, to_worker, join: Some(join) });
        }

        let is_object = net.node_ids().map(|n| net.is_object(n)).collect();
        Cluster {
            workers,
            responses: resp_rx,
            from_workers,
            assignment,
            network: config.network,
            dl_scope,
            is_object,
            query_counter: std::cell::Cell::new(0),
        }
    }

    /// Number of worker machines.
    pub fn num_machines(&self) -> usize {
        self.workers.len()
    }

    /// The fragment → machine assignment in effect.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Validate a D-function before dispatch (coordinator-side checks the
    /// share-nothing workers cannot perform).
    fn validate(&self, f: &DFunction) -> Result<(), QueryError> {
        for t in f.terms() {
            if let Term::Node(l) = t.term {
                if l.index() >= self.is_object.len() {
                    return Err(QueryError::UnindexedQueryLocation(l));
                }
                if self.dl_scope == DlScope::ObjectsOnly && !self.is_object[l.index()] {
                    return Err(QueryError::UnindexedQueryLocation(l));
                }
            }
        }
        Ok(())
    }

    /// Run a D-function distributedly: dispatch to busy machines, gather one
    /// response per fragment, union the results (Lemma 1).
    pub fn run(&self, f: &DFunction) -> Result<QueryOutcome, QueryError> {
        self.validate(f)?;
        let start = Instant::now();
        let query_id = self.query_counter.get() + 1;
        self.query_counter.set(query_id);

        let c2w_before: u64 = self.workers.iter().map(|w| w.to_worker.bytes()).sum();
        let w2c_before = self.from_workers.bytes();

        let request = encode_frame(&Request::Evaluate { query_id, dfunction: f.clone() });
        let request_bytes = request.len() as u64;
        let mut expected = 0usize;
        for m in self.assignment.busy_machines() {
            self.workers[m].requests.send(request.clone()).expect("worker alive");
            self.workers[m].to_worker.record_send(request_bytes);
            expected += self.assignment.fragments_of(m).len();
        }

        let mut per_machine: Vec<MachineCost> =
            vec![MachineCost::default(); self.workers.len()];
        let mut results: Vec<NodeId> = Vec::new();
        let mut failure: Option<String> = None;
        for _ in 0..expected {
            let frame = self.responses.recv().expect("workers alive");
            let bytes = frame.len() as u64;
            match decode_frame::<Response>(frame).expect("well-formed response") {
                Response::Results { query_id: qid, fragment, nodes, cost } => {
                    debug_assert_eq!(qid, query_id);
                    let m = self.assignment.machine_of(disks_partition::FragmentId(fragment));
                    per_machine[m].absorb(fragment, &cost, nodes.len() as u64, bytes);
                    results.extend(nodes);
                }
                Response::Failed { error, .. } => {
                    failure.get_or_insert(error);
                }
                other @ Response::TopKResults { .. } => {
                    unreachable!("TopK response to an Evaluate request: {other:?}")
                }
            }
        }
        if let Some(error) = failure {
            // Surface the typed radius error when recognizable.
            return Err(if error.contains("maxR") {
                QueryError::RadiusExceedsMaxR { r: f.max_radius(), max_r: 0 }
            } else {
                QueryError::EmptyQuery
            });
        }
        results.sort_unstable();

        let c2w_after: u64 = self.workers.iter().map(|w| w.to_worker.bytes()).sum();
        let w2c_after = self.from_workers.bytes();
        let stats = QueryStats {
            wall_time: start.elapsed(),
            per_machine,
            coordinator_to_worker_bytes: c2w_after - c2w_before,
            worker_to_coordinator_bytes: w2c_after - w2c_before,
            inter_worker_bytes: 0, // no worker↔worker links exist (Theorem 3)
            rounds: 1,
            results: results.len(),
            ..QueryStats::default()
        }
        .finalize(&self.network, request_bytes);
        Ok(QueryOutcome { results, stats })
    }

    /// Run a batch of D-functions *pipelined*: all requests are dispatched
    /// before any response is gathered, so worker machines process their
    /// queues concurrently — the throughput mode the paper's introduction
    /// motivates ("it will improve query throughput"). Returns the sorted
    /// result set per query plus the batch wall-clock.
    pub fn run_pipelined(
        &self,
        fs: &[DFunction],
    ) -> Result<(Vec<Vec<NodeId>>, std::time::Duration), QueryError> {
        for f in fs {
            self.validate(f)?;
        }
        let start = Instant::now();
        let base = self.query_counter.get();
        self.query_counter.set(base + fs.len() as u64);
        let mut expected = 0usize;
        for (i, f) in fs.iter().enumerate() {
            let query_id = base + 1 + i as u64;
            let request = encode_frame(&Request::Evaluate { query_id, dfunction: f.clone() });
            for m in self.assignment.busy_machines() {
                self.workers[m].requests.send(request.clone()).expect("worker alive");
                self.workers[m].to_worker.record_send(request.len() as u64);
                expected += self.assignment.fragments_of(m).len();
            }
        }
        let mut results: Vec<Vec<NodeId>> = vec![Vec::new(); fs.len()];
        let mut failure: Option<String> = None;
        for _ in 0..expected {
            let frame = self.responses.recv().expect("workers alive");
            match decode_frame::<Response>(frame).expect("well-formed response") {
                Response::Results { query_id, nodes, .. } => {
                    let slot = (query_id - base - 1) as usize;
                    results[slot].extend(nodes);
                }
                Response::Failed { error, .. } => {
                    failure.get_or_insert(error);
                }
                other @ Response::TopKResults { .. } => {
                    unreachable!("TopK response to a pipelined Evaluate batch: {other:?}")
                }
            }
        }
        if let Some(error) = failure {
            return Err(if error.contains("maxR") {
                QueryError::RadiusExceedsMaxR { r: 0, max_r: 0 }
            } else {
                QueryError::EmptyQuery
            });
        }
        for r in &mut results {
            r.sort_unstable();
        }
        Ok((results, start.elapsed()))
    }

    /// Run a top-k group keyword query distributedly: every fragment ships
    /// its local top-k, the coordinator merges (exact within the horizon).
    pub fn run_topk(
        &self,
        q: &disks_core::TopKQuery,
    ) -> Result<(Vec<disks_core::Ranked>, QueryStats), QueryError> {
        if q.keywords.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let start = Instant::now();
        let query_id = self.query_counter.get() + 1;
        self.query_counter.set(query_id);
        let c2w_before: u64 = self.workers.iter().map(|w| w.to_worker.bytes()).sum();
        let w2c_before = self.from_workers.bytes();

        let request = encode_frame(&Request::TopK { query_id, query: q.clone() });
        let request_bytes = request.len() as u64;
        let mut expected = 0usize;
        for m in self.assignment.busy_machines() {
            self.workers[m].requests.send(request.clone()).expect("worker alive");
            self.workers[m].to_worker.record_send(request_bytes);
            expected += self.assignment.fragments_of(m).len();
        }
        let mut per_machine: Vec<MachineCost> = vec![MachineCost::default(); self.workers.len()];
        let mut lists: Vec<Vec<disks_core::Ranked>> = Vec::with_capacity(expected);
        let mut failure: Option<String> = None;
        for _ in 0..expected {
            let frame = self.responses.recv().expect("workers alive");
            let bytes = frame.len() as u64;
            match decode_frame::<Response>(frame).expect("well-formed response") {
                Response::TopKResults { query_id: qid, fragment, ranked, cost } => {
                    debug_assert_eq!(qid, query_id);
                    let m = self.assignment.machine_of(disks_partition::FragmentId(fragment));
                    per_machine[m].absorb(fragment, &cost, ranked.len() as u64, bytes);
                    lists.push(ranked);
                }
                Response::Failed { error, .. } => {
                    failure.get_or_insert(error);
                }
                other => panic!("unexpected response to TopK: {other:?}"),
            }
        }
        if let Some(error) = failure {
            return Err(if error.contains("maxR") {
                QueryError::RadiusExceedsMaxR { r: q.horizon, max_r: 0 }
            } else {
                QueryError::EmptyQuery
            });
        }
        let merged = disks_core::merge_topk(lists, q.k);
        let c2w_after: u64 = self.workers.iter().map(|w| w.to_worker.bytes()).sum();
        let w2c_after = self.from_workers.bytes();
        let stats = QueryStats {
            wall_time: start.elapsed(),
            per_machine,
            coordinator_to_worker_bytes: c2w_after - c2w_before,
            worker_to_coordinator_bytes: w2c_after - w2c_before,
            inter_worker_bytes: 0,
            rounds: 1,
            results: merged.len(),
            ..QueryStats::default()
        }
        .finalize(&self.network, request_bytes);
        Ok((merged, stats))
    }

    /// Run an SGKQ (Definition 2).
    pub fn run_sgkq(&self, q: &SgkQuery) -> Result<QueryOutcome, QueryError> {
        let f = q.to_dfunction_checked().ok_or(QueryError::EmptyQuery)?;
        self.run(&f)
    }

    /// Run an RKQ (Definition 3).
    pub fn run_rkq(&self, q: &RangeKeywordQuery) -> Result<QueryOutcome, QueryError> {
        self.run(&q.to_dfunction())
    }

    /// Run a Q-class query (Definition 8).
    pub fn run_qclass(&self, q: &QClassQuery) -> Result<QueryOutcome, QueryError> {
        self.run(&q.to_dfunction())
    }

    /// Shut down all workers and join their threads.
    pub fn shutdown(mut self) {
        let frame = encode_frame(&Request::Shutdown);
        for w in &self.workers {
            let _ = w.requests.send(frame.clone());
        }
        for w in &mut self.workers {
            if let Some(join) = w.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        let frame = encode_frame(&Request::Shutdown);
        for w in &self.workers {
            let _ = w.requests.send(frame.clone());
        }
        for w in &mut self.workers {
            if let Some(join) = w.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_core::{build_all_indexes, CentralizedCoverage, IndexConfig, SetOp};
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::KeywordId;

    fn setup(
        seed: u64,
        k: usize,
        cfg: &IndexConfig,
    ) -> (RoadNetwork, Partitioning, Cluster) {
        let net = GridNetworkConfig::tiny(seed).generate();
        let p = MultilevelPartitioner::default().partition(&net, k);
        let indexes = build_all_indexes(&net, &p, cfg);
        let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
        (net, p, cluster)
    }

    fn top_keywords(net: &RoadNetwork, n: usize) -> Vec<KeywordId> {
        let freqs = net.keyword_frequencies();
        let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
        ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
        ranked.into_iter().take(n).map(|k| KeywordId(k as u32)).collect()
    }

    #[test]
    fn distributed_sgkq_matches_centralized_with_zero_inter_worker_bytes() {
        let (net, _, cluster) = setup(70, 3, &IndexConfig::unbounded());
        let kws = top_keywords(&net, 2);
        let q = SgkQuery::new(kws, 4 * net.avg_edge_weight());
        let outcome = cluster.run_sgkq(&q).unwrap();
        let mut central = CentralizedCoverage::new(&net);
        assert_eq!(outcome.results, central.sgkq(&q).unwrap());
        assert_eq!(outcome.stats.inter_worker_bytes, 0);
        assert_eq!(outcome.stats.rounds, 1);
        assert!(outcome.stats.coordinator_to_worker_bytes > 0);
        assert!(outcome.stats.worker_to_coordinator_bytes > 0);
        cluster.shutdown();
    }

    #[test]
    fn rkq_and_qclass_match_centralized() {
        let (net, _, cluster) = setup(71, 4, &IndexConfig::unbounded());
        let mut central = CentralizedCoverage::new(&net);
        let obj = net.node_ids().find(|&n| net.is_object(n)).unwrap();
        let kw = net.keywords(obj)[0];
        let rkq = RangeKeywordQuery::new(obj, vec![kw], 6 * net.avg_edge_weight());
        assert_eq!(cluster.run_rkq(&rkq).unwrap().results, central.rkq(&rkq).unwrap());

        let kws = top_keywords(&net, 3);
        let f = DFunction::single(Term::Keyword(kws[0]), 4 * net.avg_edge_weight())
            .then(SetOp::Subtract, Term::Keyword(kws[1]), 2 * net.avg_edge_weight())
            .then(SetOp::Union, Term::Keyword(kws[2]), net.avg_edge_weight());
        let q = QClassQuery::new(f);
        assert_eq!(cluster.run_qclass(&q).unwrap().results, central.qclass(&q).unwrap());
        cluster.shutdown();
    }

    #[test]
    fn fewer_machines_than_fragments_still_correct() {
        let net = GridNetworkConfig::tiny(72).generate();
        let p = MultilevelPartitioner::default().partition(&net, 6);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let cluster = Cluster::build(
            &net,
            &p,
            indexes,
            ClusterConfig { machines: Some(2), network: NetworkModel::instant() },
        );
        assert_eq!(cluster.num_machines(), 2);
        let kws = top_keywords(&net, 2);
        let q = SgkQuery::new(kws, 3 * net.avg_edge_weight());
        let outcome = cluster.run_sgkq(&q).unwrap();
        let mut central = CentralizedCoverage::new(&net);
        assert_eq!(outcome.results, central.sgkq(&q).unwrap());
        // Each busy machine hosts 3 fragments.
        let busy: Vec<_> =
            outcome.stats.per_machine.iter().filter(|m| !m.fragments.is_empty()).collect();
        assert_eq!(busy.len(), 2);
        assert_eq!(busy[0].fragments.len(), 3);
        cluster.shutdown();
    }

    #[test]
    fn unindexed_rkq_location_rejected_by_coordinator() {
        let (net, _, cluster) = setup(73, 2, &IndexConfig::unbounded());
        // A junction node is not DL-indexed under ObjectsOnly scope.
        let junction = net.node_ids().find(|&n| !net.is_object(n)).unwrap();
        let rkq = RangeKeywordQuery::new(junction, vec![KeywordId(0)], 10);
        assert!(matches!(
            cluster.run_rkq(&rkq),
            Err(QueryError::UnindexedQueryLocation(_))
        ));
        // With AllNodes scope the same query is served.
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let cfg = IndexConfig::unbounded().with_scope(DlScope::AllNodes);
        let indexes = build_all_indexes(&net, &p, &cfg);
        let cluster2 = Cluster::build(&net, &p, indexes, ClusterConfig::default());
        let mut central = CentralizedCoverage::new(&net);
        // Use a keyword that exists so intersection may be non-trivial.
        let kw = top_keywords(&net, 1)[0];
        let rkq2 = RangeKeywordQuery::new(junction, vec![kw], 8 * net.avg_edge_weight());
        assert_eq!(cluster2.run_rkq(&rkq2).unwrap().results, central.rkq(&rkq2).unwrap());
        cluster2.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn radius_over_max_r_propagates_error() {
        let net = GridNetworkConfig::tiny(74).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let cfg = IndexConfig::with_max_r(2 * net.avg_edge_weight());
        let indexes = build_all_indexes(&net, &p, &cfg);
        let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
        let q = SgkQuery::new(vec![KeywordId(0)], 100 * net.avg_edge_weight());
        assert!(matches!(
            cluster.run_sgkq(&q),
            Err(QueryError::RadiusExceedsMaxR { .. })
        ));
        cluster.shutdown();
    }

    #[test]
    fn stats_report_load_balance() {
        let (net, _, cluster) = setup(75, 4, &IndexConfig::unbounded());
        let kws = top_keywords(&net, 2);
        let q = SgkQuery::new(kws, 5 * net.avg_edge_weight());
        let outcome = cluster.run_sgkq(&q).unwrap();
        assert!(outcome.stats.unbalance_factor >= 1.0);
        assert_eq!(outcome.stats.per_machine.len(), 4);
        assert!(outcome.stats.modeled_response_time >= outcome.stats.slowest_task);
        assert_eq!(
            outcome.stats.results,
            outcome.results.len()
        );
        cluster.shutdown();
    }

    #[test]
    fn pipelined_batch_matches_sequential_runs() {
        let (net, _, cluster) = setup(78, 3, &IndexConfig::unbounded());
        let kws = top_keywords(&net, 3);
        let e = net.avg_edge_weight();
        let fs: Vec<DFunction> = (1..=6)
            .map(|i| {
                SgkQuery::new(vec![kws[i % kws.len()]], (i as u64) * e).to_dfunction()
            })
            .collect();
        let (batch, elapsed) = cluster.run_pipelined(&fs).unwrap();
        assert_eq!(batch.len(), fs.len());
        assert!(elapsed > std::time::Duration::ZERO);
        for (f, nodes) in fs.iter().zip(&batch) {
            let solo = cluster.run(f).unwrap();
            assert_eq!(&solo.results, nodes, "query {f}");
        }
        cluster.shutdown();
    }

    #[test]
    fn empty_sgkq_rejected() {
        let (_, _, cluster) = setup(76, 2, &IndexConfig::unbounded());
        let q = SgkQuery { keywords: vec![], radius: 5 };
        assert!(matches!(cluster.run_sgkq(&q), Err(QueryError::EmptyQuery)));
        cluster.shutdown();
    }

    #[test]
    fn distributed_topk_matches_centralized() {
        use disks_core::{centralized_topk, ScoreCombine, TopKQuery};
        let (net, _, cluster) = setup(80, 4, &IndexConfig::unbounded());
        let kws = top_keywords(&net, 2);
        let e = net.avg_edge_weight();
        for combine in [ScoreCombine::Max, ScoreCombine::Sum] {
            for k in [1usize, 5, 25, 10_000] {
                let q = TopKQuery::new(kws.clone(), k, 8 * e, combine);
                let (ranked, stats) = cluster.run_topk(&q).unwrap();
                let expect = centralized_topk(&net, &q).unwrap();
                assert_eq!(ranked, expect, "combine={combine:?} k={k}");
                assert_eq!(stats.inter_worker_bytes, 0);
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn topk_horizon_above_max_r_rejected() {
        let net = GridNetworkConfig::tiny(81).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let cfg = IndexConfig::with_max_r(net.avg_edge_weight());
        let indexes = build_all_indexes(&net, &p, &cfg);
        let cluster = Cluster::build(&net, &p, indexes, ClusterConfig::default());
        let q = disks_core::TopKQuery::new(
            vec![KeywordId(0)],
            5,
            100 * net.avg_edge_weight(),
            disks_core::ScoreCombine::Max,
        );
        assert!(cluster.run_topk(&q).is_err());
        // A bi-level cluster serves the same query.
        let bilevel = Cluster::build_bilevel(&net, &p, &cfg, ClusterConfig::default());
        let (ranked, _) = bilevel.run_topk(&q).unwrap();
        let expect = disks_core::centralized_topk(&net, &q).unwrap();
        assert_eq!(ranked, expect);
        bilevel.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn bilevel_cluster_serves_radii_beyond_max_r() {
        let net = GridNetworkConfig::tiny(79).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let e = net.avg_edge_weight();
        let cfg = IndexConfig::with_max_r(3 * e);
        let cluster = Cluster::build_bilevel(&net, &p, &cfg, ClusterConfig::default());
        let mut central = CentralizedCoverage::new(&net);
        let kw = top_keywords(&net, 1)[0];
        // Small radius → primary; large radius → secondary; both exact.
        for r in [e, 2 * e, 10 * e, 30 * e] {
            let q = SgkQuery::new(vec![kw], r);
            let outcome = cluster.run_sgkq(&q).expect("bilevel query");
            assert_eq!(outcome.results, central.sgkq(&q).unwrap(), "r={r}");
        }
        cluster.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let (net, _, cluster) = setup(77, 2, &IndexConfig::unbounded());
        let kws = top_keywords(&net, 1);
        let _ = cluster.run_sgkq(&SgkQuery::new(kws, net.avg_edge_weight())).unwrap();
        drop(cluster); // must not hang or leak threads
    }
}
