//! Fragment → machine placement (§5.2, extended with replica sets).
//!
//! The paper's default deployment pins one fragment per machine. When fewer
//! machines than fragments are available, the §5.2 strategy ("an unassigned
//! task must be assigned to an idle machine") degenerates — for a static
//! homogeneous pipeline — to spreading fragments evenly; we implement the
//! static even spread here and keep per-machine cost accounting so the
//! Theorem 6 unbalance factor can be measured under any placement.
//!
//! Beyond the paper: a [`Placement`] may host **replicas** of a fragment's
//! engine on machines other than its primary. Any replica answers the same
//! coverage (the Lemma 1 union is replica-invariant), so the coordinator is
//! free to route each per-query fragment evaluation to whichever replica is
//! least loaded. Replica sites are chosen greedily at build time: fragments
//! in descending heat order each place their copies on the machines with the
//! least placement-time load, so the hottest fragments end up spread across
//! the idlest machines.

use disks_partition::FragmentId;

/// How the coordinator picks among a fragment's replicas per dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Always the primary (bit-identical to the pre-replication cluster).
    Primary,
    /// The replica with the least cumulative routed cost (deterministic:
    /// ties break toward the smallest machine id).
    #[default]
    LeastLoaded,
}

/// A static fragment → machine placement with optional replica sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `primary_of[f]` = primary machine of fragment `f`.
    primary_of: Vec<usize>,
    /// `replicas_of[f]` = machines hosting fragment `f`, primary first.
    replicas_of: Vec<Vec<usize>>,
    /// `fragments_of[m]` = fragments hosted by machine `m` (primary or
    /// replica); primaries appear in round-robin order before replicas.
    fragments_of: Vec<Vec<FragmentId>>,
    /// Machines hosting at least one fragment, ascending — precomputed so
    /// the per-gather broadcast loop never rescans the hosting tables.
    busy: Vec<usize>,
    /// True iff any fragment has more than one hosting machine.
    replicated: bool,
}

impl Placement {
    /// Spread `num_fragments` fragments over `machines` machines round-robin
    /// (the even static assignment; with `machines == num_fragments` this is
    /// the paper's one-fragment-per-machine default). No replicas.
    pub fn round_robin(num_fragments: usize, machines: usize) -> Self {
        assert!(machines > 0, "at least one machine required");
        let mut primary_of = Vec::with_capacity(num_fragments);
        let mut replicas_of = Vec::with_capacity(num_fragments);
        let mut fragments_of: Vec<Vec<FragmentId>> = vec![Vec::new(); machines];
        for f in 0..num_fragments {
            let m = f % machines;
            primary_of.push(m);
            replicas_of.push(vec![m]);
            fragments_of[m].push(FragmentId(f as u32));
        }
        let busy = (0..machines).filter(|&m| !fragments_of[m].is_empty()).collect();
        Placement { primary_of, replicas_of, fragments_of, busy, replicated: false }
    }

    /// Round-robin primaries plus `replicas` extra copies of every fragment,
    /// placed greedily: fragments in descending `heat` order (ties toward
    /// the smaller fragment id) each put their copies on the machines with
    /// the least accumulated placement load that do not already host them
    /// (ties toward the smaller machine id). Each hosting site is charged
    /// `heat[f] / (copies)` on the assumption the router spreads a
    /// fragment's traffic evenly over its replicas. `replicas` is capped at
    /// `machines - 1`; with `replicas == 0` this is exactly `round_robin`.
    pub fn replicated(
        num_fragments: usize,
        machines: usize,
        replicas: usize,
        heat: &[u64],
    ) -> Self {
        let mut p = Self::round_robin(num_fragments, machines);
        let replicas = replicas.min(machines.saturating_sub(1));
        if replicas == 0 || num_fragments == 0 {
            return p;
        }
        assert!(heat.len() == num_fragments, "one heat entry per fragment");
        let copies = (replicas + 1) as u64;
        let share = |f: usize| (heat[f] / copies).max(1);
        let mut load = vec![0u64; machines];
        for f in 0..num_fragments {
            load[p.primary_of[f]] += share(f);
        }
        let mut order: Vec<usize> = (0..num_fragments).collect();
        order.sort_by_key(|&f| (std::cmp::Reverse(heat[f]), f));
        for f in order {
            for _ in 0..replicas {
                let m = (0..machines)
                    .filter(|m| !p.replicas_of[f].contains(m))
                    .min_by_key(|&m| (load[m], m))
                    .expect("replicas < machines leaves a free host");
                p.replicas_of[f].push(m);
                p.fragments_of[m].push(FragmentId(f as u32));
                load[m] += share(f);
            }
        }
        p.busy = (0..machines).filter(|&m| !p.fragments_of[m].is_empty()).collect();
        p.replicated = true;
        p
    }

    pub fn num_machines(&self) -> usize {
        self.fragments_of.len()
    }

    pub fn num_fragments(&self) -> usize {
        self.primary_of.len()
    }

    /// Primary machine of fragment `f`.
    pub fn machine_of(&self, f: FragmentId) -> usize {
        self.primary_of[f.index()]
    }

    /// Machines hosting fragment `f`, primary first.
    pub fn replicas_of(&self, f: FragmentId) -> &[usize] {
        &self.replicas_of[f.index()]
    }

    /// True iff any fragment is hosted on more than one machine.
    pub fn is_replicated(&self) -> bool {
        self.replicated
    }

    /// Fragments hosted by machine `m` (as primary or replica).
    pub fn fragments_of(&self, m: usize) -> &[FragmentId] {
        &self.fragments_of[m]
    }

    /// Machines that host at least one fragment (precomputed, ascending).
    pub fn busy_machines(&self) -> impl Iterator<Item = usize> + '_ {
        self.busy.iter().copied()
    }

    /// Replicas of `f` eligible for routing after removing machines the
    /// `banned` predicate excludes (dead or quarantined hosts). Returns the
    /// surviving hosts in replica order plus a `degraded` flag: when *every*
    /// host is banned the full replica set comes back unchanged and the
    /// caller must degrade gracefully (route to the least-suspect replica)
    /// rather than leave the fragment unserved.
    pub fn routable_replicas(
        &self,
        f: FragmentId,
        banned: &dyn Fn(usize) -> bool,
    ) -> (Vec<usize>, bool) {
        let all = self.replicas_of(f);
        let ok: Vec<usize> = all.iter().copied().filter(|&m| !banned(m)).collect();
        if ok.is_empty() {
            (all.to_vec(), true)
        } else {
            (ok, false)
        }
    }

    /// Group raw fragment ids by *primary* machine, preserving first-seen
    /// machine order — the shape of a narrowed retry dispatch (one request
    /// per machine listing just its missing fragments). O(n + machines) via
    /// a scratch index instead of rescanning the group list per fragment.
    pub fn machines_hosting(&self, fragments: &[u32]) -> Vec<(usize, Vec<u32>)> {
        let mut groups: Vec<(usize, Vec<u32>)> = Vec::new();
        let mut slot = vec![usize::MAX; self.num_machines()];
        for &f in fragments {
            let m = self.machine_of(FragmentId(f));
            if slot[m] == usize::MAX {
                slot[m] = groups.len();
                groups.push((m, Vec::new()));
            }
            groups[slot[m]].1.push(f);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_fragment_per_machine_default() {
        let a = Placement::round_robin(4, 4);
        for f in 0..4 {
            assert_eq!(a.machine_of(FragmentId(f)), f as usize);
            assert_eq!(a.fragments_of(f as usize), &[FragmentId(f)]);
            assert_eq!(a.replicas_of(FragmentId(f)), &[f as usize]);
        }
        assert!(!a.is_replicated());
    }

    #[test]
    fn fewer_machines_spread_evenly() {
        let a = Placement::round_robin(10, 3);
        let sizes: Vec<usize> = (0..3).map(|m| a.fragments_of(m).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        for f in 0..10 {
            let m = a.machine_of(FragmentId(f));
            assert!(a.fragments_of(m).contains(&FragmentId(f)));
        }
    }

    #[test]
    fn more_machines_than_fragments_leaves_idle_machines() {
        let a = Placement::round_robin(2, 5);
        assert_eq!(a.busy_machines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = Placement::round_robin(3, 0);
    }

    #[test]
    fn machines_hosting_groups_by_machine() {
        let a = Placement::round_robin(6, 2); // m0: {0,2,4}, m1: {1,3,5}
        let groups = a.machines_hosting(&[0, 1, 4, 5]);
        assert_eq!(groups, vec![(0, vec![0, 4]), (1, vec![1, 5])]);
        assert!(a.machines_hosting(&[]).is_empty());
    }

    #[test]
    fn zero_replicas_degenerates_to_round_robin() {
        let uniform = vec![1; 6];
        assert_eq!(Placement::replicated(6, 4, 0, &uniform), Placement::round_robin(6, 4));
    }

    #[test]
    fn replicas_live_on_distinct_machines() {
        let a = Placement::replicated(4, 4, 2, &[10, 20, 30, 40]);
        assert!(a.is_replicated());
        for f in 0..4 {
            let hosts = a.replicas_of(FragmentId(f));
            assert_eq!(hosts.len(), 3, "primary + 2 replicas");
            assert_eq!(hosts[0], a.machine_of(FragmentId(f)), "primary listed first");
            let mut sorted = hosts.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), hosts.len(), "fragment {f}: duplicate host");
            for &m in hosts {
                assert!(a.fragments_of(m).contains(&FragmentId(f)));
            }
        }
    }

    #[test]
    fn replica_count_capped_at_machines_minus_one() {
        let a = Placement::replicated(3, 2, 5, &[1, 1, 1]);
        for f in 0..3 {
            assert_eq!(a.replicas_of(FragmentId(f)).len(), 2);
        }
    }

    #[test]
    fn routable_replicas_filters_bans_and_degrades_when_all_banned() {
        let a = Placement::replicated(2, 3, 1, &[5, 5]);
        let hosts = a.replicas_of(FragmentId(0)).to_vec();
        let (ok, degraded) = a.routable_replicas(FragmentId(0), &|m| m == hosts[0]);
        assert_eq!(ok, hosts[1..].to_vec());
        assert!(!degraded);
        let (all, degraded) = a.routable_replicas(FragmentId(0), &|_| true);
        assert_eq!(all, hosts, "all banned: full set returned for degraded routing");
        assert!(degraded);
    }

    #[test]
    fn hottest_fragment_places_first_on_idlest_machines() {
        // Four machines, four fragments, fragment 3 carries nearly all heat:
        // its replica must land before the cold fragments claim machines.
        let a = Placement::replicated(4, 4, 1, &[1, 1, 1, 1000]);
        let hot = a.replicas_of(FragmentId(3));
        // Primary of 3 is machine 3; its replica goes to the least loaded
        // machine at placement time — machine 0 (all primaries weigh 1 or
        // the hot share, ties break to the smallest id ≠ 3).
        assert_eq!(hot[0], 3);
        assert_eq!(hot.len(), 2);
        assert_ne!(hot[1], 3);
    }

    #[test]
    fn primary_spread_unchanged_by_replication() {
        let heat = vec![7, 3, 9, 1, 4, 2];
        let a = Placement::replicated(6, 3, 1, &heat);
        let rr = Placement::round_robin(6, 3);
        for f in 0..6 {
            assert_eq!(a.machine_of(FragmentId(f)), rr.machine_of(FragmentId(f)));
        }
        // Primaries stay a prefix of each machine's hosting list.
        for m in 0..3 {
            let primaries = rr.fragments_of(m);
            assert_eq!(&a.fragments_of(m)[..primaries.len()], primaries);
        }
    }
}
