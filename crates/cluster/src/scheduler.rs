//! Fragment → machine assignment (§5.2).
//!
//! The paper's default deployment pins one fragment per machine. When fewer
//! machines than fragments are available, the §5.2 strategy ("an unassigned
//! task must be assigned to an idle machine") degenerates — for a static
//! homogeneous pipeline — to spreading fragments evenly; we implement the
//! static even spread here and keep per-machine cost accounting so the
//! Theorem 6 unbalance factor can be measured under any assignment.

use disks_partition::FragmentId;

/// A static fragment → machine assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `machine_of[f]` = machine hosting fragment `f`.
    machine_of: Vec<usize>,
    /// `fragments_of[m]` = fragments hosted by machine `m`.
    fragments_of: Vec<Vec<FragmentId>>,
}

impl Assignment {
    /// Spread `num_fragments` fragments over `machines` machines round-robin
    /// (the even static assignment; with `machines == num_fragments` this is
    /// the paper's one-fragment-per-machine default).
    pub fn round_robin(num_fragments: usize, machines: usize) -> Self {
        assert!(machines > 0, "at least one machine required");
        let mut machine_of = Vec::with_capacity(num_fragments);
        let mut fragments_of: Vec<Vec<FragmentId>> = vec![Vec::new(); machines];
        for f in 0..num_fragments {
            let m = f % machines;
            machine_of.push(m);
            fragments_of[m].push(FragmentId(f as u32));
        }
        Assignment { machine_of, fragments_of }
    }

    pub fn num_machines(&self) -> usize {
        self.fragments_of.len()
    }

    pub fn num_fragments(&self) -> usize {
        self.machine_of.len()
    }

    /// Machine hosting fragment `f`.
    pub fn machine_of(&self, f: FragmentId) -> usize {
        self.machine_of[f.index()]
    }

    /// Fragments hosted by machine `m`.
    pub fn fragments_of(&self, m: usize) -> &[FragmentId] {
        &self.fragments_of[m]
    }

    /// Machines that host at least one fragment.
    pub fn busy_machines(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_machines()).filter(|&m| !self.fragments_of[m].is_empty())
    }

    /// Group raw fragment ids by hosting machine, preserving order — the
    /// shape of a narrowed retry dispatch (one request per machine listing
    /// just its missing fragments).
    pub fn machines_hosting(&self, fragments: &[u32]) -> Vec<(usize, Vec<u32>)> {
        let mut groups: Vec<(usize, Vec<u32>)> = Vec::new();
        for &f in fragments {
            let m = self.machine_of(FragmentId(f));
            match groups.iter_mut().find(|(gm, _)| *gm == m) {
                Some((_, frags)) => frags.push(f),
                None => groups.push((m, vec![f])),
            }
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_fragment_per_machine_default() {
        let a = Assignment::round_robin(4, 4);
        for f in 0..4 {
            assert_eq!(a.machine_of(FragmentId(f)), f as usize);
            assert_eq!(a.fragments_of(f as usize), &[FragmentId(f)]);
        }
    }

    #[test]
    fn fewer_machines_spread_evenly() {
        let a = Assignment::round_robin(10, 3);
        let sizes: Vec<usize> = (0..3).map(|m| a.fragments_of(m).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        for f in 0..10 {
            let m = a.machine_of(FragmentId(f));
            assert!(a.fragments_of(m).contains(&FragmentId(f)));
        }
    }

    #[test]
    fn more_machines_than_fragments_leaves_idle_machines() {
        let a = Assignment::round_robin(2, 5);
        assert_eq!(a.busy_machines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = Assignment::round_robin(3, 0);
    }

    #[test]
    fn machines_hosting_groups_by_machine() {
        let a = Assignment::round_robin(6, 2); // m0: {0,2,4}, m1: {1,3,5}
        let groups = a.machines_hosting(&[0, 1, 4, 5]);
        assert_eq!(groups, vec![(0, vec![0, 4]), (1, vec![1, 5])]);
        assert!(a.machines_hosting(&[]).is_empty());
    }
}
