//! The serialized slot-heat ledger (DESIGN.md §6i).
//!
//! [`HeatSnapshot`] is the portable form of the coordinator's slot-heat
//! ledger: `(term, radius) → dispatch count`, in the deterministic slot-key
//! order the prewarm ranking uses. It is the single interchange format
//! between the online cluster and the offline layout pipeline — the bench
//! profile, offline re-layout (query-weighted refinement, observed-radius
//! split), and heat-seeded placement all consume the same bytes, so every
//! layer agrees on what "hot" means.
//!
//! Like the wire protocol, the codec is hand-written over the
//! [`disks_roadnet::codec`] traits (serde-free): a one-word magic/version
//! header, a `u32` entry count, then fixed-width `(term, radius, count)`
//! triples. Corrupt input decodes to a typed [`DecodeError`], never a
//! panic.

use bytes::{Buf, Bytes, BytesMut};

use disks_core::Term;
use disks_partition::LayoutProfile;
use disks_roadnet::codec::{Decode, Encode};
use disks_roadnet::{DecodeError, KeywordId, NodeId};

/// Magic + version word opening every encoded snapshot ("DHS" + v1).
const HEADER: u32 = 0x4448_5301;

/// Sanity bound on the entry count: far above the coordinator's `HEAT_CAP`
/// but low enough to reject garbage length prefixes before allocating.
const MAX_ENTRIES: u32 = 1 << 24;

/// A point-in-time export of the slot-heat ledger: one `(term, radius,
/// count)` triple per slot, hottest first (count descending, ties broken
/// by the deterministic slot key — the same total order the coordinator's
/// prewarm ranking uses).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeatSnapshot {
    pub entries: Vec<(Term, u64, u64)>,
}

impl HeatSnapshot {
    /// Total recorded dispatch weight across all slots.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, _, c)| c).sum()
    }

    /// Serialize to the snapshot wire format.
    pub fn encode_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.entries.len() * 24);
        HEADER.encode(&mut buf);
        (self.entries.len() as u32).encode(&mut buf);
        for &(term, radius, count) in &self.entries {
            term.encode(&mut buf);
            radius.encode(&mut buf);
            count.encode(&mut buf);
        }
        buf.freeze()
    }

    /// Deserialize from the snapshot wire format. Trailing bytes after the
    /// declared entries are rejected — a snapshot is a whole artifact, not
    /// a stream element.
    pub fn decode_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut buf = bytes;
        let header = u32::decode(&mut buf)?;
        if header != HEADER {
            return Err(DecodeError::BadHeader { expected: HEADER, found: header });
        }
        let n = u32::decode(&mut buf)?;
        if n > MAX_ENTRIES {
            return Err(DecodeError::LengthOutOfRange {
                context: "HeatSnapshot entries",
                len: n as u64,
            });
        }
        let mut entries = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let term = Term::decode(&mut buf)?;
            let radius = u64::decode(&mut buf)?;
            let count = u64::decode(&mut buf)?;
            entries.push((term, radius, count));
        }
        if buf.has_remaining() {
            return Err(DecodeError::LengthOutOfRange {
                context: "HeatSnapshot trailing bytes",
                len: buf.remaining() as u64,
            });
        }
        Ok(HeatSnapshot { entries })
    }

    /// Project the ledger into a [`LayoutProfile`]: keyword slots feed the
    /// keyword heat, node slots (RKQ-style location terms) feed the
    /// location heat, and every slot's radius feeds the radius
    /// distribution — all weighted by dispatch count.
    pub fn to_profile(&self) -> LayoutProfile {
        let mut profile = LayoutProfile::new();
        for &(term, radius, count) in &self.entries {
            match term {
                Term::Keyword(kw) => profile.record_keyword(KeywordId(kw.0), count),
                Term::Node(n) => profile.record_location(NodeId(n.0), count),
            }
            profile.record_radius(radius, count);
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(k: u32) -> Term {
        Term::Keyword(KeywordId(k))
    }

    #[test]
    fn round_trips_and_rejects_corruption() {
        let snap = HeatSnapshot {
            entries: vec![(kw(3), 40, 17), (Term::Node(NodeId(9)), 200, 5), (kw(1), 40, 2)],
        };
        let bytes = snap.encode_bytes();
        assert_eq!(HeatSnapshot::decode_bytes(&bytes).unwrap(), snap);
        assert_eq!(snap.total(), 24);
        // Truncation → typed EOF, not a panic.
        assert!(matches!(
            HeatSnapshot::decode_bytes(&bytes[..bytes.len() - 3]),
            Err(DecodeError::UnexpectedEof { .. })
        ));
        // Wrong magic word.
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xFF;
        assert!(matches!(HeatSnapshot::decode_bytes(&bad), Err(DecodeError::BadHeader { .. })));
        // Trailing garbage after the declared entries.
        let mut long = bytes.to_vec();
        long.push(0);
        assert!(matches!(
            HeatSnapshot::decode_bytes(&long),
            Err(DecodeError::LengthOutOfRange { .. })
        ));
    }

    #[test]
    fn profile_projection_splits_terms_and_sums_radii() {
        let snap = HeatSnapshot {
            entries: vec![(kw(2), 40, 9), (kw(2), 80, 1), (Term::Node(NodeId(4)), 80, 3)],
        };
        let p = snap.to_profile();
        assert_eq!(p.keyword_ranks(), vec![(2, 10)]);
        assert_eq!(p.radius_distribution(), vec![(40, 9), (80, 4)]);
        assert_eq!(p.radius_quantile(0.5), Some(40));
        assert_eq!(p.total_queries(), 13);
    }
}
