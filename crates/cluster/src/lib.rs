//! Coordinator-based share-nothing distributed runtime.
//!
//! The paper evaluates on a 16-machine cluster behind a 100 Mb switch. This
//! crate is the substitution documented in `DESIGN.md` §4: an in-process
//! cluster where every *machine* is an OS thread owning exactly its
//! fragment's [`disks_core::FragmentEngine`] (fragment + NPD-index — nothing
//! else), and every link is a byte-accounted channel carrying the same
//! hand-encoded wire messages a socket would.
//!
//! What the simulation preserves from the paper's setting:
//!
//! * **Share-nothing semantics** — a worker thread receives only its
//!   engine; there are no channels between workers at all, so the paper's
//!   headline property (zero inter-worker communication, Theorem 3) holds
//!   *by construction* and is reported in every [`QueryStats`].
//! * **Coordinator costs** — task-assignment and result-return messages are
//!   encoded to real bytes and counted per link, and a configurable
//!   [`NetworkModel`] (default: the paper's 100 Mb switch) converts bytes to
//!   modeled wire time.
//! * **Load balance** — per-machine task costs and the Theorem 6 unbalance
//!   factor `U` are measured per query and over the cluster lifetime
//!   ([`Cluster::unbalance_factor`]).
//! * **Task scheduling** — when there are fewer machines than fragments the
//!   §5.2 strategy applies: an unassigned task goes to an idle machine.
//!   Beyond the paper, the [`Placement`] layer can host replicas of the
//!   hottest fragments' engines on extra machines
//!   ([`ClusterConfig::replicas`], env `DISKS_REPLICAS`) and route each
//!   per-query fragment evaluation to the least-loaded replica
//!   ([`ClusterConfig::route`], env `DISKS_ROUTE`); any replica answers the
//!   same coverage, so results stay byte-identical (`DESIGN.md` §6h).
//!
//! Beyond the paper's fault-free setting, the runtime is fault-tolerant:
//! a deterministic [`FaultPlan`] can drop, delay, duplicate, or corrupt
//! frames on any link and kill or panic workers; the coordinator recovers
//! via deadlines, narrowed retries, and worker respawn (see
//! `DESIGN.md` §"Failure model & recovery"). Fragment tasks are stateless
//! and idempotent, so retries and duplicates never violate the Lemma 1
//! union-correctness or Theorem 3 zero-inter-worker-bytes guarantees.
//!
//! The query path is layered (`DESIGN.md` §6c): the coordinator lowers each
//! query to a normalized [`disks_core::QueryPlan`] and *admits* it (radius,
//! emptiness, location checks) before any dispatch; workers execute plans
//! slot-by-slot through a byte-bounded per-worker [`CoverageCache`], whose
//! hit/miss/eviction counters ride back on every response frame.
//!
//! Pipelined streams additionally batch across queries
//! ([`ClusterConfig::batch_window`], env `DISKS_BATCH`): a window of
//! admitted plans merges into one [`disks_core::SuperPlan`] per worker per
//! round — the union of slots across the batch, deduplicated — so each
//! distinct coverage is computed once per batch and each worker sends one
//! multi-answer frame back. Answers stay byte-identical to the unbatched
//! path, attribution stays per-query exact, and faults inside a batch narrow
//! to per-query retries (see `DESIGN.md` §"Batched dispatch").
//!
//! Under overload the coordinator controls admission instead of collapsing
//! ([`overload`], `DESIGN.md` §6e): the Theorem 5 cost model prices every
//! plan, a [`PressureGauge`] bounds in-flight estimated cost per worker
//! ([`ClusterConfig::cost_limit`], env `DISKS_COST_LIMIT`), over-budget
//! queries are shed with a typed [`disks_core::QueryError::Overloaded`] and
//! a pressure-monotone `retry_after` hint *before any frame is encoded*
//! (zero wire bytes), and above the [`ClusterConfig::brownout`] threshold
//! the cluster degrades (partial results, cache-cold queries turned away)
//! before it sheds. Narrowed retries back off exponentially with
//! deterministic seeded jitter ([`ClusterConfig::retry_backoff`], env
//! `DISKS_RETRY_BACKOFF`), and respawned workers are pre-warmed with the
//! hottest coverage slots before retry traffic reaches them.

pub mod adaptive;
pub mod cache;
pub mod cluster;
pub mod framing;
pub mod health;
pub mod heat;
pub mod message;
pub mod overload;
pub mod scheduler;
pub mod stats;
pub mod transport;
pub mod worker;

pub use adaptive::WindowController;
pub use cache::{CacheCounters, CoverageCache};
pub use cluster::{Cluster, ClusterConfig, QueryOutcome, RemoteWorkerCommand};
pub use framing::{FrameAssembler, StreamEvent};
pub use health::{HealthBoard, HealthConfig, HealthState, HedgeMode};
pub use heat::HeatSnapshot;
pub use message::{BatchAnswer, Request, Response, WireCost};
pub use overload::{retry_after, OverloadCounters, PressureGauge};
pub use scheduler::{Placement, RoutePolicy};
pub use stats::{MachineCost, QueryStats, RecoveryCounters};
pub use transport::{
    tcp_worker_endpoint, FaultAction, FaultPlan, HeartbeatConfig, HeartbeatConfigError,
    LinkCounters, LinkDirection, LinkFault, LinkSender, NetworkModel, TcpWorkerEndpoint,
    TransportKind,
};
pub use worker::WorkerFaults;
