//! Per-worker coverage cache.
//!
//! A byte-bounded LRU of `(fragment, term, radius) → Arc<BitSet>` holding
//! the coverages computed by a worker's engines. Soundness rests on the
//! engines being immutable: `R(term, r) ∩ P` is a pure function of the
//! engine, so a cached value can be replayed for any later query — Lemma 1
//! combining and Theorem 3's zero inter-worker bytes are untouched, only
//! the per-slot Dijkstra is skipped. The cache lives inside the worker
//! thread and dies with it, so a respawned worker always starts cold.
//!
//! Keys carry the fragment id because a worker may host several fragments
//! (and a §5.5 bi-level pair serves one fragment from two engines — both
//! levels are exact for any radius they admit, so the level is *not* part
//! of the key).
//!
//! Under batched dispatch a per-batch shared result map sits *above* this
//! LRU (`worker::BatchStore`): only the first query of a batch to reference
//! a slot reaches the LRU, so these counters stay exact — intra-batch
//! re-references are reported separately as `WireCost::batch_shared`.

use std::collections::HashMap;
use std::sync::Arc;

use disks_core::bitset::BitSet;
use disks_core::Term;

/// Hit/miss/eviction/bypass counters, cumulative over a cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Coverages refused at insert because their content was below the
    /// per-entry bookkeeping overhead (caching them would spend more bytes
    /// on keys and metadata than on coverage).
    pub bypassed: u64,
}

impl CacheCounters {
    /// Hits over admissible lookups, or 0 when the cache saw none. A
    /// bypassed coverage misses on every lookup by design — the cache
    /// *declined* that traffic rather than failing on it — so each bypass
    /// cancels its miss instead of diluting the rate.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses.saturating_sub(self.bypassed);
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Component-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            bypassed: self.bypassed - earlier.bypassed,
        }
    }

    /// Component-wise accumulation.
    pub fn absorb(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.bypassed += other.bypassed;
    }
}

struct Entry {
    coverage: Arc<BitSet>,
    bytes: usize,
    last_used: u64,
}

/// Fixed per-entry overhead charged on top of the bitset payload (key,
/// hash-map slot, and entry metadata — an estimate, not an exact count).
const ENTRY_OVERHEAD: usize = 64;

/// A byte-bounded LRU of coverage bitsets. A budget of 0 disables the
/// cache entirely: every lookup misses without counting, inserts are
/// dropped, so a disabled cache is bit-for-bit invisible.
pub struct CoverageCache {
    budget_bytes: usize,
    bytes: usize,
    tick: u64,
    entries: HashMap<(u32, Term, u64), Entry>,
    counters: CacheCounters,
}

impl CoverageCache {
    /// Create a cache bounded to `budget_bytes` of bitset payload plus
    /// per-entry overhead. `0` disables caching.
    pub fn new(budget_bytes: usize) -> Self {
        CoverageCache {
            budget_bytes,
            bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Whether the cache is a disabled no-op.
    pub fn is_disabled(&self) -> bool {
        self.budget_bytes == 0
    }

    /// Lifetime counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Current resident bytes (payload + overhead).
    pub fn resident_bytes(&self) -> usize {
        self.bytes
    }

    /// Number of cached coverages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the coverage for `(fragment, term, radius)`, refreshing its
    /// recency on a hit.
    pub fn get(&mut self, fragment: u32, term: Term, radius: u64) -> Option<Arc<BitSet>> {
        if self.is_disabled() {
            return None;
        }
        self.tick += 1;
        match self.entries.get_mut(&(fragment, term, radius)) {
            Some(e) => {
                e.last_used = self.tick;
                self.counters.hits += 1;
                Some(e.coverage.clone())
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Insert a coverage, evicting least-recently-used entries until it
    /// fits. A coverage larger than the whole budget is not cached, and
    /// neither is one whose *content* is below the per-entry bookkeeping
    /// overhead: a dense bitset's resident size is fragment-constant, so
    /// the meaningful size of a coverage is its content at 4 bytes per
    /// covered node (its wire size as a result set) — an entry below
    /// [`ENTRY_OVERHEAD`] on that measure spends more budget on keys and
    /// metadata than on coverage, polluting the LRU. Such inserts are
    /// counted as `bypassed` instead.
    pub fn insert(&mut self, fragment: u32, term: Term, radius: u64, coverage: Arc<BitSet>) {
        if self.is_disabled() {
            return;
        }
        if coverage.count() * 4 < ENTRY_OVERHEAD {
            self.counters.bypassed += 1;
            return;
        }
        let bytes = coverage.memory_bytes() + ENTRY_OVERHEAD;
        if bytes > self.budget_bytes {
            return;
        }
        if let Some(old) = self.entries.remove(&(fragment, term, radius)) {
            self.bytes -= old.bytes;
        }
        while self.bytes + bytes > self.budget_bytes {
            self.evict_lru();
        }
        self.tick += 1;
        self.bytes += bytes;
        self.entries
            .insert((fragment, term, radius), Entry { coverage, bytes, last_used: self.tick });
    }

    fn evict_lru(&mut self) {
        // Linear scan: evictions are rare relative to lookups, and the
        // entry count at typical budgets stays small.
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k)
            .expect("evict_lru called on empty cache with bytes outstanding");
        let e = self.entries.remove(&victim).expect("victim present");
        self.bytes -= e.bytes;
        self.counters.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_roadnet::KeywordId;

    fn cov(cap: usize, elems: &[usize]) -> Arc<BitSet> {
        let mut s = BitSet::new(cap);
        for &e in elems {
            s.insert(e);
        }
        Arc::new(s)
    }

    /// A coverage fat enough (16 nodes = 64 content bytes) to clear the
    /// bypass threshold, starting at `start`.
    fn fat(cap: usize, start: usize) -> Arc<BitSet> {
        let mut s = BitSet::new(cap);
        for e in start..start + 16 {
            s.insert(e);
        }
        Arc::new(s)
    }

    fn kw(k: u32) -> Term {
        Term::Keyword(KeywordId(k))
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let mut c = CoverageCache::new(1 << 20);
        assert!(c.get(0, kw(1), 5).is_none());
        c.insert(0, kw(1), 5, fat(64, 2));
        let hit = c.get(0, kw(1), 5).expect("hit");
        assert_eq!(hit.iter().collect::<Vec<_>>(), (2..18).collect::<Vec<_>>());
        // Distinct fragment, term, or radius are distinct keys.
        assert!(c.get(1, kw(1), 5).is_none());
        assert!(c.get(0, kw(2), 5).is_none());
        assert!(c.get(0, kw(1), 6).is_none());
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses, counters.evictions), (1, 4, 0));
        assert!((counters.hit_rate() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        // Each 64-capacity bitset costs 40 (struct+1 word) + 64 overhead =
        // 104 bytes; a 250-byte budget holds two.
        let one = fat(64, 0).memory_bytes() + ENTRY_OVERHEAD;
        let mut c = CoverageCache::new(2 * one + one / 2);
        c.insert(0, kw(1), 0, fat(64, 1));
        c.insert(0, kw(2), 0, fat(64, 2));
        assert_eq!(c.len(), 2);
        let _ = c.get(0, kw(1), 0); // refresh #1 → #2 becomes LRU
        c.insert(0, kw(3), 0, fat(64, 3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().evictions, 1);
        assert!(c.get(0, kw(2), 0).is_none(), "LRU entry evicted");
        assert!(c.get(0, kw(1), 0).is_some());
        assert!(c.get(0, kw(3), 0).is_some());
        assert!(c.resident_bytes() <= 2 * one + one / 2);
    }

    #[test]
    fn oversized_entry_not_cached() {
        let mut c = CoverageCache::new(16);
        c.insert(0, kw(1), 0, fat(10_000, 1));
        assert!(c.is_empty());
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(c.counters().bypassed, 0, "oversized is not the bypass path");
    }

    #[test]
    fn undersized_content_bypassed_not_cached() {
        let mut c = CoverageCache::new(1 << 20);
        // 15 covered nodes = 60 content bytes < 64 overhead → bypass.
        c.insert(0, kw(1), 0, cov(64, &(0..15).collect::<Vec<_>>()));
        assert!(c.is_empty());
        assert_eq!(c.counters().bypassed, 1);
        // 16 nodes = 64 content bytes clears the threshold exactly.
        c.insert(0, kw(2), 0, fat(64, 0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.counters().bypassed, 1);
        assert!(c.get(0, kw(2), 0).is_some());
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = CoverageCache::new(1 << 20);
        c.insert(0, kw(1), 0, fat(64, 1));
        let before = c.resident_bytes();
        c.insert(0, kw(1), 0, fat(64, 2));
        assert_eq!(c.resident_bytes(), before);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.get(0, kw(1), 0).unwrap().iter().collect::<Vec<_>>(),
            (2..18).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_budget_disables_everything() {
        let mut c = CoverageCache::new(0);
        assert!(c.is_disabled());
        c.insert(0, kw(1), 0, cov(64, &[1]));
        assert!(c.get(0, kw(1), 0).is_none());
        assert!(c.is_empty());
        assert_eq!(c.counters(), CacheCounters::default(), "disabled cache counts nothing");
    }

    #[test]
    fn counters_since_and_absorb() {
        let a = CacheCounters { hits: 5, misses: 3, evictions: 1, bypassed: 4 };
        let b = CacheCounters { hits: 2, misses: 1, evictions: 0, bypassed: 1 };
        assert_eq!(a.since(&b), CacheCounters { hits: 3, misses: 2, evictions: 1, bypassed: 3 });
        let mut acc = b;
        acc.absorb(&a);
        assert_eq!(acc, CacheCounters { hits: 7, misses: 4, evictions: 1, bypassed: 5 });
    }
}
