//! Per-worker coverage cache.
//!
//! A byte-bounded LRU of `(fragment, term, radius) → Arc<BitSet>` holding
//! the coverages computed by a worker's engines. Soundness rests on the
//! engines being immutable: `R(term, r) ∩ P` is a pure function of the
//! engine, so a cached value can be replayed for any later query — Lemma 1
//! combining and Theorem 3's zero inter-worker bytes are untouched, only
//! the per-slot Dijkstra is skipped. The cache lives inside the worker
//! thread and dies with it, so a respawned worker always starts cold.
//!
//! Keys carry the fragment id because a worker may host several fragments
//! (and a §5.5 bi-level pair serves one fragment from two engines — both
//! levels are exact for any radius they admit, so the level is *not* part
//! of the key).
//!
//! Under batched dispatch a per-batch shared result map sits *above* this
//! LRU (`worker::BatchStore`): only the first query of a batch to reference
//! a slot reaches the LRU, so these counters stay exact — intra-batch
//! re-references are reported separately as `WireCost::batch_shared`.
//!
//! Recency is an intrusive doubly-linked list over an arena (O(1) evict,
//! refresh, and insert), not a timestamp scan. With a heat threshold of 0
//! the cache is a plain LRU whose eviction order is byte-identical to the
//! original linear-scan implementation (every touch moves exactly one
//! entry to the MRU end, so list order *is* timestamp order). A threshold
//! `T > 0` turns on **heat-aware admission** (DESIGN.md §6i): per-slot
//! lookup counts decide where an entry enters the recency order —
//! - a slot looked up `≥ T` times is *hot*: it lives on a separate hot
//!   list that is only evicted once the cold list is empty, and a resident
//!   cold entry is promoted the moment its lookups cross the threshold;
//! - a slot seen only once so far is a *one-shot*: it is admitted at the
//!   LRU end of the cold list, first in line for eviction, so a stream of
//!   cold slots cannot flush the warm working set;
//! - anything in between enters the cold list at the MRU end, exactly
//!   like a plain LRU insert.

use std::collections::HashMap;
use std::sync::Arc;

use disks_core::bitset::BitSet;
use disks_core::Term;

/// Hit/miss/eviction/bypass counters, cumulative over a cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Coverages refused at insert because their content was below the
    /// per-entry bookkeeping overhead (caching them would spend more bytes
    /// on keys and metadata than on coverage).
    pub bypassed: u64,
}

impl CacheCounters {
    /// Hits over admissible lookups, or 0 when the cache saw none. A
    /// bypassed coverage misses on every lookup by design — the cache
    /// *declined* that traffic rather than failing on it — so each bypass
    /// cancels its miss instead of diluting the rate.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses.saturating_sub(self.bypassed);
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Component-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            bypassed: self.bypassed - earlier.bypassed,
        }
    }

    /// Component-wise accumulation.
    pub fn absorb(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.bypassed += other.bypassed;
    }
}

type Key = (u32, Term, u64);

/// Sentinel for "no neighbour" in the intrusive lists.
const NONE: u32 = u32::MAX;

struct Node {
    key: Key,
    coverage: Arc<BitSet>,
    bytes: usize,
    prev: u32,
    next: u32,
    hot: bool,
}

/// One recency order: `head` is the MRU end, `tail` the LRU end.
#[derive(Clone, Copy)]
struct RecencyList {
    head: u32,
    tail: u32,
}

impl RecencyList {
    const EMPTY: RecencyList = RecencyList { head: NONE, tail: NONE };
}

fn unlink(slots: &mut [Node], list: &mut RecencyList, i: u32) {
    let (p, n) = (slots[i as usize].prev, slots[i as usize].next);
    if p == NONE {
        list.head = n;
    } else {
        slots[p as usize].next = n;
    }
    if n == NONE {
        list.tail = p;
    } else {
        slots[n as usize].prev = p;
    }
    slots[i as usize].prev = NONE;
    slots[i as usize].next = NONE;
}

fn push_front(slots: &mut [Node], list: &mut RecencyList, i: u32) {
    slots[i as usize].prev = NONE;
    slots[i as usize].next = list.head;
    if list.head != NONE {
        slots[list.head as usize].prev = i;
    }
    list.head = i;
    if list.tail == NONE {
        list.tail = i;
    }
}

fn push_back(slots: &mut [Node], list: &mut RecencyList, i: u32) {
    slots[i as usize].next = NONE;
    slots[i as usize].prev = list.tail;
    if list.tail != NONE {
        slots[list.tail as usize].next = i;
    }
    list.tail = i;
    if list.head == NONE {
        list.head = i;
    }
}

/// Fixed per-entry overhead charged on top of the bitset payload (key,
/// hash-map slot, and entry metadata — an estimate, not an exact count).
const ENTRY_OVERHEAD: usize = 64;

/// Bound on the lookup-count table: when it grows past this many slots all
/// counts are halved and zeroes dropped (the same decay shape as the
/// coordinator's slot-heat epochs), so one-shot churn cannot grow it
/// without bound. Order-independent, hence deterministic.
const SEEN_CAP: usize = 8192;

/// A byte-bounded LRU of coverage bitsets. A budget of 0 disables the
/// cache entirely: every lookup misses without counting, inserts are
/// dropped, so a disabled cache is bit-for-bit invisible.
pub struct CoverageCache {
    budget_bytes: usize,
    bytes: usize,
    entries: HashMap<Key, u32>,
    slots: Vec<Node>,
    free: Vec<u32>,
    cold: RecencyList,
    hot: RecencyList,
    /// Lookups before a slot counts as hot; 0 disables heat admission
    /// (plain LRU, byte-identical to the historical behaviour).
    heat_threshold: u32,
    /// Per-slot lookup counts, maintained only when `heat_threshold > 0`.
    seen: HashMap<Key, u32>,
    counters: CacheCounters,
}

impl CoverageCache {
    /// Create a plain-LRU cache bounded to `budget_bytes` of bitset
    /// payload plus per-entry overhead. `0` disables caching.
    pub fn new(budget_bytes: usize) -> Self {
        Self::with_heat(budget_bytes, 0)
    }

    /// Create a cache with heat-aware admission: slots looked up at least
    /// `heat_threshold` times resist eviction, one-shot slots are admitted
    /// at the eviction end. `heat_threshold == 0` is the plain LRU.
    pub fn with_heat(budget_bytes: usize, heat_threshold: u32) -> Self {
        CoverageCache {
            budget_bytes,
            bytes: 0,
            entries: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            cold: RecencyList::EMPTY,
            hot: RecencyList::EMPTY,
            heat_threshold,
            seen: HashMap::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Whether the cache is a disabled no-op.
    pub fn is_disabled(&self) -> bool {
        self.budget_bytes == 0
    }

    /// The configured heat-admission threshold (0 = plain LRU).
    pub fn heat_threshold(&self) -> u32 {
        self.heat_threshold
    }

    /// Lifetime counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Current resident bytes (payload + overhead).
    pub fn resident_bytes(&self) -> usize {
        self.bytes
    }

    /// Number of cached coverages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bump the lookup count for `key`, decaying the table when it
    /// overflows. Returns the new count.
    fn note_lookup(&mut self, key: Key) -> u32 {
        let c = self.seen.entry(key).or_insert(0);
        *c = c.saturating_add(1);
        let c = *c;
        if self.seen.len() > SEEN_CAP {
            self.seen.retain(|_, n| {
                *n /= 2;
                *n > 0
            });
        }
        c
    }

    fn detach(&mut self, i: u32) {
        if self.slots[i as usize].hot {
            unlink(&mut self.slots, &mut self.hot, i);
        } else {
            unlink(&mut self.slots, &mut self.cold, i);
        }
    }

    /// Look up the coverage for `(fragment, term, radius)`, refreshing its
    /// recency on a hit. With heat admission on, the lookup also counts
    /// toward the slot's heat, and a resident entry whose count crosses
    /// the threshold is promoted to the hot list.
    pub fn get(&mut self, fragment: u32, term: Term, radius: u64) -> Option<Arc<BitSet>> {
        if self.is_disabled() {
            return None;
        }
        let key = (fragment, term, radius);
        let seen = if self.heat_threshold > 0 { self.note_lookup(key) } else { 0 };
        match self.entries.get(&key).copied() {
            Some(i) => {
                self.detach(i);
                if self.heat_threshold > 0 && seen >= self.heat_threshold {
                    self.slots[i as usize].hot = true;
                }
                if self.slots[i as usize].hot {
                    push_front(&mut self.slots, &mut self.hot, i);
                } else {
                    push_front(&mut self.slots, &mut self.cold, i);
                }
                self.counters.hits += 1;
                Some(self.slots[i as usize].coverage.clone())
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Read-only residency probe: is `(fragment, term, radius)` cached
    /// right now? Unlike [`Self::get`] this touches **nothing** — no
    /// recency refresh, no heat count, no hit/miss counters — so the worker
    /// pool can predict which slots of a frame need computing without
    /// perturbing the ledger the serial commit pass will replay. A `true`
    /// answer can still turn into a commit-time miss (an earlier commit in
    /// the same frame may evict the entry); the commit pass recomputes
    /// serially in that case.
    pub fn peek(&self, fragment: u32, term: Term, radius: u64) -> bool {
        !self.is_disabled() && self.entries.contains_key(&(fragment, term, radius))
    }

    /// Insert a coverage, evicting least-recently-used entries until it
    /// fits. A coverage larger than the whole budget is not cached, and
    /// neither is one whose *content* is below the per-entry bookkeeping
    /// overhead: a dense bitset's resident size is fragment-constant, so
    /// the meaningful size of a coverage is its content at 4 bytes per
    /// covered node (its wire size as a result set) — an entry below
    /// [`ENTRY_OVERHEAD`] on that measure spends more budget on keys and
    /// metadata than on coverage, polluting the LRU. Such inserts are
    /// counted as `bypassed` instead.
    pub fn insert(&mut self, fragment: u32, term: Term, radius: u64, coverage: Arc<BitSet>) {
        if self.is_disabled() {
            return;
        }
        if coverage.count() * 4 < ENTRY_OVERHEAD {
            self.counters.bypassed += 1;
            return;
        }
        let bytes = coverage.memory_bytes() + ENTRY_OVERHEAD;
        if bytes > self.budget_bytes {
            return;
        }
        let key = (fragment, term, radius);
        if let Some(i) = self.entries.remove(&key) {
            self.detach(i);
            self.bytes -= self.slots[i as usize].bytes;
            self.free.push(i);
        }
        while self.bytes + bytes > self.budget_bytes {
            self.evict_lru();
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] =
                    Node { key, coverage, bytes, prev: NONE, next: NONE, hot: false };
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Node { key, coverage, bytes, prev: NONE, next: NONE, hot: false });
                i
            }
        };
        if self.heat_threshold == 0 {
            push_front(&mut self.slots, &mut self.cold, i);
        } else {
            let seen = self.seen.get(&key).copied().unwrap_or(0);
            if seen >= self.heat_threshold {
                self.slots[i as usize].hot = true;
                push_front(&mut self.slots, &mut self.hot, i);
            } else if seen <= 1 {
                // One-shot so far: admitted last, first in eviction order.
                push_back(&mut self.slots, &mut self.cold, i);
            } else {
                push_front(&mut self.slots, &mut self.cold, i);
            }
        }
        self.bytes += bytes;
        self.entries.insert(key, i);
    }

    /// Evict the cold LRU entry, falling back to the hot LRU only when no
    /// cold entry remains. O(1): both orders are intrusive lists.
    fn evict_lru(&mut self) {
        let victim = if self.cold.tail != NONE { self.cold.tail } else { self.hot.tail };
        assert!(victim != NONE, "evict_lru called on empty cache with bytes outstanding");
        self.detach(victim);
        let node = &self.slots[victim as usize];
        self.bytes -= node.bytes;
        self.entries.remove(&node.key).expect("victim present");
        self.free.push(victim);
        self.counters.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_roadnet::KeywordId;

    fn cov(cap: usize, elems: &[usize]) -> Arc<BitSet> {
        let mut s = BitSet::new(cap);
        for &e in elems {
            s.insert(e);
        }
        Arc::new(s)
    }

    /// A coverage fat enough (16 nodes = 64 content bytes) to clear the
    /// bypass threshold, starting at `start`.
    fn fat(cap: usize, start: usize) -> Arc<BitSet> {
        let mut s = BitSet::new(cap);
        for e in start..start + 16 {
            s.insert(e);
        }
        Arc::new(s)
    }

    fn kw(k: u32) -> Term {
        Term::Keyword(KeywordId(k))
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let mut c = CoverageCache::new(1 << 20);
        assert!(c.get(0, kw(1), 5).is_none());
        c.insert(0, kw(1), 5, fat(64, 2));
        let hit = c.get(0, kw(1), 5).expect("hit");
        assert_eq!(hit.iter().collect::<Vec<_>>(), (2..18).collect::<Vec<_>>());
        // Distinct fragment, term, or radius are distinct keys.
        assert!(c.get(1, kw(1), 5).is_none());
        assert!(c.get(0, kw(2), 5).is_none());
        assert!(c.get(0, kw(1), 6).is_none());
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses, counters.evictions), (1, 4, 0));
        assert!((counters.hit_rate() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        // Each 64-capacity bitset costs 40 (struct+1 word) + 64 overhead =
        // 104 bytes; a 250-byte budget holds two.
        let one = fat(64, 0).memory_bytes() + ENTRY_OVERHEAD;
        let mut c = CoverageCache::new(2 * one + one / 2);
        c.insert(0, kw(1), 0, fat(64, 1));
        c.insert(0, kw(2), 0, fat(64, 2));
        assert_eq!(c.len(), 2);
        let _ = c.get(0, kw(1), 0); // refresh #1 → #2 becomes LRU
        c.insert(0, kw(3), 0, fat(64, 3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().evictions, 1);
        assert!(c.get(0, kw(2), 0).is_none(), "LRU entry evicted");
        assert!(c.get(0, kw(1), 0).is_some());
        assert!(c.get(0, kw(3), 0).is_some());
        assert!(c.resident_bytes() <= 2 * one + one / 2);
    }

    #[test]
    fn oversized_entry_not_cached() {
        let mut c = CoverageCache::new(16);
        c.insert(0, kw(1), 0, fat(10_000, 1));
        assert!(c.is_empty());
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(c.counters().bypassed, 0, "oversized is not the bypass path");
    }

    #[test]
    fn undersized_content_bypassed_not_cached() {
        let mut c = CoverageCache::new(1 << 20);
        // 15 covered nodes = 60 content bytes < 64 overhead → bypass.
        c.insert(0, kw(1), 0, cov(64, &(0..15).collect::<Vec<_>>()));
        assert!(c.is_empty());
        assert_eq!(c.counters().bypassed, 1);
        // 16 nodes = 64 content bytes clears the threshold exactly.
        c.insert(0, kw(2), 0, fat(64, 0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.counters().bypassed, 1);
        assert!(c.get(0, kw(2), 0).is_some());
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = CoverageCache::new(1 << 20);
        c.insert(0, kw(1), 0, fat(64, 1));
        let before = c.resident_bytes();
        c.insert(0, kw(1), 0, fat(64, 2));
        assert_eq!(c.resident_bytes(), before);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.get(0, kw(1), 0).unwrap().iter().collect::<Vec<_>>(),
            (2..18).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_budget_disables_everything() {
        let mut c = CoverageCache::new(0);
        assert!(c.is_disabled());
        c.insert(0, kw(1), 0, cov(64, &[1]));
        assert!(c.get(0, kw(1), 0).is_none());
        assert!(c.is_empty());
        assert_eq!(c.counters(), CacheCounters::default(), "disabled cache counts nothing");
    }

    #[test]
    fn counters_since_and_absorb() {
        let a = CacheCounters { hits: 5, misses: 3, evictions: 1, bypassed: 4 };
        let b = CacheCounters { hits: 2, misses: 1, evictions: 0, bypassed: 1 };
        assert_eq!(a.since(&b), CacheCounters { hits: 3, misses: 2, evictions: 1, bypassed: 3 });
        let mut acc = b;
        acc.absorb(&a);
        assert_eq!(acc, CacheCounters { hits: 7, misses: 4, evictions: 1, bypassed: 5 });
    }

    /// Reference model of the historical linear-scan implementation:
    /// timestamped entries, eviction by minimum `last_used`. Ticks are
    /// unique so the scan never ties — the recency list must reproduce its
    /// eviction order byte-for-byte at heat threshold 0.
    struct ScanModel {
        budget: usize,
        bytes: usize,
        tick: u64,
        entries: HashMap<Key, (Arc<BitSet>, usize, u64)>,
        counters: CacheCounters,
    }

    impl ScanModel {
        fn get(&mut self, key: Key) -> Option<Arc<BitSet>> {
            self.tick += 1;
            match self.entries.get_mut(&key) {
                Some(e) => {
                    e.2 = self.tick;
                    self.counters.hits += 1;
                    Some(e.0.clone())
                }
                None => {
                    self.counters.misses += 1;
                    None
                }
            }
        }

        fn insert(&mut self, key: Key, coverage: Arc<BitSet>) {
            if coverage.count() * 4 < ENTRY_OVERHEAD {
                self.counters.bypassed += 1;
                return;
            }
            let bytes = coverage.memory_bytes() + ENTRY_OVERHEAD;
            if bytes > self.budget {
                return;
            }
            if let Some(old) = self.entries.remove(&key) {
                self.bytes -= old.1;
            }
            while self.bytes + bytes > self.budget {
                let victim = *self.entries.iter().min_by_key(|(_, e)| e.2).unwrap().0;
                let e = self.entries.remove(&victim).unwrap();
                self.bytes -= e.1;
                self.counters.evictions += 1;
            }
            self.tick += 1;
            self.bytes += bytes;
            self.entries.insert(key, (coverage, bytes, self.tick));
        }
    }

    #[test]
    fn recency_list_matches_linear_scan_model() {
        let one = fat(64, 0).memory_bytes() + ENTRY_OVERHEAD;
        let budget = 3 * one + one / 2;
        let mut c = CoverageCache::new(budget);
        let mut m = ScanModel {
            budget,
            bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            counters: CacheCounters::default(),
        };
        // Deterministic pseudo-random op stream over 8 keys: lookups and
        // inserts interleaved, with enough distinct keys to force steady
        // eviction churn at a 3-entry budget.
        let mut state = 0x9E37_79B9_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = ((state >> 33) % 8) as u32;
            let key = (0u32, kw(k), 0u64);
            if (state >> 7) & 1 == 0 {
                assert_eq!(c.get(key.0, key.1, key.2).is_some(), m.get(key).is_some());
            } else {
                c.insert(key.0, key.1, key.2, fat(64, k as usize));
                m.insert(key, fat(64, k as usize));
            }
            assert_eq!(c.counters(), m.counters);
            assert_eq!(c.resident_bytes(), m.bytes);
            assert_eq!(c.len(), m.entries.len());
        }
        assert!(c.counters().evictions > 100, "stream must exercise eviction");
        for k in 0..8u32 {
            assert_eq!(c.get(0, kw(k), 0).is_some(), m.get((0, kw(k), 0)).is_some());
        }
    }

    #[test]
    fn hot_entries_resist_eviction() {
        let one = fat(64, 0).memory_bytes() + ENTRY_OVERHEAD;
        let mut c = CoverageCache::with_heat(2 * one + one / 2, 2);
        assert_eq!(c.heat_threshold(), 2);
        // kw1 is looked up twice before its insert → hot on admission.
        assert!(c.get(0, kw(1), 0).is_none());
        assert!(c.get(0, kw(1), 0).is_none());
        c.insert(0, kw(1), 0, fat(64, 1));
        // kw2 and kw3 are one-shots; admitting kw3 must evict kw2, the
        // cold entry, even though kw1 is the least recently touched.
        assert!(c.get(0, kw(2), 0).is_none());
        c.insert(0, kw(2), 0, fat(64, 2));
        assert!(c.get(0, kw(3), 0).is_none());
        c.insert(0, kw(3), 0, fat(64, 3));
        assert_eq!(c.counters().evictions, 1);
        assert!(c.get(0, kw(1), 0).is_some(), "hot entry survives");
        assert!(c.get(0, kw(2), 0).is_none(), "cold entry evicted");
        assert!(c.get(0, kw(3), 0).is_some());
    }

    #[test]
    fn one_shot_slots_are_first_out() {
        let one = fat(64, 0).memory_bytes() + ENTRY_OVERHEAD;
        let mut c = CoverageCache::with_heat(2 * one + one / 2, 3);
        // kw1 reaches two lookups (below the threshold of 3) → admitted at
        // the cold MRU end like a plain LRU insert.
        assert!(c.get(0, kw(1), 0).is_none());
        assert!(c.get(0, kw(1), 0).is_none());
        c.insert(0, kw(1), 0, fat(64, 1));
        // kw2 is a one-shot → admitted at the cold LRU end, so it goes
        // first even though it is the most recently inserted.
        assert!(c.get(0, kw(2), 0).is_none());
        c.insert(0, kw(2), 0, fat(64, 2));
        assert!(c.get(0, kw(3), 0).is_none());
        c.insert(0, kw(3), 0, fat(64, 3));
        assert_eq!(c.counters().evictions, 1);
        assert!(c.get(0, kw(1), 0).is_some(), "warm entry survives the one-shot");
        assert!(c.get(0, kw(2), 0).is_none(), "one-shot evicted first");
    }

    #[test]
    fn resident_entry_promotes_on_crossing_threshold() {
        let one = fat(64, 0).memory_bytes() + ENTRY_OVERHEAD;
        let mut c = CoverageCache::with_heat(2 * one + one / 2, 3);
        assert!(c.get(0, kw(1), 0).is_none());
        c.insert(0, kw(1), 0, fat(64, 1));
        // Two hits take kw1's lookups to 3 → promoted to the hot list.
        assert!(c.get(0, kw(1), 0).is_some());
        assert!(c.get(0, kw(1), 0).is_some());
        // A pair of fresh inserts evicts from the cold list only.
        assert!(c.get(0, kw(2), 0).is_none());
        c.insert(0, kw(2), 0, fat(64, 2));
        assert!(c.get(0, kw(3), 0).is_none());
        c.insert(0, kw(3), 0, fat(64, 3));
        assert_eq!(c.counters().evictions, 1);
        assert!(c.get(0, kw(1), 0).is_some(), "promoted entry survives");
    }

    #[test]
    fn hot_list_evicts_when_cold_is_empty() {
        let one = fat(64, 0).memory_bytes() + ENTRY_OVERHEAD;
        let mut c = CoverageCache::with_heat(2 * one + one / 2, 1);
        // Threshold 1: every looked-up slot is hot on admission.
        for k in 1..=3u32 {
            assert!(c.get(0, kw(k), 0).is_none());
            c.insert(0, kw(k), 0, fat(64, k as usize));
        }
        assert_eq!(c.counters().evictions, 1, "hot LRU evicted once cold is empty");
        assert!(c.get(0, kw(1), 0).is_none(), "oldest hot entry evicted");
        assert!(c.get(0, kw(2), 0).is_some());
        assert!(c.get(0, kw(3), 0).is_some());
    }
}
