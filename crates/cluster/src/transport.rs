//! Simulated network links with exact byte accounting.
//!
//! Every coordinator↔worker link is a crossbeam channel of encoded frames
//! plus an atomic byte/message counter. There are deliberately **no**
//! worker↔worker links anywhere in this crate — the type system enforces the
//! paper's zero-inter-worker-communication property, and [`QueryStats`]
//! reports it as a measured 0 rather than an assumption.
//!
//! [`QueryStats`]: crate::stats::QueryStats

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Latency/bandwidth model converting message bytes into modeled wire time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl NetworkModel {
    /// The paper's setup: a 100 Mb TP-LINK switch (~12.5 MB/s) with typical
    /// LAN latency.
    pub fn switch_100mbps() -> Self {
        NetworkModel { latency: Duration::from_micros(200), bandwidth_bytes_per_sec: 12_500_000 }
    }

    /// An idealized zero-cost network (isolates pure compute time).
    pub fn instant() -> Self {
        NetworkModel { latency: Duration::ZERO, bandwidth_bytes_per_sec: u64::MAX }
    }

    /// Modeled time to move `bytes` over the link (latency + serialization).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if self.bandwidth_bytes_per_sec == u64::MAX {
            return self.latency;
        }
        let secs = bytes as f64 / self.bandwidth_bytes_per_sec as f64;
        self.latency + Duration::from_secs_f64(secs)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::switch_100mbps()
    }
}

/// Byte/message counters for one direction of a link.
#[derive(Debug, Default)]
pub struct LinkCounters {
    bytes: AtomicU64,
    messages: AtomicU64,
}

impl LinkCounters {
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    fn record(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a message sent over a link whose sender does not hold the
    /// counted [`LinkSender`] half (the coordinator's request channels).
    pub fn record_send(&self, bytes: u64) {
        self.record(bytes);
    }
}

/// The sending half of a counted link.
#[derive(Debug, Clone)]
pub struct LinkSender {
    tx: Sender<Bytes>,
    counters: Arc<LinkCounters>,
}

impl LinkSender {
    /// Send a frame, counting its bytes. Returns false if the peer is gone.
    pub fn send(&self, frame: Bytes) -> bool {
        self.counters.record(frame.len() as u64);
        self.tx.send(frame).is_ok()
    }

    pub fn counters(&self) -> &Arc<LinkCounters> {
        &self.counters
    }
}

/// Create a counted link; returns the sender, the raw receiver, and the
/// shared counters.
pub fn counted_link() -> (LinkSender, Receiver<Bytes>, Arc<LinkCounters>) {
    let (tx, rx) = unbounded();
    let counters = Arc::new(LinkCounters::default());
    (LinkSender { tx, counters: Arc::clone(&counters) }, rx, counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_bytes_and_messages() {
        let (tx, rx, counters) = counted_link();
        assert!(tx.send(Bytes::from_static(b"hello")));
        assert!(tx.send(Bytes::from_static(b"world!!")));
        assert_eq!(counters.bytes(), 12);
        assert_eq!(counters.messages(), 2);
        assert_eq!(rx.recv().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(rx.recv().unwrap(), Bytes::from_static(b"world!!"));
    }

    #[test]
    fn send_to_dropped_receiver_reports_failure_but_counts() {
        let (tx, rx, counters) = counted_link();
        drop(rx);
        assert!(!tx.send(Bytes::from_static(b"x")));
        assert_eq!(counters.bytes(), 1);
    }

    #[test]
    fn network_model_transfer_time() {
        let m = NetworkModel { latency: Duration::from_millis(1), bandwidth_bytes_per_sec: 1000 };
        assert_eq!(m.transfer_time(0), Duration::from_millis(1));
        assert_eq!(m.transfer_time(1000), Duration::from_millis(1) + Duration::from_secs(1));
        let fast = NetworkModel::instant();
        assert_eq!(fast.transfer_time(u64::MAX / 2), Duration::ZERO);
    }

    #[test]
    fn paper_switch_is_12_5_mbytes() {
        let m = NetworkModel::switch_100mbps();
        // 12.5 MB should take ~1 second plus latency.
        let t = m.transfer_time(12_500_000);
        assert!(t >= Duration::from_secs(1));
        assert!(t < Duration::from_millis(1100));
    }
}
