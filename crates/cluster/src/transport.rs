//! Network links with exact byte accounting and deterministic fault
//! injection, behind a transport seam.
//!
//! Every coordinator↔worker link implements the [`Link`] trait: deliver an
//! encoded frame through the link's fault injector and byte/frame counters.
//! Two implementations exist — [`ChannelLink`] (the original in-process
//! crossbeam pair) and [`TcpLink`] (a real `std::net::TcpStream` with
//! length-prefixed framing, keepalives, and read-timeout supervision; see
//! [`crate::framing`]). [`TransportKind`] (env `DISKS_TRANSPORT`) selects
//! between them. There are deliberately **no** worker↔worker links anywhere
//! in this crate — the type system enforces the paper's
//! zero-inter-worker-communication property, and [`QueryStats`] reports it
//! as a measured 0 rather than an assumption.
//!
//! A [`FaultPlan`] attached via [`crate::ClusterConfig`] turns the links
//! into a lossy wire: frames can be dropped, delayed, duplicated, or
//! corrupted per link, and a worker can be killed (thread exit) or made to
//! panic on its nth request. Because injection happens at the [`Link`] seam
//! (before any socket), the same plan replays identically on both
//! transports. Two further faults exist only below the seam, on the TCP
//! pumps: a mid-frame connection cut and a stalled socket that trips the
//! peer's read timeout ([`FaultPlan::cut_link_mid_frame`],
//! [`FaultPlan::stall_link`]). All faults are keyed on deterministic
//! per-link frame counters plus a seed, so every failure scenario replays
//! identically — the test substrate the recovery machinery is verified
//! against.
//!
//! [`QueryStats`]: crate::stats::QueryStats

use std::io::{ErrorKind, Read};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{
    bounded, unbounded, Receiver, RecvTimeoutError, SendError, Sender, TrySendError,
};

use crate::framing::{self, FrameAssembler, StreamEvent};

/// Latency/bandwidth model converting message bytes into modeled wire time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl NetworkModel {
    /// The paper's setup: a 100 Mb TP-LINK switch (~12.5 MB/s) with typical
    /// LAN latency.
    pub fn switch_100mbps() -> Self {
        NetworkModel { latency: Duration::from_micros(200), bandwidth_bytes_per_sec: 12_500_000 }
    }

    /// An idealized zero-cost network (isolates pure compute time).
    pub fn instant() -> Self {
        NetworkModel { latency: Duration::ZERO, bandwidth_bytes_per_sec: u64::MAX }
    }

    /// Modeled time to move `bytes` over the link (latency + serialization).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if self.bandwidth_bytes_per_sec == u64::MAX {
            return self.latency;
        }
        let secs = bytes as f64 / self.bandwidth_bytes_per_sec as f64;
        self.latency + Duration::from_secs_f64(secs)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::switch_100mbps()
    }
}

/// Byte/message counters for one direction of a link.
#[derive(Debug, Default)]
pub struct LinkCounters {
    bytes: AtomicU64,
    messages: AtomicU64,
}

impl LinkCounters {
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    fn record(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a message sent over a link whose sender does not hold the
    /// counted [`LinkSender`] half (the coordinator's request channels).
    pub fn record_send(&self, bytes: u64) {
        self.record(bytes);
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The frame is lost on the wire (bytes counted, never delivered).
    DropFrame,
    /// The frame is delivered twice.
    DuplicateFrame,
    /// The frame's leading byte is flipped, guaranteeing a decode failure
    /// at the receiver (the flip sets the high bit of the message tag).
    CorruptFrame,
    /// Delivery is delayed by the given number of milliseconds.
    DelayFrameMillis(u64),
    /// The worker thread exits (simulated machine crash) upon receiving
    /// its nth request, before answering any of its fragments.
    KillWorker,
    /// The worker panics while evaluating its nth request's first fragment
    /// task (exercises the `catch_unwind` supervisor).
    PanicWorker,
    /// TCP-only: the connection is severed while the nth payload frame of
    /// this direction is mid-write — the length prefix and half the payload
    /// reach the wire, then the socket hard-closes. The peer sees a torn
    /// frame followed by EOF.
    CutLinkMidFrame,
    /// TCP-only: the sending pump goes silent (no payloads, no keepalives)
    /// for the given milliseconds before writing the nth payload frame,
    /// driving the peer's read timeout.
    StallLinkMillis(u64),
}

/// Which direction of a coordinator↔worker link a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDirection {
    CoordinatorToWorker,
    WorkerToCoordinator,
}

/// A fault pinned to the nth frame (1-based) of one link direction of one
/// machine. For [`FaultAction::KillWorker`] / [`FaultAction::PanicWorker`],
/// `nth` counts the worker's received *requests* rather than frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFault {
    pub machine: usize,
    pub direction: LinkDirection,
    pub nth: u64,
    pub action: FaultAction,
}

/// A deterministic, seeded schedule of link and worker faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<LinkFault>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Attach an arbitrary fault.
    pub fn with_fault(mut self, fault: LinkFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Drop the nth frame on one direction of machine `m`'s link.
    pub fn drop_frame(self, m: usize, direction: LinkDirection, nth: u64) -> Self {
        self.with_fault(LinkFault { machine: m, direction, nth, action: FaultAction::DropFrame })
    }

    /// Deliver the nth frame on one direction of machine `m`'s link twice.
    pub fn duplicate_frame(self, m: usize, direction: LinkDirection, nth: u64) -> Self {
        self.with_fault(LinkFault {
            machine: m,
            direction,
            nth,
            action: FaultAction::DuplicateFrame,
        })
    }

    /// Corrupt the nth frame on one direction of machine `m`'s link.
    pub fn corrupt_frame(self, m: usize, direction: LinkDirection, nth: u64) -> Self {
        self.with_fault(LinkFault { machine: m, direction, nth, action: FaultAction::CorruptFrame })
    }

    /// Delay the nth frame on one direction of machine `m`'s link.
    pub fn delay_frame(self, m: usize, direction: LinkDirection, nth: u64, millis: u64) -> Self {
        self.with_fault(LinkFault {
            machine: m,
            direction,
            nth,
            action: FaultAction::DelayFrameMillis(millis),
        })
    }

    /// Kill worker `m`'s thread on its nth received request.
    pub fn kill_worker(self, m: usize, nth_request: u64) -> Self {
        self.with_fault(LinkFault {
            machine: m,
            direction: LinkDirection::CoordinatorToWorker,
            nth: nth_request,
            action: FaultAction::KillWorker,
        })
    }

    /// Panic inside worker `m`'s evaluation of its nth received request.
    pub fn panic_worker(self, m: usize, nth_request: u64) -> Self {
        self.with_fault(LinkFault {
            machine: m,
            direction: LinkDirection::CoordinatorToWorker,
            nth: nth_request,
            action: FaultAction::PanicWorker,
        })
    }

    /// Sever machine `m`'s TCP connection mid-write of the nth payload
    /// frame in `direction`. No effect on the channel transport.
    pub fn cut_link_mid_frame(self, m: usize, direction: LinkDirection, nth: u64) -> Self {
        self.with_fault(LinkFault {
            machine: m,
            direction,
            nth,
            action: FaultAction::CutLinkMidFrame,
        })
    }

    /// Stall machine `m`'s TCP sending pump (no payloads, no keepalives)
    /// for `millis` before the nth payload frame in `direction`, so the
    /// peer's read timeout fires. No effect on the channel transport.
    pub fn stall_link(self, m: usize, direction: LinkDirection, nth: u64, millis: u64) -> Self {
        self.with_fault(LinkFault {
            machine: m,
            direction,
            nth,
            action: FaultAction::StallLinkMillis(millis),
        })
    }

    /// The request ordinal on which worker `m` should crash, if any.
    pub fn kill_request_for(&self, m: usize) -> Option<u64> {
        self.faults
            .iter()
            .find(|f| f.machine == m && f.action == FaultAction::KillWorker)
            .map(|f| f.nth)
    }

    /// The request ordinal on which worker `m` should panic, if any.
    pub fn panic_request_for(&self, m: usize) -> Option<u64> {
        self.faults
            .iter()
            .find(|f| f.machine == m && f.action == FaultAction::PanicWorker)
            .map(|f| f.nth)
    }

    /// Materialize the runtime injector for one direction of machine `m`'s
    /// link, or `None` when no frame fault targets it (fault-free links pay
    /// zero overhead).
    pub fn injector_for(&self, m: usize, direction: LinkDirection) -> Option<Arc<FaultInjector>> {
        let faults: Vec<(u64, FaultAction)> = self
            .faults
            .iter()
            .filter(|f| {
                f.machine == m
                    && f.direction == direction
                    && !matches!(
                        f.action,
                        FaultAction::KillWorker
                            | FaultAction::PanicWorker
                            | FaultAction::CutLinkMidFrame
                            | FaultAction::StallLinkMillis(_)
                    )
            })
            .map(|f| (f.nth, f.action))
            .collect();
        if faults.is_empty() {
            return None;
        }
        Some(Arc::new(FaultInjector {
            counter: AtomicU64::new(0),
            faults,
            seed: self.seed ^ ((m as u64) << 1) ^ (direction as u64),
        }))
    }

    /// Materialize the pump-level fault schedule for one direction of
    /// machine `m`'s TCP link, or `None` when no transport fault targets
    /// it. These act *below* the [`Link`] seam (on the socket pumps), so
    /// [`injector_for`](FaultPlan::injector_for) excludes them.
    pub fn transport_faults_for(
        &self,
        m: usize,
        direction: LinkDirection,
    ) -> Option<Arc<TransportFaults>> {
        let faults: Vec<(u64, FaultAction)> = self
            .faults
            .iter()
            .filter(|f| {
                f.machine == m
                    && f.direction == direction
                    && matches!(
                        f.action,
                        FaultAction::CutLinkMidFrame | FaultAction::StallLinkMillis(_)
                    )
            })
            .map(|f| (f.nth, f.action))
            .collect();
        if faults.is_empty() {
            return None;
        }
        Some(Arc::new(TransportFaults { counter: AtomicU64::new(0), faults }))
    }
}

/// Pump-level fault schedule for one direction of one TCP link. The
/// ordinal counter lives in the `Arc` the cluster holds across reconnects,
/// so an nth-payload fault fires exactly once even after the link is
/// rebuilt (a respawned connection does not replay it).
#[derive(Debug)]
pub struct TransportFaults {
    counter: AtomicU64,
    faults: Vec<(u64, FaultAction)>,
}

impl TransportFaults {
    /// The fault scheduled for the next payload write, if any (keepalives
    /// do not advance the ordinal).
    pub fn next(&self) -> Option<FaultAction> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        self.faults.iter().find(|(nth, _)| *nth == n).map(|(_, a)| *a)
    }
}

/// What a fault injector decided to do with one frame.
#[derive(Debug)]
pub enum FrameFate {
    /// Deliver these frames (normally one; two when duplicated; a corrupted
    /// or delayed frame also lands here).
    Deliver(Vec<Bytes>),
    /// The frame was lost on the wire; its byte length for accounting.
    Dropped(u64),
}

/// Per-link runtime fault state: a frame counter plus the faults scheduled
/// for this link, applied deterministically.
#[derive(Debug)]
pub struct FaultInjector {
    counter: AtomicU64,
    faults: Vec<(u64, FaultAction)>,
    seed: u64,
}

impl FaultInjector {
    /// Admit one outgoing frame, applying the first fault scheduled for its
    /// ordinal (1-based), if any.
    pub fn admit(&self, frame: Bytes) -> FrameFate {
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        let action = self.faults.iter().find(|(nth, _)| *nth == n).map(|(_, a)| *a);
        match action {
            None => FrameFate::Deliver(vec![frame]),
            Some(FaultAction::DropFrame) => FrameFate::Dropped(frame.len() as u64),
            Some(FaultAction::DuplicateFrame) => FrameFate::Deliver(vec![frame.clone(), frame]),
            Some(FaultAction::CorruptFrame) => {
                let mut corrupted = BytesMut::from(&frame[..]);
                if !corrupted.is_empty() {
                    // Setting the tag's high bit guarantees the receiver sees
                    // an invalid message tag rather than a silently altered
                    // payload; the seed varies the low bits.
                    corrupted[0] ^= 0x80 | (self.seed.wrapping_add(n) as u8 & 0x7f) | 0x01;
                }
                FrameFate::Deliver(vec![corrupted.freeze()])
            }
            Some(FaultAction::DelayFrameMillis(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                FrameFate::Deliver(vec![frame])
            }
            // Worker lifecycle faults are enacted inside the worker loop
            // and transport faults inside the TCP pumps, never at the link
            // layer ([`FaultPlan::injector_for`] filters both out; this arm
            // is unreachable but total).
            Some(FaultAction::KillWorker)
            | Some(FaultAction::PanicWorker)
            | Some(FaultAction::CutLinkMidFrame)
            | Some(FaultAction::StallLinkMillis(_)) => FrameFate::Deliver(vec![frame]),
        }
    }
}

/// The sending half of a counted link, optionally routed through a fault
/// injector.
#[derive(Debug, Clone)]
pub struct LinkSender {
    tx: Sender<Bytes>,
    counters: Arc<LinkCounters>,
    faults: Option<Arc<FaultInjector>>,
}

impl LinkSender {
    /// Send a frame, counting its bytes. Returns false if the peer is gone.
    /// Injected faults may drop, duplicate, corrupt, or delay the frame;
    /// dropped frames still count as sent (the wire consumed them).
    pub fn send(&self, frame: Bytes) -> bool {
        let frames = match &self.faults {
            None => vec![frame],
            Some(inj) => match inj.admit(frame) {
                FrameFate::Deliver(frames) => frames,
                FrameFate::Dropped(len) => {
                    self.counters.record(len);
                    return true;
                }
            },
        };
        // Count every copy before the first enqueue: the receiver may act
        // on the first copy the instant it lands, and the straggler drain
        // reconciles its consumption against these counters — a copy
        // enqueued before its sibling is counted could slip past the drain.
        for f in &frames {
            self.counters.record(f.len() as u64);
        }
        for f in frames {
            if self.tx.send(f).is_err() {
                return false;
            }
        }
        true
    }

    pub fn counters(&self) -> &Arc<LinkCounters> {
        &self.counters
    }

    /// A copy of this sender routed through `faults` (per-machine injection
    /// on the shared worker→coordinator channel).
    pub fn with_faults(&self, faults: Option<Arc<FaultInjector>>) -> LinkSender {
        LinkSender { tx: self.tx.clone(), counters: Arc::clone(&self.counters), faults }
    }

    /// Wrap an arbitrary channel sender in a counted link sender — the TCP
    /// worker endpoint's egress, counted exactly like the in-process shared
    /// response channel so the wire ledger is transport-independent.
    pub fn over(tx: Sender<Bytes>, counters: Arc<LinkCounters>) -> LinkSender {
        LinkSender { tx, counters, faults: None }
    }

    /// The raw, uncounted channel sender (TCP ingress pumps forward frames
    /// that were already counted on the sending side).
    pub(crate) fn raw(&self) -> Sender<Bytes> {
        self.tx.clone()
    }
}

/// Create a counted link; returns the sender, the raw receiver, and the
/// shared counters.
pub fn counted_link() -> (LinkSender, Receiver<Bytes>, Arc<LinkCounters>) {
    let (tx, rx) = unbounded();
    let counters = Arc::new(LinkCounters::default());
    (LinkSender { tx, counters: Arc::clone(&counters), faults: None }, rx, counters)
}

/// Which wire implementation carries coordinator↔worker frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process crossbeam channels (the original simulated wire).
    #[default]
    Channel,
    /// Loopback `std::net::TcpStream` sockets with length-prefixed framing.
    Tcp,
}

impl TransportKind {
    /// Resolve from `DISKS_TRANSPORT` (`tcp` or `channel`; default
    /// channel).
    pub fn from_env() -> TransportKind {
        match std::env::var("DISKS_TRANSPORT") {
            Ok(v) if v.trim().eq_ignore_ascii_case("tcp") => TransportKind::Tcp,
            _ => TransportKind::Channel,
        }
    }
}

fn env_millis(var: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(var).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default_ms);
    Duration::from_millis(ms.max(1))
}

/// Microseconds elapsed since a lazily-pinned process-wide epoch — the
/// shared clock behind every health-plane timestamp (pump keepalive
/// arrivals, suspicion scoring). A plain monotonic counter keeps the pumps'
/// hot path to one `Instant::elapsed` + one atomic store.
pub fn epoch_micros() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH.get_or_init(std::time::Instant::now).elapsed().as_micros() as u64
}

/// A rejected [`HeartbeatConfig`]: zero durations or a read timeout that
/// does not exceed the keepalive interval (a reader whose silence budget is
/// at or below the sender's idle cadence flaps healthy links on scheduling
/// jitter alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatConfigError {
    ZeroInterval,
    ZeroReadTimeout,
    ReadTimeoutNotAboveInterval { interval: Duration, read_timeout: Duration },
}

impl std::fmt::Display for HeartbeatConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeartbeatConfigError::ZeroInterval => {
                write!(f, "DISKS_HEARTBEAT_MS must be at least 1")
            }
            HeartbeatConfigError::ZeroReadTimeout => {
                write!(f, "DISKS_TCP_READ_TIMEOUT_MS must be at least 1")
            }
            HeartbeatConfigError::ReadTimeoutNotAboveInterval { interval, read_timeout } => write!(
                f,
                "read timeout {}ms must exceed the keepalive interval {}ms \
                 (an at-or-below budget flaps healthy idle links)",
                read_timeout.as_millis(),
                interval.as_millis()
            ),
        }
    }
}

impl std::error::Error for HeartbeatConfigError {}

/// Liveness parameters of a TCP link: how often an idle sending pump emits
/// a keepalive, and how long a silent peer may stay silent before the
/// reading pump declares the link stalled. The read timeout must exceed the
/// interval (with margin for scheduling jitter) or healthy idle links flap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Keepalive emission period of an idle sender (`DISKS_HEARTBEAT_MS`,
    /// default 100).
    pub interval: Duration,
    /// Read-side silence budget (`DISKS_TCP_READ_TIMEOUT_MS`, default
    /// 1000).
    pub read_timeout: Duration,
}

impl HeartbeatConfig {
    /// Validate an interval/read-timeout pair with a typed error instead of
    /// letting a nonsensical combination silently flap links at runtime.
    pub fn checked(
        interval: Duration,
        read_timeout: Duration,
    ) -> Result<HeartbeatConfig, HeartbeatConfigError> {
        if interval.is_zero() {
            return Err(HeartbeatConfigError::ZeroInterval);
        }
        if read_timeout.is_zero() {
            return Err(HeartbeatConfigError::ZeroReadTimeout);
        }
        if read_timeout <= interval {
            return Err(HeartbeatConfigError::ReadTimeoutNotAboveInterval {
                interval,
                read_timeout,
            });
        }
        Ok(HeartbeatConfig { interval, read_timeout })
    }

    /// Resolve from the environment without clamping, surfacing the typed
    /// error for callers (the worker binary, tests) that want to reject a
    /// bad deployment loudly.
    pub fn try_from_env() -> Result<HeartbeatConfig, HeartbeatConfigError> {
        Self::checked(
            env_millis("DISKS_HEARTBEAT_MS", 100),
            env_millis("DISKS_TCP_READ_TIMEOUT_MS", 1000),
        )
    }

    /// Resolve from the environment, clamping any rejected combination back
    /// to a safe shape (read timeout raised to 10× the interval — the
    /// default 100ms/1000ms ratio) with a one-line warning, so library
    /// construction paths (`ClusterConfig::default`) stay infallible.
    pub fn from_env() -> HeartbeatConfig {
        match Self::try_from_env() {
            Ok(cfg) => cfg,
            Err(e) => {
                let interval = env_millis("DISKS_HEARTBEAT_MS", 100).max(Duration::from_millis(1));
                let cfg = HeartbeatConfig { interval, read_timeout: interval * 10 };
                eprintln!(
                    "disks: invalid heartbeat config ({e}); clamped to \
                     interval={}ms read_timeout={}ms",
                    cfg.interval.as_millis(),
                    cfg.read_timeout.as_millis()
                );
                cfg
            }
        }
    }
}

impl Default for HeartbeatConfig {
    fn default() -> HeartbeatConfig {
        HeartbeatConfig::from_env()
    }
}

/// One coordinator→worker link: frames go through the fault injector and
/// byte/frame counters here, identically on every transport, which is what
/// lets the whole chaos suite run unchanged over channels and sockets.
///
/// The three send entry points encode the ledger's exact counting rules:
/// dispatch/retry traffic is faulted *and* counted ([`Link::deliver`]),
/// prewarm repair traffic is counted but never faulted
/// ([`Link::deliver_unfaulted`]), and shutdown is neither
/// ([`Link::send_raw`]).
pub trait Link: Send {
    /// Deliver one frame through faults and counters. `on_full` fires when
    /// the peer's bounded queue is full before the blocking hand-off (the
    /// backpressure signal the overload gauge records). Frames the peer
    /// never accepted (it vanished mid-send) are returned so the caller can
    /// respawn it and re-deliver them raw — their bytes are already
    /// counted.
    fn deliver(&self, frame: &Bytes, on_full: &mut dyn FnMut()) -> Vec<Bytes>;

    /// Hand a frame to the peer without counting or faults.
    fn send_raw(&self, frame: Bytes) -> bool;

    /// This direction's byte/frame ledger.
    fn counters(&self) -> &Arc<LinkCounters>;

    /// Whether the transport has observed the link broken or stalled (EOF,
    /// reset, heartbeat miss). Channel links never report down — thread
    /// liveness covers them.
    fn is_down(&self) -> bool;

    /// Tear the link down (wakes any blocked pump; idempotent).
    fn close(&self);

    /// Counted but unfaulted delivery (the prewarm path: repair traffic is
    /// part of the wire ledger but never a fault target).
    fn deliver_unfaulted(&self, frame: &Bytes) -> bool {
        self.counters().record_send(frame.len() as u64);
        self.send_raw(frame.clone())
    }

    /// [`epoch_micros`] timestamp of the most recent proof of life the
    /// transport itself observed from the peer (keepalives *and* payload
    /// frames seen by the ingress pump). `None` when the transport has no
    /// reader of its own (channel links — the coordinator sees every frame
    /// arrival directly) or nothing has arrived yet. The health layer polls
    /// this so a worker that is alive-but-slow keeps its suspicion low via
    /// keepalives even while a big answer is still being computed.
    fn last_arrival_micros(&self) -> Option<u64> {
        None
    }
}

/// Shared delivery logic of both link kinds: apply the injector, count
/// every admitted frame, queue with queue-full signalling, and surface
/// frames the peer never accepted.
fn deliver_via(
    tx: &Sender<Bytes>,
    counters: &LinkCounters,
    faults: &Option<Arc<FaultInjector>>,
    frame: &Bytes,
    on_full: &mut dyn FnMut(),
) -> Vec<Bytes> {
    let frames = match faults {
        None => vec![frame.clone()],
        Some(inj) => match inj.admit(frame.clone()) {
            FrameFate::Deliver(frames) => frames,
            FrameFate::Dropped(len) => {
                // The wire consumed the dropped frame: counted, not queued.
                counters.record_send(len);
                return Vec::new();
            }
        },
    };
    let mut undelivered = Vec::new();
    for f in frames {
        counters.record_send(f.len() as u64);
        match tx.try_send(f) {
            Ok(()) => {}
            Err(TrySendError::Full(f)) => {
                on_full();
                if let Err(SendError(f)) = tx.send(f) {
                    undelivered.push(f);
                }
            }
            Err(TrySendError::Disconnected(f)) => undelivered.push(f),
        }
    }
    undelivered
}

/// The original in-process transport: a bounded crossbeam channel whose
/// receiver the worker thread owns.
pub struct ChannelLink {
    tx: Sender<Bytes>,
    counters: Arc<LinkCounters>,
    faults: Option<Arc<FaultInjector>>,
}

impl ChannelLink {
    /// Build the coordinator half over an existing bounded sender.
    pub fn new(
        tx: Sender<Bytes>,
        counters: Arc<LinkCounters>,
        faults: Option<Arc<FaultInjector>>,
    ) -> ChannelLink {
        ChannelLink { tx, counters, faults }
    }
}

impl Link for ChannelLink {
    fn deliver(&self, frame: &Bytes, on_full: &mut dyn FnMut()) -> Vec<Bytes> {
        deliver_via(&self.tx, &self.counters, &self.faults, frame, on_full)
    }

    fn send_raw(&self, frame: Bytes) -> bool {
        self.tx.send(frame).is_ok()
    }

    fn counters(&self) -> &Arc<LinkCounters> {
        &self.counters
    }

    fn is_down(&self) -> bool {
        false
    }

    fn close(&self) {}
}

/// The socket transport's sending pump: drains the link's bounded queue
/// onto the wire as length-framed payloads, emitting keepalives while
/// idle and enacting pump-level transport faults. Exits (closing the
/// socket) on write failure or when the queue disconnects.
fn egress_pump(
    mut wire: TcpStream,
    rx: Receiver<Bytes>,
    heartbeat: Duration,
    faults: Option<Arc<TransportFaults>>,
    down: Arc<AtomicBool>,
) {
    loop {
        match rx.recv_timeout(heartbeat) {
            Ok(frame) => match faults.as_ref().and_then(|t| t.next()) {
                Some(FaultAction::CutLinkMidFrame) => {
                    let _ = framing::write_partial_frame(&mut wire, &frame);
                    down.store(true, Ordering::Release);
                    let _ = wire.shutdown(Shutdown::Both);
                    return;
                }
                Some(FaultAction::StallLinkMillis(ms)) => {
                    // Sleeping here silences keepalives too — exactly the
                    // stall the peer's read timeout exists to catch.
                    thread::sleep(Duration::from_millis(ms));
                    if framing::write_frame(&mut wire, &frame).is_err() {
                        down.store(true, Ordering::Release);
                        let _ = wire.shutdown(Shutdown::Both);
                        return;
                    }
                }
                _ => {
                    if framing::write_frame(&mut wire, &frame).is_err() {
                        down.store(true, Ordering::Release);
                        let _ = wire.shutdown(Shutdown::Both);
                        return;
                    }
                }
            },
            Err(RecvTimeoutError::Timeout) => {
                if framing::write_keepalive(&mut wire).is_err() {
                    down.store(true, Ordering::Release);
                    let _ = wire.shutdown(Shutdown::Both);
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Orderly teardown: the link owner dropped the queue.
                let _ = wire.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

/// The socket transport's reading pump: reassembles the framed stream and
/// forwards payload frames into `out`. Exits — marking the link down and
/// closing the socket — on EOF, reset, read timeout (heartbeat miss), or a
/// framing error (torn or over-length frame).
fn ingress_pump(
    mut wire: TcpStream,
    out: Sender<Bytes>,
    received: Option<Arc<LinkCounters>>,
    down: Arc<AtomicBool>,
    arrivals: Option<Arc<AtomicU64>>,
) {
    let mut asm = FrameAssembler::new();
    let mut buf = [0u8; 16 * 1024];
    'link: loop {
        match wire.read(&mut buf) {
            Ok(0) => break 'link,
            Ok(n) => {
                asm.extend(&buf[..n]);
                loop {
                    match asm.next_event() {
                        Ok(Some(StreamEvent::Frame(f))) => {
                            if let Some(a) = &arrivals {
                                a.store(epoch_micros().max(1), Ordering::Release);
                            }
                            if let Some(c) = &received {
                                c.record_send(f.len() as u64);
                            }
                            if out.send(f).is_err() {
                                break 'link;
                            }
                        }
                        Ok(Some(StreamEvent::Keepalive)) => {
                            // Keepalives are the transport's proof of life:
                            // export the arrival time for the health layer
                            // (a payload frame counts identically above).
                            if let Some(a) = &arrivals {
                                a.store(epoch_micros().max(1), Ordering::Release);
                            }
                        }
                        Ok(None) => break,
                        Err(_) => break 'link,
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break 'link,
        }
    }
    down.store(true, Ordering::Release);
    let _ = wire.shutdown(Shutdown::Both);
}

/// A coordinator→worker link over a real TCP stream. Delivery semantics
/// (faults, counters, queue-full backpressure) are identical to
/// [`ChannelLink`] — the socket machinery lives in two pump threads below
/// the seam. Incoming response frames are forwarded into the cluster's
/// shared response channel; `received` counters apply only when the sender
/// could not count them itself (remote worker processes).
pub struct TcpLink {
    tx: Sender<Bytes>,
    counters: Arc<LinkCounters>,
    faults: Option<Arc<FaultInjector>>,
    down: Arc<AtomicBool>,
    stream: TcpStream,
    /// Last peer proof-of-life ([`epoch_micros`], 0 = none yet), stored by
    /// the ingress pump on every keepalive or payload frame.
    last_arrival: Arc<AtomicU64>,
}

impl TcpLink {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        stream: TcpStream,
        machine: usize,
        counters: Arc<LinkCounters>,
        faults: Option<Arc<FaultInjector>>,
        transport_faults: Option<Arc<TransportFaults>>,
        responses: Sender<Bytes>,
        received: Option<Arc<LinkCounters>>,
        heartbeat: HeartbeatConfig,
        queue_capacity: usize,
    ) -> std::io::Result<TcpLink> {
        stream.set_nodelay(true)?;
        let (tx, rx) = bounded(queue_capacity.max(1));
        let down = Arc::new(AtomicBool::new(false));
        let writer = stream.try_clone()?;
        let reader = stream.try_clone()?;
        reader.set_read_timeout(Some(heartbeat.read_timeout))?;
        let tx_down = Arc::clone(&down);
        thread::Builder::new()
            .name(format!("disks-link-tx-{machine}"))
            .spawn(move || egress_pump(writer, rx, heartbeat.interval, transport_faults, tx_down))
            .expect("spawn link egress pump");
        let rx_down = Arc::clone(&down);
        let last_arrival = Arc::new(AtomicU64::new(0));
        let rx_arrivals = Arc::clone(&last_arrival);
        thread::Builder::new()
            .name(format!("disks-link-rx-{machine}"))
            .spawn(move || ingress_pump(reader, responses, received, rx_down, Some(rx_arrivals)))
            .expect("spawn link ingress pump");
        Ok(TcpLink { tx, counters, faults, down, stream, last_arrival })
    }
}

impl Link for TcpLink {
    fn deliver(&self, frame: &Bytes, on_full: &mut dyn FnMut()) -> Vec<Bytes> {
        deliver_via(&self.tx, &self.counters, &self.faults, frame, on_full)
    }

    fn send_raw(&self, frame: Bytes) -> bool {
        self.tx.send(frame).is_ok()
    }

    fn counters(&self) -> &Arc<LinkCounters> {
        &self.counters
    }

    fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    fn close(&self) {
        self.down.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn last_arrival_micros(&self) -> Option<u64> {
        match self.last_arrival.load(Ordering::Acquire) {
            0 => None,
            us => Some(us),
        }
    }
}

/// The worker's half of a TCP link: a request receiver that feeds the
/// unchanged `worker_loop`, and an egress sender its counted
/// [`LinkSender`] wraps (via [`LinkSender::over`]). Its own pump pair
/// mirrors the coordinator side — keepalives while idle, read-timeout
/// supervision, socket closed on any failure — so a dead coordinator (or a
/// cut link) tears the worker down promptly instead of leaving it hung.
pub struct TcpWorkerEndpoint {
    pub requests: Receiver<Bytes>,
    pub egress: Sender<Bytes>,
}

/// Stand up the worker-side pumps over a connected stream.
pub fn tcp_worker_endpoint(
    stream: TcpStream,
    machine: usize,
    heartbeat: HeartbeatConfig,
    transport_faults: Option<Arc<TransportFaults>>,
) -> std::io::Result<TcpWorkerEndpoint> {
    stream.set_nodelay(true)?;
    let reader = stream.try_clone()?;
    reader.set_read_timeout(Some(heartbeat.read_timeout))?;
    let writer = stream;
    let (req_tx, req_rx) = unbounded();
    let (resp_tx, resp_rx) = unbounded();
    let down = Arc::new(AtomicBool::new(false));
    let rx_down = Arc::clone(&down);
    thread::Builder::new()
        .name(format!("disks-peer-rx-{machine}"))
        .spawn(move || ingress_pump(reader, req_tx, None, rx_down, None))
        .expect("spawn worker ingress pump");
    thread::Builder::new()
        .name(format!("disks-peer-tx-{machine}"))
        .spawn(move || egress_pump(writer, resp_rx, heartbeat.interval, transport_faults, down))
        .expect("spawn worker egress pump");
    Ok(TcpWorkerEndpoint { requests: req_rx, egress: resp_tx })
}

/// A connected loopback socket pair: (coordinator side, worker side). The
/// in-process TCP transport runs every link over one of these.
pub fn loopback_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let worker_side = TcpStream::connect(addr)?;
    let (coordinator_side, _) = listener.accept()?;
    Ok((coordinator_side, worker_side))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_bytes_and_messages() {
        let (tx, rx, counters) = counted_link();
        assert!(tx.send(Bytes::from_static(b"hello")));
        assert!(tx.send(Bytes::from_static(b"world!!")));
        assert_eq!(counters.bytes(), 12);
        assert_eq!(counters.messages(), 2);
        assert_eq!(rx.recv().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(rx.recv().unwrap(), Bytes::from_static(b"world!!"));
    }

    #[test]
    fn send_to_dropped_receiver_reports_failure_but_counts() {
        let (tx, rx, counters) = counted_link();
        drop(rx);
        assert!(!tx.send(Bytes::from_static(b"x")));
        assert_eq!(counters.bytes(), 1);
    }

    #[test]
    fn network_model_transfer_time() {
        let m = NetworkModel { latency: Duration::from_millis(1), bandwidth_bytes_per_sec: 1000 };
        assert_eq!(m.transfer_time(0), Duration::from_millis(1));
        assert_eq!(m.transfer_time(1000), Duration::from_millis(1) + Duration::from_secs(1));
        let fast = NetworkModel::instant();
        assert_eq!(fast.transfer_time(u64::MAX / 2), Duration::ZERO);
    }

    #[test]
    fn fault_plan_drops_duplicates_and_corrupts_deterministically() {
        let plan = FaultPlan::new(42)
            .drop_frame(0, LinkDirection::WorkerToCoordinator, 1)
            .duplicate_frame(0, LinkDirection::WorkerToCoordinator, 2)
            .corrupt_frame(0, LinkDirection::WorkerToCoordinator, 3);
        let inj = plan.injector_for(0, LinkDirection::WorkerToCoordinator).unwrap();
        let frame = Bytes::from_static(b"\x00abc");
        match inj.admit(frame.clone()) {
            FrameFate::Dropped(4) => {}
            other => panic!("expected drop, got {other:?}"),
        }
        match inj.admit(frame.clone()) {
            FrameFate::Deliver(v) => assert_eq!(v.len(), 2),
            other => panic!("expected duplicate, got {other:?}"),
        }
        match inj.admit(frame.clone()) {
            FrameFate::Deliver(v) => {
                assert_eq!(v.len(), 1);
                assert_ne!(v[0], frame);
                assert!(v[0][0] & 0x80 != 0, "corruption must poison the tag byte");
            }
            other => panic!("expected corrupted delivery, got {other:?}"),
        }
        // Fourth frame onward is untouched.
        match inj.admit(frame.clone()) {
            FrameFate::Deliver(v) => assert_eq!(v, vec![frame]),
            other => panic!("expected clean delivery, got {other:?}"),
        }
    }

    #[test]
    fn fault_plan_scopes_injectors_per_link() {
        let plan = FaultPlan::new(7)
            .drop_frame(1, LinkDirection::CoordinatorToWorker, 1)
            .kill_worker(2, 3)
            .panic_worker(0, 1);
        assert!(plan.injector_for(0, LinkDirection::CoordinatorToWorker).is_none());
        assert!(plan.injector_for(1, LinkDirection::WorkerToCoordinator).is_none());
        assert!(plan.injector_for(1, LinkDirection::CoordinatorToWorker).is_some());
        // Worker lifecycle faults never become link injectors.
        assert!(plan.injector_for(2, LinkDirection::CoordinatorToWorker).is_none());
        assert_eq!(plan.kill_request_for(2), Some(3));
        assert_eq!(plan.kill_request_for(0), None);
        assert_eq!(plan.panic_request_for(0), Some(1));
    }

    #[test]
    fn faulty_sender_counts_dropped_bytes_as_sent() {
        let plan = FaultPlan::new(1).drop_frame(0, LinkDirection::WorkerToCoordinator, 1);
        let (tx, rx, counters) = counted_link();
        let tx = tx.with_faults(plan.injector_for(0, LinkDirection::WorkerToCoordinator));
        assert!(tx.send(Bytes::from_static(b"lost")));
        assert!(tx.send(Bytes::from_static(b"kept")));
        assert_eq!(counters.bytes(), 8, "dropped frames still consumed the wire");
        assert_eq!(rx.recv().unwrap(), Bytes::from_static(b"kept"));
        assert!(rx.try_recv().is_err(), "dropped frame never delivered");
    }

    #[test]
    fn paper_switch_is_12_5_mbytes() {
        let m = NetworkModel::switch_100mbps();
        // 12.5 MB should take ~1 second plus latency.
        let t = m.transfer_time(12_500_000);
        assert!(t >= Duration::from_secs(1));
        assert!(t < Duration::from_millis(1100));
    }
}
