//! Simulated network links with exact byte accounting and deterministic
//! fault injection.
//!
//! Every coordinator↔worker link is a crossbeam channel of encoded frames
//! plus an atomic byte/message counter. There are deliberately **no**
//! worker↔worker links anywhere in this crate — the type system enforces the
//! paper's zero-inter-worker-communication property, and [`QueryStats`]
//! reports it as a measured 0 rather than an assumption.
//!
//! A [`FaultPlan`] attached via [`crate::ClusterConfig`] turns the links
//! into a lossy wire: frames can be dropped, delayed, duplicated, or
//! corrupted per link, and a worker can be killed (thread exit) or made to
//! panic on its nth request. All faults are keyed on deterministic
//! per-link frame counters plus a seed, so every failure scenario replays
//! identically — the test substrate the recovery machinery is verified
//! against.
//!
//! [`QueryStats`]: crate::stats::QueryStats

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Latency/bandwidth model converting message bytes into modeled wire time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl NetworkModel {
    /// The paper's setup: a 100 Mb TP-LINK switch (~12.5 MB/s) with typical
    /// LAN latency.
    pub fn switch_100mbps() -> Self {
        NetworkModel { latency: Duration::from_micros(200), bandwidth_bytes_per_sec: 12_500_000 }
    }

    /// An idealized zero-cost network (isolates pure compute time).
    pub fn instant() -> Self {
        NetworkModel { latency: Duration::ZERO, bandwidth_bytes_per_sec: u64::MAX }
    }

    /// Modeled time to move `bytes` over the link (latency + serialization).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if self.bandwidth_bytes_per_sec == u64::MAX {
            return self.latency;
        }
        let secs = bytes as f64 / self.bandwidth_bytes_per_sec as f64;
        self.latency + Duration::from_secs_f64(secs)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::switch_100mbps()
    }
}

/// Byte/message counters for one direction of a link.
#[derive(Debug, Default)]
pub struct LinkCounters {
    bytes: AtomicU64,
    messages: AtomicU64,
}

impl LinkCounters {
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    fn record(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a message sent over a link whose sender does not hold the
    /// counted [`LinkSender`] half (the coordinator's request channels).
    pub fn record_send(&self, bytes: u64) {
        self.record(bytes);
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The frame is lost on the wire (bytes counted, never delivered).
    DropFrame,
    /// The frame is delivered twice.
    DuplicateFrame,
    /// The frame's leading byte is flipped, guaranteeing a decode failure
    /// at the receiver (the flip sets the high bit of the message tag).
    CorruptFrame,
    /// Delivery is delayed by the given number of milliseconds.
    DelayFrameMillis(u64),
    /// The worker thread exits (simulated machine crash) upon receiving
    /// its nth request, before answering any of its fragments.
    KillWorker,
    /// The worker panics while evaluating its nth request's first fragment
    /// task (exercises the `catch_unwind` supervisor).
    PanicWorker,
}

/// Which direction of a coordinator↔worker link a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDirection {
    CoordinatorToWorker,
    WorkerToCoordinator,
}

/// A fault pinned to the nth frame (1-based) of one link direction of one
/// machine. For [`FaultAction::KillWorker`] / [`FaultAction::PanicWorker`],
/// `nth` counts the worker's received *requests* rather than frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFault {
    pub machine: usize,
    pub direction: LinkDirection,
    pub nth: u64,
    pub action: FaultAction,
}

/// A deterministic, seeded schedule of link and worker faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<LinkFault>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Attach an arbitrary fault.
    pub fn with_fault(mut self, fault: LinkFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Drop the nth frame on one direction of machine `m`'s link.
    pub fn drop_frame(self, m: usize, direction: LinkDirection, nth: u64) -> Self {
        self.with_fault(LinkFault { machine: m, direction, nth, action: FaultAction::DropFrame })
    }

    /// Deliver the nth frame on one direction of machine `m`'s link twice.
    pub fn duplicate_frame(self, m: usize, direction: LinkDirection, nth: u64) -> Self {
        self.with_fault(LinkFault {
            machine: m,
            direction,
            nth,
            action: FaultAction::DuplicateFrame,
        })
    }

    /// Corrupt the nth frame on one direction of machine `m`'s link.
    pub fn corrupt_frame(self, m: usize, direction: LinkDirection, nth: u64) -> Self {
        self.with_fault(LinkFault { machine: m, direction, nth, action: FaultAction::CorruptFrame })
    }

    /// Delay the nth frame on one direction of machine `m`'s link.
    pub fn delay_frame(self, m: usize, direction: LinkDirection, nth: u64, millis: u64) -> Self {
        self.with_fault(LinkFault {
            machine: m,
            direction,
            nth,
            action: FaultAction::DelayFrameMillis(millis),
        })
    }

    /// Kill worker `m`'s thread on its nth received request.
    pub fn kill_worker(self, m: usize, nth_request: u64) -> Self {
        self.with_fault(LinkFault {
            machine: m,
            direction: LinkDirection::CoordinatorToWorker,
            nth: nth_request,
            action: FaultAction::KillWorker,
        })
    }

    /// Panic inside worker `m`'s evaluation of its nth received request.
    pub fn panic_worker(self, m: usize, nth_request: u64) -> Self {
        self.with_fault(LinkFault {
            machine: m,
            direction: LinkDirection::CoordinatorToWorker,
            nth: nth_request,
            action: FaultAction::PanicWorker,
        })
    }

    /// The request ordinal on which worker `m` should crash, if any.
    pub fn kill_request_for(&self, m: usize) -> Option<u64> {
        self.faults
            .iter()
            .find(|f| f.machine == m && f.action == FaultAction::KillWorker)
            .map(|f| f.nth)
    }

    /// The request ordinal on which worker `m` should panic, if any.
    pub fn panic_request_for(&self, m: usize) -> Option<u64> {
        self.faults
            .iter()
            .find(|f| f.machine == m && f.action == FaultAction::PanicWorker)
            .map(|f| f.nth)
    }

    /// Materialize the runtime injector for one direction of machine `m`'s
    /// link, or `None` when no frame fault targets it (fault-free links pay
    /// zero overhead).
    pub fn injector_for(&self, m: usize, direction: LinkDirection) -> Option<Arc<FaultInjector>> {
        let faults: Vec<(u64, FaultAction)> = self
            .faults
            .iter()
            .filter(|f| {
                f.machine == m
                    && f.direction == direction
                    && !matches!(f.action, FaultAction::KillWorker | FaultAction::PanicWorker)
            })
            .map(|f| (f.nth, f.action))
            .collect();
        if faults.is_empty() {
            return None;
        }
        Some(Arc::new(FaultInjector {
            counter: AtomicU64::new(0),
            faults,
            seed: self.seed ^ ((m as u64) << 1) ^ (direction as u64),
        }))
    }
}

/// What a fault injector decided to do with one frame.
#[derive(Debug)]
pub enum FrameFate {
    /// Deliver these frames (normally one; two when duplicated; a corrupted
    /// or delayed frame also lands here).
    Deliver(Vec<Bytes>),
    /// The frame was lost on the wire; its byte length for accounting.
    Dropped(u64),
}

/// Per-link runtime fault state: a frame counter plus the faults scheduled
/// for this link, applied deterministically.
#[derive(Debug)]
pub struct FaultInjector {
    counter: AtomicU64,
    faults: Vec<(u64, FaultAction)>,
    seed: u64,
}

impl FaultInjector {
    /// Admit one outgoing frame, applying the first fault scheduled for its
    /// ordinal (1-based), if any.
    pub fn admit(&self, frame: Bytes) -> FrameFate {
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        let action = self.faults.iter().find(|(nth, _)| *nth == n).map(|(_, a)| *a);
        match action {
            None => FrameFate::Deliver(vec![frame]),
            Some(FaultAction::DropFrame) => FrameFate::Dropped(frame.len() as u64),
            Some(FaultAction::DuplicateFrame) => FrameFate::Deliver(vec![frame.clone(), frame]),
            Some(FaultAction::CorruptFrame) => {
                let mut corrupted = BytesMut::from(&frame[..]);
                if !corrupted.is_empty() {
                    // Setting the tag's high bit guarantees the receiver sees
                    // an invalid message tag rather than a silently altered
                    // payload; the seed varies the low bits.
                    corrupted[0] ^= 0x80 | (self.seed.wrapping_add(n) as u8 & 0x7f) | 0x01;
                }
                FrameFate::Deliver(vec![corrupted.freeze()])
            }
            Some(FaultAction::DelayFrameMillis(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                FrameFate::Deliver(vec![frame])
            }
            // Worker lifecycle faults are enacted inside the worker loop,
            // never at the link layer.
            Some(FaultAction::KillWorker) | Some(FaultAction::PanicWorker) => {
                FrameFate::Deliver(vec![frame])
            }
        }
    }
}

/// The sending half of a counted link, optionally routed through a fault
/// injector.
#[derive(Debug, Clone)]
pub struct LinkSender {
    tx: Sender<Bytes>,
    counters: Arc<LinkCounters>,
    faults: Option<Arc<FaultInjector>>,
}

impl LinkSender {
    /// Send a frame, counting its bytes. Returns false if the peer is gone.
    /// Injected faults may drop, duplicate, corrupt, or delay the frame;
    /// dropped frames still count as sent (the wire consumed them).
    pub fn send(&self, frame: Bytes) -> bool {
        let frames = match &self.faults {
            None => vec![frame],
            Some(inj) => match inj.admit(frame) {
                FrameFate::Deliver(frames) => frames,
                FrameFate::Dropped(len) => {
                    self.counters.record(len);
                    return true;
                }
            },
        };
        for f in frames {
            self.counters.record(f.len() as u64);
            if self.tx.send(f).is_err() {
                return false;
            }
        }
        true
    }

    pub fn counters(&self) -> &Arc<LinkCounters> {
        &self.counters
    }

    /// A copy of this sender routed through `faults` (per-machine injection
    /// on the shared worker→coordinator channel).
    pub fn with_faults(&self, faults: Option<Arc<FaultInjector>>) -> LinkSender {
        LinkSender { tx: self.tx.clone(), counters: Arc::clone(&self.counters), faults }
    }
}

/// Create a counted link; returns the sender, the raw receiver, and the
/// shared counters.
pub fn counted_link() -> (LinkSender, Receiver<Bytes>, Arc<LinkCounters>) {
    let (tx, rx) = unbounded();
    let counters = Arc::new(LinkCounters::default());
    (LinkSender { tx, counters: Arc::clone(&counters), faults: None }, rx, counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_bytes_and_messages() {
        let (tx, rx, counters) = counted_link();
        assert!(tx.send(Bytes::from_static(b"hello")));
        assert!(tx.send(Bytes::from_static(b"world!!")));
        assert_eq!(counters.bytes(), 12);
        assert_eq!(counters.messages(), 2);
        assert_eq!(rx.recv().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(rx.recv().unwrap(), Bytes::from_static(b"world!!"));
    }

    #[test]
    fn send_to_dropped_receiver_reports_failure_but_counts() {
        let (tx, rx, counters) = counted_link();
        drop(rx);
        assert!(!tx.send(Bytes::from_static(b"x")));
        assert_eq!(counters.bytes(), 1);
    }

    #[test]
    fn network_model_transfer_time() {
        let m = NetworkModel { latency: Duration::from_millis(1), bandwidth_bytes_per_sec: 1000 };
        assert_eq!(m.transfer_time(0), Duration::from_millis(1));
        assert_eq!(m.transfer_time(1000), Duration::from_millis(1) + Duration::from_secs(1));
        let fast = NetworkModel::instant();
        assert_eq!(fast.transfer_time(u64::MAX / 2), Duration::ZERO);
    }

    #[test]
    fn fault_plan_drops_duplicates_and_corrupts_deterministically() {
        let plan = FaultPlan::new(42)
            .drop_frame(0, LinkDirection::WorkerToCoordinator, 1)
            .duplicate_frame(0, LinkDirection::WorkerToCoordinator, 2)
            .corrupt_frame(0, LinkDirection::WorkerToCoordinator, 3);
        let inj = plan.injector_for(0, LinkDirection::WorkerToCoordinator).unwrap();
        let frame = Bytes::from_static(b"\x00abc");
        match inj.admit(frame.clone()) {
            FrameFate::Dropped(4) => {}
            other => panic!("expected drop, got {other:?}"),
        }
        match inj.admit(frame.clone()) {
            FrameFate::Deliver(v) => assert_eq!(v.len(), 2),
            other => panic!("expected duplicate, got {other:?}"),
        }
        match inj.admit(frame.clone()) {
            FrameFate::Deliver(v) => {
                assert_eq!(v.len(), 1);
                assert_ne!(v[0], frame);
                assert!(v[0][0] & 0x80 != 0, "corruption must poison the tag byte");
            }
            other => panic!("expected corrupted delivery, got {other:?}"),
        }
        // Fourth frame onward is untouched.
        match inj.admit(frame.clone()) {
            FrameFate::Deliver(v) => assert_eq!(v, vec![frame]),
            other => panic!("expected clean delivery, got {other:?}"),
        }
    }

    #[test]
    fn fault_plan_scopes_injectors_per_link() {
        let plan = FaultPlan::new(7)
            .drop_frame(1, LinkDirection::CoordinatorToWorker, 1)
            .kill_worker(2, 3)
            .panic_worker(0, 1);
        assert!(plan.injector_for(0, LinkDirection::CoordinatorToWorker).is_none());
        assert!(plan.injector_for(1, LinkDirection::WorkerToCoordinator).is_none());
        assert!(plan.injector_for(1, LinkDirection::CoordinatorToWorker).is_some());
        // Worker lifecycle faults never become link injectors.
        assert!(plan.injector_for(2, LinkDirection::CoordinatorToWorker).is_none());
        assert_eq!(plan.kill_request_for(2), Some(3));
        assert_eq!(plan.kill_request_for(0), None);
        assert_eq!(plan.panic_request_for(0), Some(1));
    }

    #[test]
    fn faulty_sender_counts_dropped_bytes_as_sent() {
        let plan = FaultPlan::new(1).drop_frame(0, LinkDirection::WorkerToCoordinator, 1);
        let (tx, rx, counters) = counted_link();
        let tx = tx.with_faults(plan.injector_for(0, LinkDirection::WorkerToCoordinator));
        assert!(tx.send(Bytes::from_static(b"lost")));
        assert!(tx.send(Bytes::from_static(b"kept")));
        assert_eq!(counters.bytes(), 8, "dropped frames still consumed the wire");
        assert_eq!(rx.recv().unwrap(), Bytes::from_static(b"kept"));
        assert!(rx.try_recv().is_err(), "dropped frame never delivered");
    }

    #[test]
    fn paper_switch_is_12_5_mbytes() {
        let m = NetworkModel::switch_100mbps();
        // 12.5 MB should take ~1 second plus latency.
        let t = m.transfer_time(12_500_000);
        assert!(t >= Duration::from_secs(1));
        assert!(t < Duration::from_millis(1100));
    }
}
