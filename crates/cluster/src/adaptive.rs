//! Latency-aware batch-window controller (adaptive streaming dispatch).
//!
//! Fixed batching windows (`DISKS_BATCH=<n>`) trade latency for throughput
//! statically: a large window amortizes frame overhead but holds early
//! queries hostage to the merge, a small one ships promptly but pays a
//! round-trip per query. The [`WindowController`] picks the window
//! dynamically, AIMD-style — the classic congestion-control shape, applied
//! to batching:
//!
//! * **Additive increase** — while a backlog of admitted queries is waiting
//!   (the stream is arriving faster than windows drain) and the observed
//!   per-query p99 evaluation latency stays under the target, the window grows
//!   by a quarter of its size (at least 1) per closed window.
//! * **Multiplicative decrease** — when p99 degrades past the target, the
//!   window halves immediately. Latency recovers in one decision instead of
//!   bleeding across many windows.
//!
//! The latency signal is split in two. Each completed query reports its
//! *service* latency (window dispatch → last fragment response) and its
//! *evaluation* latency (the worker-reported time of its slowest
//! fragment); the difference is queue wait — time spent behind earlier
//! windows and on the wire. The AIMD decision keys on the **evaluation**
//! p99: under a deep backlog, service latency includes the whole queue
//! wait, which saturates any fixed p99 target and would pin the window at
//! minimum exactly when batching helps most. Queue wait is retained in its
//! own ring ([`WindowController::queue_wait_p99`]) so saturation stays
//! observable without steering the window. The full per-window trace is
//! retained for offline inspection (`Cluster::window_trace`, surfaced by
//! the throughput benchmark).

use std::collections::VecDeque;
use std::time::Duration;

/// Hard bounds of the controller's window, independent of configuration:
/// a window of 1 is unbatched dispatch, 256 is far past the point where
/// per-frame overhead amortization flattens.
const MIN_WINDOW: usize = 1;
const MAX_WINDOW: usize = 256;

/// Per-query latency samples retained for the p99 estimates. Small enough
/// to recompute per window, large enough to smooth single-query spikes.
const SAMPLE_RING: usize = 256;

/// AIMD controller for the cross-query batching window.
#[derive(Debug)]
pub struct WindowController {
    window: usize,
    target_p99: Duration,
    /// Evaluation latencies (µs) — the AIMD decision signal.
    samples: VecDeque<u64>,
    /// Queue-wait latencies (µs, service − evaluation) — introspection
    /// only, never a halving trigger.
    queue_wait: VecDeque<u64>,
    trace: Vec<u32>,
}

fn ring_p99(ring: &VecDeque<u64>) -> Option<Duration> {
    if ring.is_empty() {
        return None;
    }
    let mut v: Vec<u64> = ring.iter().copied().collect();
    v.sort_unstable();
    let idx = ((v.len() * 99) / 100).min(v.len() - 1);
    Some(Duration::from_micros(v[idx]))
}

impl WindowController {
    /// A controller starting at `initial` (clamped to `[1, 256]`) that
    /// shrinks whenever observed p99 evaluation latency exceeds
    /// `target_p99`.
    pub fn new(initial: usize, target_p99: Duration) -> Self {
        WindowController {
            window: initial.clamp(MIN_WINDOW, MAX_WINDOW),
            target_p99,
            samples: VecDeque::with_capacity(SAMPLE_RING),
            queue_wait: VecDeque::with_capacity(SAMPLE_RING),
            trace: Vec::new(),
        }
    }

    /// The window size the next batch should close at.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Record one query's latency split: `service` is window dispatch →
    /// last fragment response, `eval` the worker-reported evaluation time
    /// of its slowest fragment. Evaluation feeds the AIMD decision ring;
    /// the queue wait (`service − eval`) goes to its own ring so backlog
    /// depth never saturates the halving signal.
    pub fn observe(&mut self, service: Duration, eval: Duration) {
        if self.samples.len() == SAMPLE_RING {
            self.samples.pop_front();
        }
        self.samples.push_back(eval.as_micros() as u64);
        if self.queue_wait.len() == SAMPLE_RING {
            self.queue_wait.pop_front();
        }
        self.queue_wait.push_back(service.saturating_sub(eval).as_micros() as u64);
    }

    /// Current p99 evaluation latency over the sample ring (`None` before
    /// any sample). The ring is small, so a per-window sort is cheaper
    /// than maintaining a sketch.
    pub fn p99(&self) -> Option<Duration> {
        ring_p99(&self.samples)
    }

    /// Current p99 queue wait (service minus evaluation) over the sample
    /// ring (`None` before any sample).
    pub fn queue_wait_p99(&self) -> Option<Duration> {
        ring_p99(&self.queue_wait)
    }

    /// AIMD decision point, called once per closed window with the size it
    /// closed at and the number of admitted queries still waiting behind it.
    pub fn on_window_closed(&mut self, closed_size: usize, backlog: usize) {
        match self.p99() {
            Some(p99) if p99 > self.target_p99 => {
                self.window = (self.window / 2).max(MIN_WINDOW);
            }
            _ => {
                // Grow only under pressure: an idle stream keeps its window,
                // so a latency-sensitive trickle is never over-batched.
                if backlog >= self.window && closed_size >= self.window {
                    self.window = (self.window + (self.window / 4).max(1)).min(MAX_WINDOW);
                }
            }
        }
        self.trace.push(self.window as u32);
    }

    /// Window size after each closed window, in close order.
    pub fn trace(&self) -> &[u32] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TARGET: Duration = Duration::from_millis(10);

    fn feed(c: &mut WindowController, micros: u64, n: usize) {
        for _ in 0..n {
            // Service == eval: no queue wait, the decision ring sees `micros`.
            c.observe(Duration::from_micros(micros), Duration::from_micros(micros));
        }
    }

    #[test]
    fn grows_additively_under_backlog_with_healthy_latency() {
        let mut c = WindowController::new(16, TARGET);
        feed(&mut c, 1_000, 32); // well under target
        c.on_window_closed(16, 500);
        assert_eq!(c.window(), 20, "16 + 16/4");
        c.on_window_closed(20, 480);
        assert_eq!(c.window(), 25, "20 + 20/4");
        assert_eq!(c.trace(), &[20, 25]);
    }

    #[test]
    fn holds_without_backlog() {
        let mut c = WindowController::new(16, TARGET);
        feed(&mut c, 1_000, 32);
        c.on_window_closed(3, 0); // trickle: window closed early, nothing waiting
        assert_eq!(c.window(), 16);
    }

    #[test]
    fn halves_when_p99_degrades() {
        let mut c = WindowController::new(64, TARGET);
        feed(&mut c, 50_000, 32); // 5× over target
        c.on_window_closed(64, 500);
        assert_eq!(c.window(), 32);
        c.on_window_closed(32, 500);
        assert_eq!(c.window(), 16);
    }

    #[test]
    fn recovers_after_latency_improves() {
        let mut c = WindowController::new(64, TARGET);
        feed(&mut c, 50_000, 16);
        c.on_window_closed(64, 500);
        assert_eq!(c.window(), 32);
        // Healthy samples push the spike out of the ring.
        feed(&mut c, 100, SAMPLE_RING);
        c.on_window_closed(32, 500);
        assert_eq!(c.window(), 40);
    }

    #[test]
    fn clamps_to_bounds() {
        let mut c = WindowController::new(4096, TARGET);
        assert_eq!(c.window(), MAX_WINDOW);
        feed(&mut c, 1_000, 8);
        c.on_window_closed(MAX_WINDOW, 10_000);
        assert_eq!(c.window(), MAX_WINDOW);

        let mut c = WindowController::new(2, TARGET);
        feed(&mut c, 50_000, 8);
        c.on_window_closed(2, 500);
        assert_eq!(c.window(), MIN_WINDOW);
        c.on_window_closed(1, 500);
        assert_eq!(c.window(), MIN_WINDOW, "never below 1");
    }

    #[test]
    fn p99_is_none_without_samples_and_tracks_the_tail() {
        let mut c = WindowController::new(16, TARGET);
        assert!(c.p99().is_none());
        feed(&mut c, 100, 99);
        c.observe(Duration::from_micros(9_999), Duration::from_micros(9_999));
        assert_eq!(c.p99(), Some(Duration::from_micros(9_999)));
    }

    #[test]
    fn queue_wait_does_not_trigger_halving() {
        let mut c = WindowController::new(64, TARGET);
        assert!(c.queue_wait_p99().is_none());
        // Deep backlog: queries wait 50 ms behind earlier windows but
        // evaluate in 1 ms. Service p99 is 5× over target; eval p99 is not.
        for _ in 0..32 {
            c.observe(Duration::from_micros(51_000), Duration::from_micros(1_000));
        }
        c.on_window_closed(64, 500);
        assert_eq!(c.window(), 80, "backlog wait must not halve the window");
        assert_eq!(c.p99(), Some(Duration::from_micros(1_000)));
        assert_eq!(
            c.queue_wait_p99(),
            Some(Duration::from_micros(50_000)),
            "the wait stays observable in its own ring"
        );
    }
}
