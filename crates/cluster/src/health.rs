//! Graded, per-machine failure detection (DESIGN.md §6j).
//!
//! The paper's Theorem 6 load-balance argument assumes every machine answers
//! at its expected service rate; the cluster's original failure signal was
//! binary (`worker_is_dead` = link down or thread dead), so a merely *slow*
//! machine stalled every gather until the silence deadline even when warm
//! replicas could answer. This module replaces that bit with a phi-accrual
//! style suspicion score per machine, graded into three states:
//!
//! * **Healthy** — suspicion below `suspect_threshold`; routed normally.
//! * **Suspect** — suspicion in `[suspect, quarantine)`; still routable but
//!   deprioritized as a hedge target and by `least_suspect` ordering.
//! * **Quarantined** — suspicion crossed `quarantine_threshold`; softly
//!   removed from `RoutePolicy::LeastLoaded` replica selection and probed
//!   under jittered backoff until `probation_successes` consecutive probe
//!   acks reinstate it.
//!
//! The score is fed by *proof-of-life arrivals* (TCP keepalives exported by
//! the ingress pump, plus every decoded response frame on either transport)
//! and by per-frame service times. Suspicion is the silence since the last
//! arrival **or dispatch** (idle silence is not evidence of failure — no
//! traffic is expected from an idle worker), scaled by an EWMA of observed
//! inter-arrival times floored at the keepalive interval, plus a bounded
//! slowness penalty for machines whose service-time EWMA is far above the
//! cluster median. Silence strictly grows the score (monotone in time, see
//! the proptests); regular arrivals reset it toward zero.
//!
//! Everything here is parameterized on a `u64` microsecond clock rather than
//! `Instant` so the scoring function is pure and property-testable.

use std::time::Duration;

use crate::overload::{backoff_delay, splitmix64};

/// Hedge activation mode (`DISKS_HEDGE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HedgeMode {
    /// No speculative re-dispatch (bit-identical to the pre-health cluster).
    #[default]
    Off,
    /// Hedge any slot still missing answers `DISKS_HEDGE_MS` after dispatch.
    Fixed,
    /// Hedge past [`HEDGE_P99_MULTIPLE`] × the observed evaluation p99,
    /// floored at `DISKS_HEDGE_MS` (the floor also covers the cold start
    /// before a p99 exists).
    Adaptive,
}

/// Adaptive hedge deadline = this multiple of the evaluation p99 tracked by
/// the `WindowController` / service-latency ring.
pub const HEDGE_P99_MULTIPLE: u32 = 4;

/// Graded machine health (replaces the binary `worker_is_dead`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    #[default]
    Healthy,
    Suspect,
    Quarantined,
}

/// Tuning for the suspicion score and quarantine probation.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Expected proof-of-life cadence; floors the inter-arrival scale so a
    /// burst of back-to-back frames cannot make the detector hypersensitive.
    /// Wired to `HeartbeatConfig::interval` by the cluster.
    pub expected_interval: Duration,
    /// Suspicion at which a machine turns Suspect.
    pub suspect_threshold: f64,
    /// Suspicion at which a machine is quarantined (roughly "silent for this
    /// many expected intervals").
    pub quarantine_threshold: f64,
    /// Service-time EWMA beyond `slow_factor ×` the cluster median starts
    /// accruing the (bounded) slowness penalty.
    pub slow_factor: f64,
    /// Consecutive probe acks required to reinstate a quarantined machine.
    pub probation_successes: u32,
    /// Base delay between probes to a quarantined machine (jittered,
    /// exponential — same shape as retry backoff).
    pub probe_backoff: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            expected_interval: Duration::from_millis(100),
            suspect_threshold: 4.0,
            quarantine_threshold: 8.0,
            slow_factor: 4.0,
            probation_successes: 2,
            probe_backoff: Duration::from_millis(50),
        }
    }
}

/// EWMA smoothing factor for inter-arrival and service-time tracking.
const EWMA_ALPHA: f64 = 0.2;

#[derive(Debug, Clone, Default)]
struct Tracker {
    /// Epoch micros of the last proof of life (or dispatch — see
    /// `observe_dispatch`); `None` until the machine shows any activity.
    silence_from: Option<u64>,
    /// Epoch micros of the last *arrival* used for interval estimation.
    last_arrival: Option<u64>,
    /// EWMA of inter-arrival micros (0 = no samples yet).
    mean_interval: f64,
    /// EWMA of squared deviation of inter-arrival micros.
    var_interval: f64,
    /// EWMA of per-frame service micros (0 = no samples yet).
    service_ewma: f64,
    /// Whether outbound traffic (dispatch or probe) is awaiting an answer.
    /// Only the *first* unanswered send restarts the silence clock — later
    /// sends to a still-silent machine must not reset it, or a machine
    /// receiving steady dispatches while answering nothing would never
    /// accrue suspicion.
    expecting: bool,
    state: HealthState,
    /// Consecutive probe acks while quarantined.
    probe_streak: u32,
    /// Probes sent during the current quarantine (drives backoff).
    probe_attempts: u32,
    /// Epoch micros before which no probe should be sent.
    next_probe: u64,
}

/// Net state transitions produced by one [`HealthBoard::refresh`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthDelta {
    pub quarantines: u64,
    pub reinstatements: u64,
}

/// Per-machine [`Tracker`]s plus the cluster-wide refresh/probe logic.
#[derive(Debug, Clone)]
pub struct HealthBoard {
    trackers: Vec<Tracker>,
    cfg: HealthConfig,
}

impl HealthBoard {
    pub fn new(machines: usize, cfg: HealthConfig) -> Self {
        HealthBoard { trackers: vec![Tracker::default(); machines], cfg }
    }

    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Record a proof-of-life arrival (keepalive or decoded frame) at
    /// `now_us`. Replayed or out-of-order timestamps are ignored so polling
    /// the same pump-exported timestamp twice cannot corrupt the EWMA.
    pub fn observe_arrival(&mut self, m: usize, now_us: u64) {
        let t = &mut self.trackers[m];
        if let Some(last) = t.last_arrival {
            if now_us <= last {
                return;
            }
            let x = (now_us - last) as f64;
            if t.mean_interval == 0.0 {
                t.mean_interval = x;
            } else {
                let d = x - t.mean_interval;
                t.mean_interval += EWMA_ALPHA * d;
                t.var_interval = (1.0 - EWMA_ALPHA) * t.var_interval + EWMA_ALPHA * d * d;
            }
        }
        t.last_arrival = Some(now_us);
        t.silence_from = Some(t.silence_from.map_or(now_us, |s| s.max(now_us)));
        t.expecting = false;
    }

    /// Start the silence clock at dispatch time *without* feeding the
    /// interval EWMA: silence only counts while an answer (or keepalive) is
    /// actually expected, so an idle cluster never accrues suspicion. Only
    /// the first dispatch since the last arrival starts the clock —
    /// re-dispatching to a silent machine is not proof of its life.
    pub fn observe_dispatch(&mut self, m: usize, now_us: u64) {
        let t = &mut self.trackers[m];
        if !t.expecting {
            t.expecting = true;
            t.silence_from = Some(t.silence_from.map_or(now_us, |s| s.max(now_us)));
        }
    }

    /// Fold one per-frame service time into the machine's slowness EWMA.
    pub fn observe_service(&mut self, m: usize, micros: u64) {
        let t = &mut self.trackers[m];
        let x = micros as f64;
        if t.service_ewma == 0.0 {
            t.service_ewma = x;
        } else {
            t.service_ewma += EWMA_ALPHA * (x - t.service_ewma);
        }
    }

    /// Median service-time EWMA over machines with at least one sample.
    fn median_service(&self) -> Option<f64> {
        let mut v: Vec<f64> =
            self.trackers.iter().map(|t| t.service_ewma).filter(|&s| s > 0.0).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(f64::total_cmp);
        Some(v[v.len() / 2])
    }

    /// Phi-accrual-style suspicion score for machine `m` at `now_us`.
    ///
    /// `silence / scale + slowness`, where `scale` is the inter-arrival EWMA
    /// plus two standard deviations, floored at the expected keepalive
    /// interval; `slowness` is bounded by `suspect_threshold` so a slow (but
    /// alive) machine can be deprioritized yet never quarantined on service
    /// times alone. Monotone non-decreasing in `now_us` by construction.
    pub fn suspicion(&self, m: usize, now_us: u64) -> f64 {
        let t = &self.trackers[m];
        let Some(from) = t.silence_from else { return 0.0 };
        let silence = now_us.saturating_sub(from) as f64;
        let floor = self.cfg.expected_interval.as_micros().max(1) as f64;
        let scale = (t.mean_interval + 2.0 * t.var_interval.sqrt()).max(floor);
        let mut phi = silence / scale;
        if t.service_ewma > 0.0 {
            if let Some(median) = self.median_service() {
                let allowed = self.cfg.slow_factor * median;
                if t.service_ewma > allowed && allowed > 0.0 {
                    phi += (t.service_ewma / allowed).min(self.cfg.suspect_threshold);
                }
            }
        }
        phi
    }

    pub fn state(&self, m: usize) -> HealthState {
        self.trackers[m].state
    }

    pub fn is_quarantined(&self, m: usize) -> bool {
        self.trackers[m].state == HealthState::Quarantined
    }

    /// The candidate with the lowest `(suspicion, id)` — the degraded-mode
    /// choice when a fragment has no un-quarantined host.
    pub fn least_suspect(&self, candidates: &[usize], now_us: u64) -> Option<usize> {
        candidates.iter().copied().min_by(|&a, &b| {
            self.suspicion(a, now_us).total_cmp(&self.suspicion(b, now_us)).then(a.cmp(&b))
        })
    }

    /// Re-grade every machine at `now_us`, returning the number of
    /// quarantine entries and probation reinstatements this pass produced.
    pub fn refresh(&mut self, now_us: u64) -> HealthDelta {
        let mut delta = HealthDelta::default();
        for m in 0..self.trackers.len() {
            let phi = self.suspicion(m, now_us);
            let cfg_probation = self.cfg.probation_successes;
            let (suspect, quarantine) = (self.cfg.suspect_threshold, self.cfg.quarantine_threshold);
            let t = &mut self.trackers[m];
            match t.state {
                HealthState::Quarantined => {
                    if t.probe_streak >= cfg_probation && phi < suspect {
                        t.state = HealthState::Healthy;
                        t.probe_streak = 0;
                        t.probe_attempts = 0;
                        delta.reinstatements += 1;
                    }
                }
                _ => {
                    if phi >= quarantine {
                        t.state = HealthState::Quarantined;
                        t.probe_streak = 0;
                        t.probe_attempts = 0;
                        t.next_probe = now_us;
                        delta.quarantines += 1;
                    } else if phi >= suspect {
                        t.state = HealthState::Suspect;
                    } else {
                        t.state = HealthState::Healthy;
                    }
                }
            }
        }
        delta
    }

    /// Quarantined machines whose next probe is due at `now_us`.
    pub fn due_probes(&self, now_us: u64) -> Vec<usize> {
        (0..self.trackers.len())
            .filter(|&m| {
                self.trackers[m].state == HealthState::Quarantined
                    && self.trackers[m].next_probe <= now_us
            })
            .collect()
    }

    /// Record a probe send and schedule the next one under jittered
    /// exponential backoff (`seed` keeps the jitter deterministic).
    pub fn note_probe_sent(&mut self, m: usize, now_us: u64, seed: u64) {
        let backoff = self.cfg.probe_backoff;
        let t = &mut self.trackers[m];
        let delay = backoff_delay(backoff, t.probe_attempts, splitmix64(seed ^ (m as u64)));
        t.probe_attempts = t.probe_attempts.saturating_add(1);
        t.next_probe = now_us + delay.as_micros() as u64;
        // The probe is outbound traffic expecting an answer: if nothing is
        // already awaited, the ack window is measured from the probe.
        if !t.expecting {
            t.expecting = true;
            t.silence_from = Some(t.silence_from.map_or(now_us, |s| s.max(now_us)));
        }
    }

    /// A probe ack arrived: proof of life plus one probation success.
    pub fn note_probe_ack(&mut self, m: usize, now_us: u64) {
        self.observe_arrival(m, now_us);
        let t = &mut self.trackers[m];
        if t.state == HealthState::Quarantined {
            t.probe_streak = t.probe_streak.saturating_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> HealthBoard {
        HealthBoard::new(3, HealthConfig::default())
    }

    const MS: u64 = 1_000;

    #[test]
    fn idle_machines_never_accrue_suspicion() {
        let b = board();
        assert_eq!(b.suspicion(0, 10_000 * MS), 0.0);
        assert_eq!(b.state(0), HealthState::Healthy);
    }

    #[test]
    fn silence_after_dispatch_grows_to_quarantine() {
        let mut b = board();
        b.observe_dispatch(0, 0);
        assert!(b.suspicion(0, 100 * MS) < b.cfg.quarantine_threshold);
        let d = b.refresh(2_000 * MS);
        assert_eq!(b.state(0), HealthState::Quarantined);
        assert_eq!(d, HealthDelta { quarantines: 1, reinstatements: 0 });
        // Machines 1 and 2 never saw traffic: still healthy.
        assert_eq!(b.state(1), HealthState::Healthy);
    }

    #[test]
    fn regular_arrivals_keep_machine_healthy() {
        let mut b = board();
        for i in 0..50 {
            b.observe_arrival(0, i * 100 * MS);
        }
        assert!(b.suspicion(0, 50 * 100 * MS) < b.cfg.suspect_threshold);
        b.refresh(50 * 100 * MS);
        assert_eq!(b.state(0), HealthState::Healthy);
    }

    #[test]
    fn probation_reinstates_after_consecutive_acks() {
        let mut b = board();
        b.observe_dispatch(0, 0);
        b.refresh(5_000 * MS);
        assert!(b.is_quarantined(0));
        assert_eq!(b.due_probes(5_000 * MS), vec![0]);
        b.note_probe_sent(0, 5_000 * MS, 42);
        assert!(b.due_probes(5_000 * MS).is_empty(), "backoff spaces probes");
        b.note_probe_ack(0, 5_010 * MS);
        b.refresh(5_010 * MS);
        assert!(b.is_quarantined(0), "one ack is not probation");
        b.note_probe_sent(0, 5_100 * MS, 42);
        b.note_probe_ack(0, 5_110 * MS);
        let d = b.refresh(5_110 * MS);
        assert_eq!(b.state(0), HealthState::Healthy);
        assert_eq!(d, HealthDelta { quarantines: 0, reinstatements: 1 });
    }

    #[test]
    fn slowness_suspects_but_never_quarantines_alone() {
        let mut b = board();
        // Keep all machines' silence clocks fresh, but machine 2's service
        // times 100× the others'.
        for m in 0..3 {
            b.observe_arrival(m, 0);
            b.observe_arrival(m, 100 * MS);
        }
        for _ in 0..32 {
            b.observe_service(0, 100);
            b.observe_service(1, 100);
            b.observe_service(2, 10_000);
        }
        b.refresh(100 * MS);
        assert_eq!(b.state(0), HealthState::Healthy);
        assert_eq!(b.state(2), HealthState::Suspect);
        assert!(b.suspicion(2, 100 * MS) < b.cfg.quarantine_threshold);
    }

    #[test]
    fn least_suspect_prefers_fresh_machines() {
        let mut b = board();
        b.observe_arrival(0, 0);
        b.observe_arrival(1, 900 * MS);
        assert_eq!(b.least_suspect(&[0, 1], 1_000 * MS), Some(1));
        assert_eq!(b.least_suspect(&[], 0), None);
    }

    #[test]
    fn replayed_pump_timestamp_is_idempotent() {
        let mut b = board();
        b.observe_arrival(0, 100 * MS);
        b.observe_arrival(0, 200 * MS);
        let before = b.suspicion(0, 300 * MS);
        b.observe_arrival(0, 200 * MS); // pump poll sees the same stamp again
        assert_eq!(b.suspicion(0, 300 * MS), before);
    }
}
