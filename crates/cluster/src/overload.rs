//! Overload control: one pressure gauge shared by cost-model admission,
//! bounded-queue backpressure, and brownout degradation.
//!
//! The coordinator is the single choke point of the share-nothing design
//! (every query fans out from it; Theorem 3 forbids any other path), which
//! makes it the one place overload can be controlled *before* work is
//! scheduled. The Theorem 5 cost model supplies the currency: each admitted
//! plan carries an estimated cost ([`disks_core::CostParams`]), the gauge
//! tracks how much estimated cost is queued or in flight per worker, and
//! all three control mechanisms read the same dial:
//!
//! 1. **Admission** — a query whose cost cannot fit the per-worker budget
//!    ([`ClusterConfig::cost_limit`]) is shed with a typed
//!    [`disks_core::QueryError::Overloaded`] carrying a `retry_after` that
//!    grows with the measured pressure. Shedding happens before any frame
//!    is encoded, so a shed query costs zero wire bytes.
//! 2. **Backpressure** — batched dispatch flushes its window early (a
//!    *queue pause*) rather than queueing more cost than the budget allows,
//!    and the bounded request channels fail fast (`try_send`) so a
//!    saturated worker queue is observed, counted, and waited out instead
//!    of silently absorbing unbounded frames.
//! 3. **Brownout** — above [`ClusterConfig::brownout`] of the budget the
//!    cluster degrades before it sheds: results may go partial
//!    (`allow_partial` semantics) and cache-cold queries are turned away
//!    while cached-slot queries keep flowing.
//!
//! Everything is deterministic: the gauge is plain coordinator-side state
//! (no clocks, no randomness), so a given stream against a given config
//! always sheds, pauses, and browns out identically.
//!
//! [`ClusterConfig::cost_limit`]: crate::ClusterConfig::cost_limit
//! [`ClusterConfig::brownout`]: crate::ClusterConfig::brownout

use std::cell::Cell;
use std::time::Duration;

/// Cumulative overload-control decisions over a cluster's lifetime,
/// exposed via `Cluster::overload_counters`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadCounters {
    /// Queries that passed cost admission (includes browned-out queries).
    pub admitted: u64,
    /// Queries shed with [`disks_core::QueryError::Overloaded`] before any
    /// dispatch.
    pub shed: u64,
    /// Queries served degraded (effective `allow_partial`) because the
    /// gauge was above the brownout threshold at dispatch time.
    pub browned_out: u64,
    /// Times batched dispatch flushed a window early because queueing the
    /// next query would exceed the per-worker cost budget.
    pub queue_pauses: u64,
    /// Times a worker's bounded request queue reported full on `try_send`
    /// and the coordinator had to wait for capacity.
    pub queue_full_events: u64,
    /// Initial-dispatch request frames sent (excludes retries, which are
    /// ledgered in `RecoveryCounters::retries`, and pre-warm frames, in
    /// `RecoveryCounters::prewarm_frames`). Together the three partition
    /// every coordinator→worker frame, so they reconcile exactly against
    /// `Cluster::link_message_totals`.
    pub dispatch_frames: u64,
    /// Histogram of `retry_after` values handed to shed queries, in log2
    /// millisecond buckets: `[<1ms, <2ms, <4ms, …, ≥64ms]`.
    pub retry_after_hist: [u64; 8],
}

/// The retry hint handed to a shed query: monotone (non-decreasing) in the
/// measured pressure, so the deeper the backlog a client hit, the longer it
/// is told to stay away. Pressure is the queued-cost : budget ratio — `1.0`
/// means the budget is exactly full; values above `1.0` occur when the
/// shed query itself would have overflowed an already-full budget.
pub fn retry_after(pressure: f64) -> Duration {
    const BASE: Duration = Duration::from_millis(1);
    const CAP: Duration = Duration::from_secs(1);
    let p = pressure.clamp(0.0, 1e6);
    let hinted = BASE.mul_f64(1.0 + 4.0 * p);
    hinted.min(CAP).max(BASE)
}

/// The shared dial: per-worker in-flight estimated cost versus the
/// configured budget. Every query fans out to every busy machine, so one
/// scalar *is* the per-worker bound — each worker's queue holds exactly the
/// frames of the queries charged here.
///
/// Coordinator-side single-threaded state (`Cell`), mutated at admission,
/// dispatch, and gather completion.
pub struct PressureGauge {
    /// Estimated-cost budget per worker; `0` disables overload control.
    cost_limit: u64,
    /// Fraction of the budget at which brownout degradation begins;
    /// `f64::INFINITY` disables brownout.
    brownout: f64,
    /// Estimated cost admitted and not yet gathered.
    in_flight: Cell<u64>,
    counters: Cell<OverloadCounters>,
}

impl PressureGauge {
    pub fn new(cost_limit: u64, brownout: f64) -> Self {
        PressureGauge {
            cost_limit,
            brownout,
            in_flight: Cell::new(0),
            counters: Cell::new(OverloadCounters::default()),
        }
    }

    /// Whether cost-model admission is active (`cost_limit > 0`).
    pub fn enabled(&self) -> bool {
        self.cost_limit > 0
    }

    /// The configured per-worker cost budget (0 = unlimited).
    pub fn cost_limit(&self) -> u64 {
        self.cost_limit
    }

    /// Measured pressure with `extra` cost hypothetically queued on top of
    /// the current in-flight cost: `(in_flight + extra) / cost_limit`.
    pub fn pressure_with(&self, extra: u64) -> f64 {
        if self.cost_limit == 0 {
            return 0.0;
        }
        (self.in_flight.get().saturating_add(extra)) as f64 / self.cost_limit as f64
    }

    /// Current measured pressure (0.0 when overload control is disabled).
    pub fn pressure(&self) -> f64 {
        self.pressure_with(0)
    }

    /// Whether queueing `extra` cost on top of the in-flight cost would
    /// exceed the budget (never true while overload control is disabled).
    pub fn would_overflow(&self, extra: u64) -> bool {
        self.enabled() && self.in_flight.get().saturating_add(extra) > self.cost_limit
    }

    /// Whether the brownout ladder is active at the given extra queued cost.
    pub fn brownout_at(&self, extra: u64) -> bool {
        self.enabled() && self.brownout.is_finite() && self.pressure_with(extra) >= self.brownout
    }

    /// Record a shed decision and compute its retry hint from the pressure
    /// the query observed (backlog it would have joined, plus itself).
    pub fn shed(&self, extra: u64, cost: u64) -> Duration {
        let hint = retry_after(self.pressure_with(extra.saturating_add(cost)));
        let mut c = self.counters.get();
        c.shed += 1;
        let ms = hint.as_millis() as u64;
        let bucket = (64 - u64::leading_zeros(ms.max(1)) - 1).min(7) as usize;
        c.retry_after_hist[bucket] += 1;
        self.counters.set(c);
        hint
    }

    /// Charge admitted cost to the in-flight gauge (dispatch time).
    pub fn charge(&self, cost: u64) {
        self.in_flight.set(self.in_flight.get().saturating_add(cost));
    }

    /// Release cost when its group's gather completes.
    pub fn release(&self, cost: u64) {
        self.in_flight.set(self.in_flight.get().saturating_sub(cost));
    }

    pub fn note_admitted(&self) {
        self.bump(|c| c.admitted += 1);
    }

    pub fn note_browned_out(&self) {
        self.bump(|c| c.browned_out += 1);
    }

    pub fn note_queue_pause(&self) {
        self.bump(|c| c.queue_pauses += 1);
    }

    pub fn note_queue_full(&self) {
        self.bump(|c| c.queue_full_events += 1);
    }

    pub fn note_dispatch_frames(&self, n: u64) {
        self.bump(|c| c.dispatch_frames += n);
    }

    pub fn counters(&self) -> OverloadCounters {
        self.counters.get()
    }

    fn bump(&self, f: impl FnOnce(&mut OverloadCounters)) {
        let mut c = self.counters.get();
        f(&mut c);
        self.counters.set(c);
    }
}

/// SplitMix64 — the standard 64-bit mixer; deterministic jitter source for
/// retry backoff (no RNG state to carry, no wall-clock seeding).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Exponential backoff with deterministic jitter for the `retry_index`-th
/// narrowed re-dispatch (1-based): `base · 2^(retry_index−1)` capped at
/// `16·base`, plus a seeded jitter in `[0, base/2]` so simultaneous
/// retries against one struggling worker de-synchronize — replayably.
pub(crate) fn backoff_delay(base: Duration, retry_index: u32, seed: u64) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let exp = retry_index.saturating_sub(1).min(4);
    let scaled = base.saturating_mul(1u32 << exp);
    let jitter_us = splitmix64(seed) % (base.as_micros() as u64 / 2 + 1);
    scaled + Duration::from_micros(jitter_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_monotone_and_bounded() {
        let mut last = Duration::ZERO;
        for i in 0..=4000 {
            let p = i as f64 / 100.0;
            let d = retry_after(p);
            assert!(d >= last, "retry_after not monotone at pressure {p}");
            assert!(d >= Duration::from_millis(1) && d <= Duration::from_secs(1));
            last = d;
        }
    }

    #[test]
    fn gauge_tracks_in_flight_and_pressure() {
        let g = PressureGauge::new(100, 0.75);
        assert!(g.enabled());
        assert_eq!(g.pressure(), 0.0);
        g.charge(50);
        assert!((g.pressure() - 0.5).abs() < 1e-9);
        assert!(!g.brownout_at(0));
        assert!(g.brownout_at(30), "50 + 30 = 80 ≥ 75% of 100");
        g.release(50);
        assert_eq!(g.pressure(), 0.0);
        // Release never underflows.
        g.release(1000);
        assert_eq!(g.pressure(), 0.0);
    }

    #[test]
    fn disabled_gauge_never_pressures_or_browns_out() {
        let g = PressureGauge::new(0, 0.5);
        g.charge(u64::MAX);
        assert_eq!(g.pressure(), 0.0);
        assert!(!g.brownout_at(u64::MAX));
        assert!(!g.enabled());
    }

    #[test]
    fn shed_counts_and_fills_the_histogram() {
        let g = PressureGauge::new(10, f64::INFINITY);
        // Deep backlog → long hint in a high bucket; empty backlog → short.
        let short = g.shed(0, 5);
        g.charge(10);
        let long = g.shed(2000, 5);
        assert!(long > short, "hint must grow with measured pressure");
        let c = g.counters();
        assert_eq!(c.shed, 2);
        assert_eq!(c.retry_after_hist.iter().sum::<u64>(), 2);
        assert!(c.retry_after_hist[7] >= 1, "deep-backlog shed lands in the top bucket");
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let base = Duration::from_millis(2);
        let a = backoff_delay(base, 1, 42);
        let b = backoff_delay(base, 1, 42);
        assert_eq!(a, b, "same seed → same delay");
        // Exponential growth up to the cap, jitter bounded by base/2.
        for i in 1..=8u32 {
            let d = backoff_delay(base, i, 7);
            let exp = base * (1 << i.saturating_sub(1).min(4));
            assert!(d >= exp && d <= exp + base / 2 + Duration::from_micros(1), "retry {i}: {d:?}");
        }
        // Different seeds de-synchronize.
        let spread: std::collections::HashSet<Duration> =
            (0..32).map(|s| backoff_delay(base, 1, s)).collect();
        assert!(spread.len() > 8, "jitter must actually vary: {} distinct", spread.len());
        assert_eq!(backoff_delay(Duration::ZERO, 3, 9), Duration::ZERO, "disabled → immediate");
    }
}
