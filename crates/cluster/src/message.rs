//! Wire protocol between the coordinator and the workers.
//!
//! Messages are encoded with the hand-written binary codec so the byte
//! counts reported in the communication experiments are exactly what a TCP
//! implementation would put on the wire (minus transport framing).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use disks_core::{ElidedSuperPlan, QueryCost, QueryError, QueryPlan, Ranked, SuperPlan, TopKQuery};
use disks_roadnet::codec::{Decode, Encode};
use disks_roadnet::{DecodeError, NodeId};

/// Coordinator → worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Evaluate a normalized query plan on hosted fragments. An empty
    /// `fragments` list means every fragment the worker hosts; a non-empty
    /// list narrows the task to just those fragments (retry re-dispatch
    /// after a fault). The plan was admitted by the coordinator, so workers
    /// assume its radii and locations are valid.
    Evaluate { query_id: u64, plan: QueryPlan, fragments: Vec<u32> },
    /// Evaluate a top-k group keyword query on hosted fragments (same
    /// narrowing rule as `Evaluate`).
    TopK { query_id: u64, query: TopKQuery, fragments: Vec<u32> },
    /// Evaluate a merged batch of query plans on hosted fragments in one
    /// round. Query `i` of the batch (0-based) has id `base + 1 + i`; the
    /// worker answers with one [`Response::BatchResults`] frame per hosted
    /// fragment, answers in batch order. Same fragment-narrowing rule as
    /// `Evaluate`.
    Batch { base: u64, plan: SuperPlan, fragments: Vec<u32> },
    /// Populate the worker's coverage cache with the listed slots before
    /// serving further traffic (sent to freshly respawned workers ahead of
    /// any retry re-delivery, so the replacement does not face a thundering
    /// herd of cache-cold misses). No response is produced. Same
    /// fragment-narrowing rule as `Evaluate`.
    Prewarm { slots: Vec<disks_core::DTerm>, fragments: Vec<u32> },
    /// A [`Request::Batch`] with known-cached slots elided to compact slot
    /// ids (same id ↔ spec binding for the cluster's lifetime). The worker
    /// resolves references against its slot directory; queries touching an
    /// unknown id are NACKed with [`QueryError::SlotUnknown`] and the
    /// coordinator re-dispatches them full-spec, so correctness never
    /// depends on the coordinator's cached-slot view being fresh.
    BatchRef { base: u64, plan: ElidedSuperPlan, fragments: Vec<u32> },
    /// Terminate the worker loop.
    Shutdown,
    /// Health-plane liveness probe of a quarantined machine: the worker
    /// answers immediately with a [`Response::ProbeAck`] echoing the nonce.
    /// Probes carry no query work and do not advance the worker's request
    /// ordinal (fault schedules keyed on "nth request" are unaffected by
    /// whether quarantine probing is enabled).
    Probe { nonce: u64 },
}

/// The encodable subset of [`QueryCost`] shipped back to the coordinator,
/// plus the worker's coverage-cache activity for the task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCost {
    pub alpha: u64,
    pub beta: u64,
    pub settled: u64,
    pub pushed: u64,
    pub coverage_nodes: u64,
    pub elapsed_micros: u64,
    /// Coverage-cache hits while serving this task.
    pub cache_hits: u64,
    /// Coverage-cache misses while serving this task.
    pub cache_misses: u64,
    /// Coverage-cache evictions triggered while serving this task.
    pub cache_evictions: u64,
    /// Coverage slots served from the batch-shared result map (computed or
    /// fetched once by an earlier query of the same batch). Always 0 on the
    /// single-query path; not counted as LRU hits so the cache ledger stays
    /// exact.
    pub batch_shared: u64,
    /// Coverages whose payload was below the cache's per-entry bookkeeping
    /// overhead and therefore skipped insertion (counted as misses too —
    /// they were computed; this field just explains why they never became
    /// hits).
    pub cache_bypassed: u64,
    /// Machine id of the replica that served this task. With replication
    /// disabled this is always the fragment's primary; with replication on,
    /// the coordinator uses it to attribute compute to the machine that
    /// actually did the work rather than the primary it would have guessed.
    pub replica: u64,
    /// Evaluator busy time (µs) attributed to this task: the summed
    /// wall-clock of the coverage computations charged to it across however
    /// many pool threads ran them. On the serial path this equals
    /// `elapsed_micros`; with the pool it can exceed wall-clock (that gap —
    /// busy vs elapsed — is the utilization signal). Timing, so values are
    /// nondeterministic; the field is fixed-width so frame *bytes* are not.
    pub busy_micros: u64,
    /// Log₂-µs histogram of per-slot evaluation latencies for the slots
    /// computed (not cache-served) for this task: bucket `i` counts slots
    /// whose evaluation took `[2^i, 2^{i+1})` µs (bucket 0 includes sub-µs,
    /// bucket 15 is open-ended). Populated by the worker pool; zero on the
    /// serial path, which does not time individual slots. Lets the
    /// coordinator attribute evaluation p99 to compute vs queueing.
    pub eval_hist: [u32; EVAL_HIST_BUCKETS],
}

/// Buckets in [`WireCost::eval_hist`].
pub const EVAL_HIST_BUCKETS: usize = 16;

/// The [`WireCost::eval_hist`] bucket for a per-slot evaluation latency.
pub fn eval_hist_bucket(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        (63 - micros.leading_zeros() as usize).min(EVAL_HIST_BUCKETS - 1)
    }
}

impl From<&QueryCost> for WireCost {
    fn from(c: &QueryCost) -> Self {
        WireCost {
            alpha: c.alpha as u64,
            beta: c.beta as u64,
            settled: c.settled as u64,
            pushed: c.pushed as u64,
            coverage_nodes: c.coverage_nodes as u64,
            elapsed_micros: c.elapsed.as_micros() as u64,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            batch_shared: 0,
            cache_bypassed: 0,
            replica: 0,
            busy_micros: c.elapsed.as_micros() as u64,
            eval_hist: [0; EVAL_HIST_BUCKETS],
        }
    }
}

/// Worker → coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Results for one fragment hosted by the worker.
    Results { query_id: u64, fragment: u32, nodes: Vec<NodeId>, cost: WireCost },
    /// Locally ranked top-k results for one fragment.
    TopKResults { query_id: u64, fragment: u32, ranked: Vec<Ranked>, cost: WireCost },
    /// The query failed on this worker, with the typed error encoded on the
    /// wire — the coordinator can classify it (retryable vs. permanent)
    /// without sniffing display strings.
    Failed { query_id: u64, fragment: u32, error: QueryError },
    /// One fragment's answers for a whole [`Request::Batch`], in batch
    /// order: `answers[i]` answers query `base + 1 + i`. Each answer carries
    /// its own per-query [`WireCost`] so coordinator-side attribution stays
    /// per-query exact under batching.
    BatchResults { base: u64, fragment: u32, answers: Vec<BatchAnswer> },
    /// Answer to a [`Request::Probe`]: the machine is alive and draining its
    /// queue. Not query traffic — the gather loop feeds it straight to the
    /// health board and never counts it against any query window.
    ProbeAck { machine: u32, nonce: u64 },
}

/// One query's outcome inside a [`Response::BatchResults`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchAnswer {
    /// The query's local result on this fragment.
    Results { nodes: Vec<NodeId>, cost: WireCost },
    /// The query failed on this fragment; the rest of the batch is
    /// unaffected (the coordinator re-dispatches just this query).
    Failed(QueryError),
}

impl Encode for BatchAnswer {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            BatchAnswer::Results { nodes, cost } => {
                0u8.encode(buf);
                nodes.encode(buf);
                cost.encode(buf);
            }
            BatchAnswer::Failed(error) => {
                1u8.encode(buf);
                error.encode(buf);
            }
        }
    }
}
impl Decode for BatchAnswer {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => {
                Ok(BatchAnswer::Results { nodes: Vec::decode(buf)?, cost: WireCost::decode(buf)? })
            }
            1 => Ok(BatchAnswer::Failed(QueryError::decode(buf)?)),
            tag => Err(DecodeError::BadTag { context: "BatchAnswer", tag }),
        }
    }
}

/// Encoded size of a [`WireCost`]: thirteen fixed-width `u64` fields plus
/// the fixed-width evaluation-latency histogram. Fixed width keeps frame
/// byte ledgers independent of the (nondeterministic) timing values.
pub(crate) const WIRE_COST_LEN: u64 = 13 * 8 + EVAL_HIST_BUCKETS as u64 * 4;

/// Exact encoded size of a [`Response::Results`] frame carrying `n_nodes`
/// result ids: tag + query id + fragment + length prefix + ids + cost.
///
/// Used to apportion a batch frame's bytes to its member queries — each
/// answer is charged what its standalone result frame would have cost, so
/// per-query byte accounting is comparable across batched and unbatched
/// runs (the batch frame itself is smaller than the sum; the saving is
/// visible in the link totals).
pub(crate) fn results_frame_len(n_nodes: u64) -> u64 {
    1 + 8 + 4 + 4 + 4 * n_nodes + WIRE_COST_LEN
}

impl Encode for WireCost {
    fn encode(&self, buf: &mut impl BufMut) {
        self.alpha.encode(buf);
        self.beta.encode(buf);
        self.settled.encode(buf);
        self.pushed.encode(buf);
        self.coverage_nodes.encode(buf);
        self.elapsed_micros.encode(buf);
        self.cache_hits.encode(buf);
        self.cache_misses.encode(buf);
        self.cache_evictions.encode(buf);
        self.batch_shared.encode(buf);
        self.cache_bypassed.encode(buf);
        self.replica.encode(buf);
        self.busy_micros.encode(buf);
        for b in &self.eval_hist {
            b.encode(buf);
        }
    }
}
impl Decode for WireCost {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(WireCost {
            alpha: u64::decode(buf)?,
            beta: u64::decode(buf)?,
            settled: u64::decode(buf)?,
            pushed: u64::decode(buf)?,
            coverage_nodes: u64::decode(buf)?,
            elapsed_micros: u64::decode(buf)?,
            cache_hits: u64::decode(buf)?,
            cache_misses: u64::decode(buf)?,
            cache_evictions: u64::decode(buf)?,
            batch_shared: u64::decode(buf)?,
            cache_bypassed: u64::decode(buf)?,
            replica: u64::decode(buf)?,
            busy_micros: u64::decode(buf)?,
            eval_hist: {
                let mut hist = [0u32; EVAL_HIST_BUCKETS];
                for b in &mut hist {
                    *b = u32::decode(buf)?;
                }
                hist
            },
        })
    }
}

impl Encode for Request {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Request::Evaluate { query_id, plan, fragments } => {
                0u8.encode(buf);
                query_id.encode(buf);
                plan.encode(buf);
                fragments.encode(buf);
            }
            Request::Shutdown => 1u8.encode(buf),
            Request::TopK { query_id, query, fragments } => {
                2u8.encode(buf);
                query_id.encode(buf);
                query.encode(buf);
                fragments.encode(buf);
            }
            Request::Batch { base, plan, fragments } => {
                3u8.encode(buf);
                base.encode(buf);
                plan.encode(buf);
                fragments.encode(buf);
            }
            Request::Prewarm { slots, fragments } => {
                4u8.encode(buf);
                slots.encode(buf);
                fragments.encode(buf);
            }
            Request::BatchRef { base, plan, fragments } => {
                5u8.encode(buf);
                base.encode(buf);
                plan.encode(buf);
                fragments.encode(buf);
            }
            Request::Probe { nonce } => {
                6u8.encode(buf);
                nonce.encode(buf);
            }
        }
    }
}
impl Decode for Request {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Request::Evaluate {
                query_id: u64::decode(buf)?,
                plan: QueryPlan::decode(buf)?,
                fragments: Vec::decode(buf)?,
            }),
            1 => Ok(Request::Shutdown),
            2 => Ok(Request::TopK {
                query_id: u64::decode(buf)?,
                query: TopKQuery::decode(buf)?,
                fragments: Vec::decode(buf)?,
            }),
            3 => Ok(Request::Batch {
                base: u64::decode(buf)?,
                plan: SuperPlan::decode(buf)?,
                fragments: Vec::decode(buf)?,
            }),
            4 => Ok(Request::Prewarm { slots: Vec::decode(buf)?, fragments: Vec::decode(buf)? }),
            5 => Ok(Request::BatchRef {
                base: u64::decode(buf)?,
                plan: ElidedSuperPlan::decode(buf)?,
                fragments: Vec::decode(buf)?,
            }),
            6 => Ok(Request::Probe { nonce: u64::decode(buf)? }),
            tag => Err(DecodeError::BadTag { context: "Request", tag }),
        }
    }
}

impl Encode for Response {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Response::Results { query_id, fragment, nodes, cost } => {
                0u8.encode(buf);
                query_id.encode(buf);
                fragment.encode(buf);
                nodes.encode(buf);
                cost.encode(buf);
            }
            Response::Failed { query_id, fragment, error } => {
                1u8.encode(buf);
                query_id.encode(buf);
                fragment.encode(buf);
                error.encode(buf);
            }
            Response::TopKResults { query_id, fragment, ranked, cost } => {
                2u8.encode(buf);
                query_id.encode(buf);
                fragment.encode(buf);
                ranked.encode(buf);
                cost.encode(buf);
            }
            Response::BatchResults { base, fragment, answers } => {
                3u8.encode(buf);
                base.encode(buf);
                fragment.encode(buf);
                answers.encode(buf);
            }
            Response::ProbeAck { machine, nonce } => {
                4u8.encode(buf);
                machine.encode(buf);
                nonce.encode(buf);
            }
        }
    }
}
impl Decode for Response {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Response::Results {
                query_id: u64::decode(buf)?,
                fragment: u32::decode(buf)?,
                nodes: Vec::decode(buf)?,
                cost: WireCost::decode(buf)?,
            }),
            1 => Ok(Response::Failed {
                query_id: u64::decode(buf)?,
                fragment: u32::decode(buf)?,
                error: QueryError::decode(buf)?,
            }),
            2 => Ok(Response::TopKResults {
                query_id: u64::decode(buf)?,
                fragment: u32::decode(buf)?,
                ranked: Vec::decode(buf)?,
                cost: WireCost::decode(buf)?,
            }),
            3 => Ok(Response::BatchResults {
                base: u64::decode(buf)?,
                fragment: u32::decode(buf)?,
                answers: Vec::decode(buf)?,
            }),
            4 => Ok(Response::ProbeAck { machine: u32::decode(buf)?, nonce: u64::decode(buf)? }),
            tag => Err(DecodeError::BadTag { context: "Response", tag }),
        }
    }
}

/// Encode a message to a frame.
pub fn encode_frame<T: Encode>(msg: &T) -> Bytes {
    let mut buf = BytesMut::new();
    msg.encode(&mut buf);
    buf.freeze()
}

/// Decode a message from a frame, requiring full consumption.
pub fn decode_frame<T: Decode>(mut bytes: Bytes) -> Result<T, DecodeError> {
    let msg = T::decode(&mut bytes)?;
    if bytes.has_remaining() {
        return Err(DecodeError::LengthOutOfRange {
            context: "trailing bytes after frame",
            len: bytes.remaining() as u64,
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_core::{DFunction, Term};
    use disks_roadnet::KeywordId;

    #[test]
    fn request_round_trip() {
        let plan = QueryPlan::lower(&DFunction::single(Term::Keyword(KeywordId(3)), 42));
        let req = Request::Evaluate { query_id: 7, plan: plan.clone(), fragments: vec![] };
        let frame = encode_frame(&req);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), req);
        // Narrowed retry dispatch round-trips its fragment filter.
        let narrowed = Request::Evaluate { query_id: 8, plan, fragments: vec![2, 5] };
        let frame = encode_frame(&narrowed);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), narrowed);
        let frame = encode_frame(&Request::Shutdown);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), Request::Shutdown);
    }

    #[test]
    fn deduplicated_plan_shrinks_the_request_frame() {
        // R(a,5) ∩ R(b,5) ∩ R(a,5): the plan ships two slots, not three
        // coverage terms — normalization pays on the wire too.
        use disks_core::SetOp;
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 5)
            .then(SetOp::Intersect, Term::Keyword(KeywordId(1)), 5)
            .then(SetOp::Intersect, Term::Keyword(KeywordId(0)), 5);
        let dedup = QueryPlan::lower(&f);
        let no_dup = QueryPlan::lower(&DFunction::single(Term::Keyword(KeywordId(0)), 5).then(
            SetOp::Intersect,
            Term::Keyword(KeywordId(1)),
            5,
        ));
        let dedup_len =
            encode_frame(&Request::Evaluate { query_id: 1, plan: dedup, fragments: vec![] }).len();
        let two_len =
            encode_frame(&Request::Evaluate { query_id: 1, plan: no_dup, fragments: vec![] }).len();
        // Same two slots, one extra (op, index) program entry.
        assert_eq!(dedup_len, two_len + 5);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::Results {
            query_id: 9,
            fragment: 2,
            nodes: vec![NodeId(1), NodeId(5)],
            cost: WireCost {
                alpha: 1,
                beta: 2,
                settled: 3,
                pushed: 4,
                coverage_nodes: 5,
                elapsed_micros: 6,
                cache_hits: 7,
                cache_misses: 8,
                cache_evictions: 9,
                batch_shared: 10,
                cache_bypassed: 11,
                replica: 12,
                busy_micros: 13,
                eval_hist: std::array::from_fn(|i| 100 + i as u32),
            },
        };
        let frame = encode_frame(&resp);
        assert_eq!(decode_frame::<Response>(frame).unwrap(), resp);
        let fail = Response::Failed {
            query_id: 9,
            fragment: 1,
            error: QueryError::RadiusExceedsMaxR { r: 100, max_r: 40 },
        };
        let frame = encode_frame(&fail);
        assert_eq!(decode_frame::<Response>(frame).unwrap(), fail);
    }

    #[test]
    fn topk_round_trip() {
        use disks_core::{ScoreCombine, TopKQuery};
        let req = Request::TopK {
            query_id: 4,
            query: TopKQuery::new(vec![KeywordId(1)], 5, 40, ScoreCombine::Max),
            fragments: vec![1],
        };
        let frame = encode_frame(&req);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), req);
        let resp = Response::TopKResults {
            query_id: 4,
            fragment: 1,
            ranked: vec![(3, NodeId(7)), (9, NodeId(2))],
            cost: WireCost::default(),
        };
        let frame = encode_frame(&resp);
        assert_eq!(decode_frame::<Response>(frame).unwrap(), resp);
    }

    #[test]
    fn prewarm_round_trip() {
        use disks_core::DTerm;
        let req = Request::Prewarm {
            slots: vec![
                DTerm { term: Term::Keyword(KeywordId(2)), radius: 40 },
                DTerm { term: Term::Keyword(KeywordId(7)), radius: 80 },
            ],
            fragments: vec![1, 4],
        };
        let frame = encode_frame(&req);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), req);
        let empty = Request::Prewarm { slots: vec![], fragments: vec![] };
        let frame = encode_frame(&empty);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), empty);
    }

    #[test]
    fn probe_round_trip() {
        let req = Request::Probe { nonce: 0xDEAD_BEEF };
        let frame = encode_frame(&req);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), req);
        let ack = Response::ProbeAck { machine: 3, nonce: 0xDEAD_BEEF };
        let frame = encode_frame(&ack);
        assert_eq!(decode_frame::<Response>(frame).unwrap(), ack);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let frame = encode_frame(&Request::Shutdown);
        let mut extended = BytesMut::from(&frame[..]);
        extended.put_u8(0xff);
        assert!(decode_frame::<Request>(extended.freeze()).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(250);
        assert!(decode_frame::<Request>(buf.freeze()).is_err());
        let mut buf = BytesMut::new();
        buf.put_u8(250);
        assert!(decode_frame::<Response>(buf.freeze()).is_err());
    }

    #[test]
    fn batch_round_trip() {
        use disks_core::SetOp;
        let plans: Vec<QueryPlan> = [
            DFunction::single(Term::Keyword(KeywordId(0)), 5).then(
                SetOp::Intersect,
                Term::Keyword(KeywordId(1)),
                5,
            ),
            DFunction::single(Term::Keyword(KeywordId(1)), 5),
        ]
        .iter()
        .map(QueryPlan::lower)
        .collect();
        let req =
            Request::Batch { base: 100, plan: SuperPlan::merge(&plans), fragments: vec![0, 3] };
        let frame = encode_frame(&req);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), req);

        let resp = Response::BatchResults {
            base: 100,
            fragment: 3,
            answers: vec![
                BatchAnswer::Results {
                    nodes: vec![NodeId(2), NodeId(9)],
                    cost: WireCost { batch_shared: 1, ..Default::default() },
                },
                BatchAnswer::Failed(QueryError::RadiusExceedsMaxR { r: 9, max_r: 4 }),
            ],
        };
        let frame = encode_frame(&resp);
        assert_eq!(decode_frame::<Response>(frame).unwrap(), resp);
    }

    #[test]
    fn batched_slot_sharing_shrinks_the_request_bytes() {
        // Eight queries over the same two slots: one super-plan frame is far
        // smaller than eight per-query Evaluate frames.
        use disks_core::SetOp;
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 5).then(
            SetOp::Intersect,
            Term::Keyword(KeywordId(1)),
            5,
        );
        let plans = vec![QueryPlan::lower(&f); 8];
        let batched = encode_frame(&Request::Batch {
            base: 0,
            plan: SuperPlan::merge(&plans),
            fragments: vec![],
        })
        .len();
        let single: usize = plans
            .iter()
            .map(|p| {
                encode_frame(&Request::Evaluate { query_id: 1, plan: p.clone(), fragments: vec![] })
                    .len()
            })
            .sum();
        assert!(batched < single / 2, "batched {batched} vs unbatched {single}");
    }

    #[test]
    fn batch_ref_round_trip_and_elided_frame_is_smaller() {
        use disks_core::{SetOp, SlotIdTable};
        use std::collections::HashSet;
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 5).then(
            SetOp::Intersect,
            Term::Keyword(KeywordId(1)),
            5,
        );
        let plans = vec![QueryPlan::lower(&f); 4];
        let sp = SuperPlan::merge(&plans);
        let mut table = SlotIdTable::new();
        let cold = sp.try_elide(&mut table, &HashSet::new()).unwrap();
        let believed: HashSet<u32> = cold.slot_ids().collect();
        let warm = sp.try_elide(&mut table, &believed).unwrap();
        let req = Request::BatchRef { base: 100, plan: warm.clone(), fragments: vec![0, 3] };
        let frame = encode_frame(&req);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), req);
        // The warm reference frame beats the equivalent full-spec Batch frame.
        let full_len =
            encode_frame(&Request::Batch { base: 100, plan: sp, fragments: vec![0, 3] }).len();
        let warm_len =
            encode_frame(&Request::BatchRef { base: 100, plan: warm, fragments: vec![0, 3] }).len();
        assert!(warm_len < full_len, "elided {warm_len} vs full {full_len}");
    }

    #[test]
    fn results_frame_len_matches_encoded_size() {
        for n in [0usize, 1, 7, 1000] {
            let resp = Response::Results {
                query_id: 42,
                fragment: 3,
                nodes: (0..n as u32).map(NodeId).collect(),
                cost: WireCost::default(),
            };
            assert_eq!(encode_frame(&resp).len() as u64, results_frame_len(n as u64));
        }
    }

    #[test]
    fn result_frame_size_scales_with_result_count() {
        let small = Response::Results {
            query_id: 1,
            fragment: 0,
            nodes: vec![NodeId(1)],
            cost: WireCost::default(),
        };
        let large = Response::Results {
            query_id: 1,
            fragment: 0,
            nodes: (0..1000).map(NodeId).collect(),
            cost: WireCost::default(),
        };
        let s = encode_frame(&small).len();
        let l = encode_frame(&large).len();
        assert_eq!(l - s, 999 * 4, "4 bytes per extra node id");
    }
}
