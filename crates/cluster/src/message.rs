//! Wire protocol between the coordinator and the workers.
//!
//! Messages are encoded with the hand-written binary codec so the byte
//! counts reported in the communication experiments are exactly what a TCP
//! implementation would put on the wire (minus transport framing).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use disks_core::{QueryCost, QueryError, QueryPlan, Ranked, TopKQuery};
use disks_roadnet::codec::{Decode, Encode};
use disks_roadnet::{DecodeError, NodeId};

/// Coordinator → worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Evaluate a normalized query plan on hosted fragments. An empty
    /// `fragments` list means every fragment the worker hosts; a non-empty
    /// list narrows the task to just those fragments (retry re-dispatch
    /// after a fault). The plan was admitted by the coordinator, so workers
    /// assume its radii and locations are valid.
    Evaluate { query_id: u64, plan: QueryPlan, fragments: Vec<u32> },
    /// Evaluate a top-k group keyword query on hosted fragments (same
    /// narrowing rule as `Evaluate`).
    TopK { query_id: u64, query: TopKQuery, fragments: Vec<u32> },
    /// Terminate the worker loop.
    Shutdown,
}

/// The encodable subset of [`QueryCost`] shipped back to the coordinator,
/// plus the worker's coverage-cache activity for the task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCost {
    pub alpha: u64,
    pub beta: u64,
    pub settled: u64,
    pub pushed: u64,
    pub coverage_nodes: u64,
    pub elapsed_micros: u64,
    /// Coverage-cache hits while serving this task.
    pub cache_hits: u64,
    /// Coverage-cache misses while serving this task.
    pub cache_misses: u64,
    /// Coverage-cache evictions triggered while serving this task.
    pub cache_evictions: u64,
}

impl From<&QueryCost> for WireCost {
    fn from(c: &QueryCost) -> Self {
        WireCost {
            alpha: c.alpha as u64,
            beta: c.beta as u64,
            settled: c.settled as u64,
            pushed: c.pushed as u64,
            coverage_nodes: c.coverage_nodes as u64,
            elapsed_micros: c.elapsed.as_micros() as u64,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
        }
    }
}

/// Worker → coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Results for one fragment hosted by the worker.
    Results { query_id: u64, fragment: u32, nodes: Vec<NodeId>, cost: WireCost },
    /// Locally ranked top-k results for one fragment.
    TopKResults { query_id: u64, fragment: u32, ranked: Vec<Ranked>, cost: WireCost },
    /// The query failed on this worker, with the typed error encoded on the
    /// wire — the coordinator can classify it (retryable vs. permanent)
    /// without sniffing display strings.
    Failed { query_id: u64, fragment: u32, error: QueryError },
}

impl Encode for WireCost {
    fn encode(&self, buf: &mut impl BufMut) {
        self.alpha.encode(buf);
        self.beta.encode(buf);
        self.settled.encode(buf);
        self.pushed.encode(buf);
        self.coverage_nodes.encode(buf);
        self.elapsed_micros.encode(buf);
        self.cache_hits.encode(buf);
        self.cache_misses.encode(buf);
        self.cache_evictions.encode(buf);
    }
}
impl Decode for WireCost {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(WireCost {
            alpha: u64::decode(buf)?,
            beta: u64::decode(buf)?,
            settled: u64::decode(buf)?,
            pushed: u64::decode(buf)?,
            coverage_nodes: u64::decode(buf)?,
            elapsed_micros: u64::decode(buf)?,
            cache_hits: u64::decode(buf)?,
            cache_misses: u64::decode(buf)?,
            cache_evictions: u64::decode(buf)?,
        })
    }
}

impl Encode for Request {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Request::Evaluate { query_id, plan, fragments } => {
                0u8.encode(buf);
                query_id.encode(buf);
                plan.encode(buf);
                fragments.encode(buf);
            }
            Request::Shutdown => 1u8.encode(buf),
            Request::TopK { query_id, query, fragments } => {
                2u8.encode(buf);
                query_id.encode(buf);
                query.encode(buf);
                fragments.encode(buf);
            }
        }
    }
}
impl Decode for Request {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Request::Evaluate {
                query_id: u64::decode(buf)?,
                plan: QueryPlan::decode(buf)?,
                fragments: Vec::decode(buf)?,
            }),
            1 => Ok(Request::Shutdown),
            2 => Ok(Request::TopK {
                query_id: u64::decode(buf)?,
                query: TopKQuery::decode(buf)?,
                fragments: Vec::decode(buf)?,
            }),
            tag => Err(DecodeError::BadTag { context: "Request", tag }),
        }
    }
}

impl Encode for Response {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Response::Results { query_id, fragment, nodes, cost } => {
                0u8.encode(buf);
                query_id.encode(buf);
                fragment.encode(buf);
                nodes.encode(buf);
                cost.encode(buf);
            }
            Response::Failed { query_id, fragment, error } => {
                1u8.encode(buf);
                query_id.encode(buf);
                fragment.encode(buf);
                error.encode(buf);
            }
            Response::TopKResults { query_id, fragment, ranked, cost } => {
                2u8.encode(buf);
                query_id.encode(buf);
                fragment.encode(buf);
                ranked.encode(buf);
                cost.encode(buf);
            }
        }
    }
}
impl Decode for Response {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Response::Results {
                query_id: u64::decode(buf)?,
                fragment: u32::decode(buf)?,
                nodes: Vec::decode(buf)?,
                cost: WireCost::decode(buf)?,
            }),
            1 => Ok(Response::Failed {
                query_id: u64::decode(buf)?,
                fragment: u32::decode(buf)?,
                error: QueryError::decode(buf)?,
            }),
            2 => Ok(Response::TopKResults {
                query_id: u64::decode(buf)?,
                fragment: u32::decode(buf)?,
                ranked: Vec::decode(buf)?,
                cost: WireCost::decode(buf)?,
            }),
            tag => Err(DecodeError::BadTag { context: "Response", tag }),
        }
    }
}

/// Encode a message to a frame.
pub fn encode_frame<T: Encode>(msg: &T) -> Bytes {
    let mut buf = BytesMut::new();
    msg.encode(&mut buf);
    buf.freeze()
}

/// Decode a message from a frame, requiring full consumption.
pub fn decode_frame<T: Decode>(mut bytes: Bytes) -> Result<T, DecodeError> {
    let msg = T::decode(&mut bytes)?;
    if bytes.has_remaining() {
        return Err(DecodeError::LengthOutOfRange {
            context: "trailing bytes after frame",
            len: bytes.remaining() as u64,
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_core::{DFunction, Term};
    use disks_roadnet::KeywordId;

    #[test]
    fn request_round_trip() {
        let plan = QueryPlan::lower(&DFunction::single(Term::Keyword(KeywordId(3)), 42));
        let req = Request::Evaluate { query_id: 7, plan: plan.clone(), fragments: vec![] };
        let frame = encode_frame(&req);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), req);
        // Narrowed retry dispatch round-trips its fragment filter.
        let narrowed = Request::Evaluate { query_id: 8, plan, fragments: vec![2, 5] };
        let frame = encode_frame(&narrowed);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), narrowed);
        let frame = encode_frame(&Request::Shutdown);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), Request::Shutdown);
    }

    #[test]
    fn deduplicated_plan_shrinks_the_request_frame() {
        // R(a,5) ∩ R(b,5) ∩ R(a,5): the plan ships two slots, not three
        // coverage terms — normalization pays on the wire too.
        use disks_core::SetOp;
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 5)
            .then(SetOp::Intersect, Term::Keyword(KeywordId(1)), 5)
            .then(SetOp::Intersect, Term::Keyword(KeywordId(0)), 5);
        let dedup = QueryPlan::lower(&f);
        let no_dup = QueryPlan::lower(&DFunction::single(Term::Keyword(KeywordId(0)), 5).then(
            SetOp::Intersect,
            Term::Keyword(KeywordId(1)),
            5,
        ));
        let dedup_len =
            encode_frame(&Request::Evaluate { query_id: 1, plan: dedup, fragments: vec![] }).len();
        let two_len =
            encode_frame(&Request::Evaluate { query_id: 1, plan: no_dup, fragments: vec![] }).len();
        // Same two slots, one extra (op, index) program entry.
        assert_eq!(dedup_len, two_len + 5);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::Results {
            query_id: 9,
            fragment: 2,
            nodes: vec![NodeId(1), NodeId(5)],
            cost: WireCost {
                alpha: 1,
                beta: 2,
                settled: 3,
                pushed: 4,
                coverage_nodes: 5,
                elapsed_micros: 6,
                cache_hits: 7,
                cache_misses: 8,
                cache_evictions: 9,
            },
        };
        let frame = encode_frame(&resp);
        assert_eq!(decode_frame::<Response>(frame).unwrap(), resp);
        let fail = Response::Failed {
            query_id: 9,
            fragment: 1,
            error: QueryError::RadiusExceedsMaxR { r: 100, max_r: 40 },
        };
        let frame = encode_frame(&fail);
        assert_eq!(decode_frame::<Response>(frame).unwrap(), fail);
    }

    #[test]
    fn topk_round_trip() {
        use disks_core::{ScoreCombine, TopKQuery};
        let req = Request::TopK {
            query_id: 4,
            query: TopKQuery::new(vec![KeywordId(1)], 5, 40, ScoreCombine::Max),
            fragments: vec![1],
        };
        let frame = encode_frame(&req);
        assert_eq!(decode_frame::<Request>(frame).unwrap(), req);
        let resp = Response::TopKResults {
            query_id: 4,
            fragment: 1,
            ranked: vec![(3, NodeId(7)), (9, NodeId(2))],
            cost: WireCost::default(),
        };
        let frame = encode_frame(&resp);
        assert_eq!(decode_frame::<Response>(frame).unwrap(), resp);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let frame = encode_frame(&Request::Shutdown);
        let mut extended = BytesMut::from(&frame[..]);
        extended.put_u8(0xff);
        assert!(decode_frame::<Request>(extended.freeze()).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(250);
        assert!(decode_frame::<Request>(buf.freeze()).is_err());
        let mut buf = BytesMut::new();
        buf.put_u8(250);
        assert!(decode_frame::<Response>(buf.freeze()).is_err());
    }

    #[test]
    fn result_frame_size_scales_with_result_count() {
        let small = Response::Results {
            query_id: 1,
            fragment: 0,
            nodes: vec![NodeId(1)],
            cost: WireCost::default(),
        };
        let large = Response::Results {
            query_id: 1,
            fragment: 0,
            nodes: (0..1000).map(NodeId).collect(),
            cost: WireCost::default(),
        };
        let s = encode_frame(&small).len();
        let l = encode_frame(&large).len();
        assert_eq!(l - s, 999 * 4, "4 bytes per extra node id");
    }
}
