//! Length-prefixed stream framing for socket transports.
//!
//! The in-process channel transport moves whole [`Bytes`] frames, so it
//! never needs framing; a TCP stream delivers an arbitrary re-chunking of
//! the written bytes. This module turns that byte stream back into the
//! exact frames the wire codec produced:
//!
//! * **Wire format** — `[u32 big-endian payload length][payload]`. A length
//!   of zero is a transport-level **keepalive**: it proves the peer is
//!   alive between payloads, is never surfaced to the application, and is
//!   never counted in the link's byte/frame ledger (the ledger measures the
//!   protocol, not the transport's liveness chatter).
//! * **Reassembly** — [`FrameAssembler`] accepts chunks at arbitrary byte
//!   boundaries (fragmented or coalesced) and yields complete frames in
//!   order. It buffers at most what has actually arrived plus one length
//!   prefix: a corrupt prefix claiming an absurd length is rejected with a
//!   typed [`DecodeError::LengthOutOfRange`] *before* any allocation, so a
//!   malicious or damaged peer cannot trigger an allocation bomb.
//! * **Hello** — the first payload frame a worker process writes on a fresh
//!   connection identifies its machine id, letting the coordinator accept
//!   remote workers in any order.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bytes::Bytes;
use disks_roadnet::DecodeError;

/// Upper bound on a framed payload. Far above any frame this protocol
/// produces (the largest response frames are a few MiB of node ids), low
/// enough that a corrupt length prefix is rejected instead of reserved.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// One decoded event of the framed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// A complete payload frame (the bytes the wire codec encoded).
    Frame(Bytes),
    /// A zero-length keepalive; transport-level only.
    Keepalive,
}

/// Incremental reassembler: feed it chunks as they arrive, drain complete
/// frames. Never panics on any input byte sequence; the only failure is the
/// typed over-length rejection, after which the stream is unrecoverable
/// (framing lost) and the link must be torn down.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameAssembler {
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Bytes buffered but not yet consumed as events.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Append one received chunk (any size, including empty).
    pub fn extend(&mut self, chunk: &[u8]) {
        // Compact the consumed prefix before growing, so long-lived links
        // hold only in-flight bytes rather than the whole session history.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// The next complete event, `Ok(None)` while more bytes are needed.
    /// The incompleteness check runs *before* any allocation: a length
    /// prefix beyond [`MAX_FRAME_LEN`] fails typed with zero bytes
    /// reserved.
    pub fn next_event(&mut self) -> Result<Option<StreamEvent>, DecodeError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len =
            u32::from_be_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4-byte prefix"))
                as usize;
        if len == 0 {
            self.pos += 4;
            return Ok(Some(StreamEvent::Keepalive));
        }
        if len > MAX_FRAME_LEN {
            return Err(DecodeError::LengthOutOfRange {
                context: "transport frame length",
                len: len as u64,
            });
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        let frame = Bytes::from(self.buf[start..start + len].to_vec());
        self.pos = start + len;
        Ok(Some(StreamEvent::Frame(frame)))
    }
}

/// Write one framed payload: length prefix then bytes.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(&(frame.len() as u32).to_be_bytes())?;
    w.write_all(frame)
}

/// Write a zero-length keepalive.
pub fn write_keepalive(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&0u32.to_be_bytes())
}

/// Write the length prefix and only *half* the payload — the
/// `CutLinkMidFrame` fault's torn write. The peer is left holding an
/// incomplete frame that can never complete (the caller closes the
/// connection right after), exercising the mid-frame EOF path.
pub(crate) fn write_partial_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(&(frame.len() as u32).to_be_bytes())?;
    w.write_all(&frame[..frame.len() / 2])
}

/// Magic prefix of a hello frame ("DSKW").
pub const HELLO_MAGIC: u32 = 0x4453_4B57;

/// Announce this worker's machine id as the connection's first payload
/// frame.
pub fn write_hello(stream: &mut TcpStream, machine: u32) -> io::Result<()> {
    let mut payload = [0u8; 8];
    payload[..4].copy_from_slice(&HELLO_MAGIC.to_be_bytes());
    payload[4..].copy_from_slice(&machine.to_be_bytes());
    write_frame(stream, &payload)
}

/// Read the peer's hello frame, enforcing `timeout` on the read. The
/// previous read timeout of the stream is not restored — callers configure
/// their steady-state timeout right after.
pub fn read_hello(stream: &mut TcpStream, timeout: Duration) -> io::Result<u32> {
    stream.set_read_timeout(Some(timeout))?;
    let mut raw = [0u8; 12];
    stream.read_exact(&mut raw)?;
    let len = u32::from_be_bytes(raw[..4].try_into().expect("prefix"));
    let magic = u32::from_be_bytes(raw[4..8].try_into().expect("magic"));
    if len != 8 || magic != HELLO_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad hello frame"));
    }
    Ok(u32::from_be_bytes(raw[8..12].try_into().expect("machine id")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_stream(frames: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for f in frames {
            write_frame(&mut out, f).unwrap();
        }
        out
    }

    #[test]
    fn reassembles_one_byte_at_a_time() {
        // An empty payload is inexpressible (len 0 = keepalive), so the
        // middle event is a keepalive rather than an empty frame.
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"hello").unwrap();
        write_keepalive(&mut bytes).unwrap();
        write_frame(&mut bytes, b"worlds!").unwrap();

        let mut asm = FrameAssembler::new();
        let mut events = Vec::new();
        for b in &bytes {
            asm.extend(std::slice::from_ref(b));
            while let Some(e) = asm.next_event().unwrap() {
                events.push(e);
            }
        }
        assert_eq!(
            events,
            vec![
                StreamEvent::Frame(Bytes::from(&b"hello"[..])),
                StreamEvent::Keepalive,
                StreamEvent::Frame(Bytes::from(&b"worlds!"[..])),
            ]
        );
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn coalesced_chunk_yields_every_frame() {
        let bytes = frame_stream(&[b"a", b"bb", b"ccc"]);
        let mut asm = FrameAssembler::new();
        asm.extend(&bytes);
        let mut n = 0;
        while let Some(e) = asm.next_event().unwrap() {
            assert!(matches!(e, StreamEvent::Frame(_)));
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn oversized_length_prefix_is_typed_error_not_allocation() {
        let mut asm = FrameAssembler::new();
        asm.extend(&(u32::MAX).to_be_bytes());
        match asm.next_event() {
            Err(DecodeError::LengthOutOfRange { len, .. }) => {
                assert_eq!(len, u32::MAX as u64);
            }
            other => panic!("expected typed over-length error, got {other:?}"),
        }
    }

    #[test]
    fn hello_round_trips_over_a_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        write_hello(&mut client, 42).unwrap();
        assert_eq!(read_hello(&mut server, Duration::from_secs(1)).unwrap(), 42);
    }
}
