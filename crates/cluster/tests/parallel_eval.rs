//! Intra-worker parallel slot evaluation (DESIGN.md §6k) is a pure compute
//! optimization: the two-phase protocol evaluates a frame's distinct
//! coverage slots on a pool of evaluator threads, then commits serially in
//! slot-table order — so a cluster at any `worker_threads` must be
//! *value-identical* to the sequential worker. These tests close that
//! contract three ways: a property test over arbitrary Zipf slot tables
//! (answers, per-machine value-plane costs, cache ledger, and frame/byte
//! ledgers all equal across thread counts), a kill/hedge/quarantine chaos
//! run with the pool enabled on both transports, and an injected-panic case
//! proving poisoned slots degrade to the serial failure path.

use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_cluster::{
    CacheCounters, Cluster, ClusterConfig, FaultPlan, HedgeMode, NetworkModel, QueryOutcome,
    RoutePolicy, TransportKind,
};
use disks_core::{build_all_indexes, CentralizedCoverage, DFunction, IndexConfig, SetOp, Term};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::zipf::Zipf;
use disks_roadnet::{KeywordId, RoadNetwork};

/// A seeded Zipf-skewed SGKQ stream over the top-10 keywords: repeated
/// slots within and across batch windows, multi-keyword plans, a small
/// radius pool — the slot-table shapes the two-phase protocol must replay
/// exactly.
fn zipf_stream(net: &RoadNetwork, seed: u64, n: usize) -> Vec<DFunction> {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    ranked.truncate(10);
    let zipf = Zipf::new(ranked.len(), 1.0);
    let e = net.avg_edge_weight();
    let radii = [2 * e, 3 * e, 4 * e];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let kw = KeywordId(ranked[zipf.sample(&mut rng)] as u32);
            let mut f = DFunction::single(Term::Keyword(kw), radii[rng.gen_range(0..radii.len())]);
            if rng.gen_bool(0.5) {
                let kw2 = KeywordId(ranked[zipf.sample(&mut rng)] as u32);
                let op = if rng.gen_bool(0.5) { SetOp::Union } else { SetOp::Intersect };
                f = f.then(op, Term::Keyword(kw2), radii[rng.gen_range(0..radii.len())]);
            }
            f
        })
        .collect()
}

/// Explicit knobs everywhere `ClusterConfig::default()` would read the
/// environment, so parity means the same thing in every CI lane.
fn pinned_config(threads: usize) -> ClusterConfig {
    ClusterConfig {
        network: NetworkModel::instant(),
        deadline: Duration::from_millis(3000),
        coverage_cache_bytes: 1 << 20, // small: force mid-stream evictions
        batch_window: 8,
        batch_adaptive: false,
        worker_threads: threads,
        transport: TransportKind::Channel,
        ..ClusterConfig::default()
    }
}

fn build(net: &RoadNetwork, p: &Partitioning, config: ClusterConfig) -> Cluster {
    let indexes = build_all_indexes(net, p, &IndexConfig::unbounded());
    Cluster::build(net, p, indexes, config)
}

/// Sum of the per-query wire-reported cache counters.
fn summed_cache(outcomes: &[QueryOutcome]) -> CacheCounters {
    let mut sum = CacheCounters::default();
    for o in outcomes {
        sum.absorb(&CacheCounters {
            hits: o.stats.cache_hits,
            misses: o.stats.cache_misses,
            evictions: o.stats.cache_evictions,
            bypassed: o.stats.cache_bypassed,
        });
    }
    sum
}

/// Value-plane equality of two runs: answers, per-machine Theorem 5
/// counters, batch sharing, and cache attribution — everything except the
/// timing plane (`compute`, `busy_micros`, `eval_hist`), which is the only
/// thing a thread count is allowed to change.
fn assert_value_identical(a: &[QueryOutcome], b: &[QueryOutcome], label: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.results, y.results, "{label}: query {i} answers diverge");
        assert_eq!(
            (x.stats.cache_hits, x.stats.cache_misses, x.stats.cache_evictions),
            (y.stats.cache_hits, y.stats.cache_misses, y.stats.cache_evictions),
            "{label}: query {i} cache attribution diverges"
        );
        assert_eq!(x.stats.per_machine.len(), y.stats.per_machine.len());
        for (mx, my) in x.stats.per_machine.iter().zip(&y.stats.per_machine) {
            assert_eq!(mx.fragments, my.fragments, "{label}: query {i} placement diverges");
            assert_eq!(
                (mx.alpha, mx.settled, mx.coverage_nodes, mx.results, mx.batch_shared),
                (my.alpha, my.settled, my.coverage_nodes, my.results, my.batch_shared),
                "{label}: query {i} value-plane cost diverges"
            );
            assert_eq!(
                mx.response_bytes, my.response_bytes,
                "{label}: query {i} response bytes diverge (frames are fixed-width)"
            );
        }
    }
}

proptest! {
    // Each case builds three clusters; keep the sample small but the
    // streams adversarial (shared slots, evictions, multi-fragment fan-out).
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole parity property: for an arbitrary Zipf slot table, a
    /// pooled worker at 2 and 4 threads is value-identical to the
    /// sequential worker — answers oracle-exact, cache/LRU ledger equal to
    /// the counter, and the wire ledgers (frames *and* bytes, both
    /// directions) byte-for-byte equal across thread counts.
    #[test]
    fn parallel_evaluation_is_value_identical_to_serial(
        net_seed in 0x40u64..0x44,
        stream_seed in any::<u64>(),
        n in 24usize..56,
    ) {
        let net = GridNetworkConfig::tiny(net_seed).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let fs = zipf_stream(&net, stream_seed, n);

        let mut runs = Vec::new();
        let mut ledgers = Vec::new();
        for threads in [1usize, 2, 4] {
            let cluster = build(&net, &p, pinned_config(threads));
            let (outcomes, _) = cluster.run_batched(&fs).expect("stream");
            prop_assert_eq!(outcomes.len(), fs.len());
            // Attribution closes on every thread count independently.
            prop_assert_eq!(summed_cache(&outcomes), cluster.cache_counters());
            ledgers.push((cluster.link_message_totals(), cluster.link_totals()));
            runs.push(outcomes);
            cluster.shutdown();
        }

        // Answers stay oracle-exact (spot-checked once; the pairwise
        // value-identity below carries it to the other thread counts).
        let mut oracle = CentralizedCoverage::new(&net);
        for (i, f) in fs.iter().enumerate() {
            prop_assert_eq!(&runs[0][i].results, &oracle.evaluate(f).unwrap(), "query {} not exact", i);
        }

        assert_value_identical(&runs[0], &runs[1], "threads 1 vs 2");
        assert_value_identical(&runs[0], &runs[2], "threads 1 vs 4");
        // Frame ledger: same frames, same bytes, both directions — the
        // pool may not add, drop, or resize a single frame.
        prop_assert_eq!(ledgers[0], ledgers[1]);
        prop_assert_eq!(ledgers[0], ledgers[2]);
    }
}

/// The health suite — worker kill mid-stream, straggler hedging over
/// replicas, quarantine — runs unchanged with the pool enabled: every
/// query exact, the recovery machinery fires, and the extended frame
/// ledger (`c2w == dispatch + retries + prewarms + hedges + probes`)
/// closes. Covers both transports, since TCP workers thread the same
/// `worker_loop`.
fn chaos_with_pool(transport: TransportKind) {
    let net = GridNetworkConfig::tiny(0x6B).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let fs = zipf_stream(&net, 0xC4A05, 120);

    let faults = FaultPlan::new(0x6B0B).kill_worker(1, 10);
    let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
    let cluster = Cluster::build(
        &net,
        &p,
        indexes,
        ClusterConfig {
            network: NetworkModel::instant(),
            deadline: Duration::from_millis(3000),
            coverage_cache_bytes: 64 << 20,
            batch_window: 8,
            batch_adaptive: false,
            worker_threads: 4,
            transport,
            replicas: 1,
            route: RoutePolicy::LeastLoaded,
            hedge: HedgeMode::Fixed,
            hedge_ms: 200,
            quarantine: true,
            faults: Some(faults),
            retry_backoff: Duration::from_millis(1),
            ..ClusterConfig::default()
        },
    );

    let (items, _) = cluster.run_stream(&fs);
    assert_eq!(items.len(), fs.len());
    let mut oracle = CentralizedCoverage::new(&net);
    for (i, item) in items.iter().enumerate() {
        match item {
            Ok(o) => {
                assert_eq!(o.results, oracle.evaluate(&fs[i]).unwrap(), "query {i} not exact");
                assert_eq!(o.stats.inter_worker_bytes, 0, "query {i}: Theorem 3 violated");
            }
            Err(e) => panic!("query {i} failed under pool chaos: {e}"),
        }
    }
    let rc = cluster.recovery_counters();
    // The kill fired: either the dead machine's silence was hedged around
    // via its replicas (first answer wins, no respawn needed) or the
    // coordinator detected the dead thread and respawned it.
    assert!(
        rc.respawned_workers >= 1 || rc.hedges >= 1,
        "the kill must leave a recovery trace: {rc:?}"
    );
    let (c2w_frames, _) = cluster.link_message_totals();
    let oc = cluster.overload_counters();
    assert_eq!(
        c2w_frames,
        oc.dispatch_frames + rc.retries + rc.prewarm_frames + rc.hedges + rc.probe_frames,
        "frame ledger must reconcile exactly under the pool: {oc:?} {rc:?}"
    );
    cluster.shutdown();
}

#[test]
fn pool_survives_kill_hedge_quarantine_chaos_channel() {
    chaos_with_pool(TransportKind::Channel);
}

#[test]
fn pool_survives_kill_hedge_quarantine_chaos_tcp() {
    chaos_with_pool(TransportKind::Tcp);
}

/// A worker panic under the pool surfaces exactly as it does serially: the
/// poisoned slot is absent from the prefetched table, the commit pass
/// recomputes it inline, hits the same panic, and the existing
/// `catch_unwind` turns it into the same typed retry-able failure — the
/// stream still completes exactly.
#[test]
fn injected_panic_under_pool_matches_serial_failure_semantics() {
    let net = GridNetworkConfig::tiny(0x6C).generate();
    let p = MultilevelPartitioner::default().partition(&net, 2);
    let fs = zipf_stream(&net, 0x9A41C, 60);

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let faults = FaultPlan::new(0x6C0C).panic_worker(0, 3);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let cluster = Cluster::build(
            &net,
            &p,
            indexes,
            ClusterConfig { faults: Some(faults), ..pinned_config(threads) },
        );
        let (outcomes, _) = cluster.run_batched(&fs).expect("stream with injected panic");
        let retried: Vec<usize> =
            (0..fs.len()).filter(|&i| outcomes[i].stats.retries > 0).collect();
        assert!(!retried.is_empty(), "threads {threads}: the injected panic must retry");
        runs.push((outcomes, retried));
        cluster.shutdown();
    }
    let (serial, serial_retried) = &runs[0];
    let (pooled, pooled_retried) = &runs[1];
    assert_eq!(serial_retried, pooled_retried, "same queries must be retried");
    let mut oracle = CentralizedCoverage::new(&net);
    for (i, f) in fs.iter().enumerate() {
        let want = oracle.evaluate(f).unwrap();
        assert_eq!(serial[i].results, want, "serial query {i} not exact");
        assert_eq!(pooled[i].results, want, "pooled query {i} not exact");
    }
}
