//! Socket-transport equivalence and TCP-only fault recovery: the `Link`
//! seam makes the transport invisible to the protocol, so a cluster wired
//! over real `TcpStream` pairs must answer bit-for-bit identically to the
//! in-process channel cluster with the *same* frame ledger (keepalives are
//! transport chatter, never protocol frames). Faults that only a socket
//! can exhibit — a connection killed mid-frame, a stalled peer tripping
//! the read timeout — must surface as the same typed stalls the gather
//! path already retries on, and recover through the existing respawn +
//! prewarm machinery with exact per-query results.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_cluster::{
    Cluster, ClusterConfig, FaultPlan, HeartbeatConfig, LinkDirection, NetworkModel, TransportKind,
};
use disks_core::{build_all_indexes, CentralizedCoverage, IndexConfig, SgkQuery};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::zipf::Zipf;
use disks_roadnet::{KeywordId, RoadNetwork};

/// A seeded Zipf-skewed SGKQ stream (same shape the cache and batching
/// suites use), so transport parity is measured on a realistic workload.
fn zipf_stream(net: &RoadNetwork, seed: u64, n: usize) -> Vec<SgkQuery> {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    ranked.truncate(10);
    let zipf = Zipf::new(ranked.len(), 1.0);
    let e = net.avg_edge_weight();
    let radii = [2 * e, 3 * e, 4 * e];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let num_kw = 1 + rng.gen_range(0..2);
            let kws: Vec<KeywordId> =
                (0..num_kw).map(|_| KeywordId(ranked[zipf.sample(&mut rng)] as u32)).collect();
            SgkQuery::new(kws, radii[rng.gen_range(0..radii.len())])
        })
        .collect()
}

fn build_cluster(
    net: &RoadNetwork,
    p: &Partitioning,
    transport: TransportKind,
    config: ClusterConfig,
) -> Cluster {
    let indexes = build_all_indexes(net, p, &IndexConfig::unbounded());
    Cluster::build(net, p, indexes, ClusterConfig { transport, ..config })
}

fn base_config() -> ClusterConfig {
    ClusterConfig {
        network: NetworkModel::instant(),
        deadline: Duration::from_millis(200),
        coverage_cache_bytes: 64 << 20,
        ..ClusterConfig::default()
    }
}

/// Every coordinator→worker frame is an initial dispatch, a retry, a
/// pre-warm, a hedge, or a quarantine probe — on any transport. Keepalives
/// never enter this ledger.
fn assert_ledger_closes(cluster: &Cluster) {
    let (c2w_frames, _) = cluster.link_message_totals();
    let (oc, rc) = (cluster.overload_counters(), cluster.recovery_counters());
    assert_eq!(
        c2w_frames,
        oc.dispatch_frames + rc.retries + rc.prewarm_frames + rc.hedges + rc.probe_frames,
        "frame ledger must reconcile exactly: {oc:?} {rc:?}"
    );
}

/// Transport parity: 200 Zipf queries through a TCP-linked cluster and a
/// channel-linked cluster produce identical answers (each exact against
/// the centralized oracle, zero inter-worker bytes) and *identical* frame
/// and byte ledgers — the socket's framing and keepalives are invisible to
/// the protocol's accounting.
#[test]
fn tcp_cluster_matches_channel_cluster_bit_for_bit() {
    let net = GridNetworkConfig::tiny(0x7C9).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let stream = zipf_stream(&net, 0x7C9, 200);

    let tcp = build_cluster(&net, &p, TransportKind::Tcp, base_config());
    let chan = build_cluster(&net, &p, TransportKind::Channel, base_config());
    let mut oracle = CentralizedCoverage::new(&net);

    for (i, q) in stream.iter().enumerate() {
        let a = tcp.run_sgkq(q).unwrap_or_else(|e| panic!("tcp query {i}: {e}"));
        let b = chan.run_sgkq(q).unwrap_or_else(|e| panic!("channel query {i}: {e}"));
        assert_eq!(a.results, b.results, "query {i}: tcp != channel");
        assert_eq!(a.results, oracle.sgkq(q).unwrap(), "query {i} not exact");
        assert_eq!(a.stats.results, b.stats.results, "query {i} result counts diverge");
        assert_eq!(a.stats.inter_worker_bytes, 0);
        assert_eq!(b.stats.inter_worker_bytes, 0);
    }

    // The ledgers agree frame-for-frame and byte-for-byte: same dispatches,
    // same responses, no keepalive ever counted.
    assert_eq!(tcp.link_message_totals(), chan.link_message_totals());
    assert_eq!(tcp.link_totals(), chan.link_totals());
    assert_ledger_closes(&tcp);
    assert_ledger_closes(&chan);
    tcp.shutdown();
    chan.shutdown();
}

/// A connection killed *mid-frame* (length prefix + half the payload, then
/// shutdown) in both directions: the torn frame can never complete, both
/// ends observe EOF, and the coordinator recovers through the existing
/// typed stall → narrowed retry → respawn → prewarm path with exact
/// results for every query.
#[test]
fn mid_frame_connection_cut_recovers_through_typed_retry_path() {
    let plan = FaultPlan::new(0x7CF)
        .cut_link_mid_frame(0, LinkDirection::CoordinatorToWorker, 2)
        .cut_link_mid_frame(1, LinkDirection::WorkerToCoordinator, 3);
    let net = GridNetworkConfig::tiny(0x7CF).generate();
    let p = MultilevelPartitioner::default().partition(&net, 2);
    let config = ClusterConfig { faults: Some(plan), ..base_config() };
    let cluster = build_cluster(&net, &p, TransportKind::Tcp, config);
    let stream = zipf_stream(&net, 0x7CF, 8);
    let mut oracle = CentralizedCoverage::new(&net);

    for (i, q) in stream.iter().enumerate() {
        let outcome = cluster.run_sgkq(q).unwrap_or_else(|e| panic!("query {i}: {e}"));
        assert_eq!(outcome.results, oracle.sgkq(q).unwrap(), "query {i} not exact across cuts");
        assert_eq!(outcome.stats.inter_worker_bytes, 0);
    }

    let rc = cluster.recovery_counters();
    assert!(rc.retries >= 1, "a torn frame must force a narrowed retry: {rc:?}");
    assert!(rc.timeouts >= 1, "the cut is only visible as a stall: {rc:?}");
    assert!(rc.respawned_workers >= 2, "both cut links must be respawned: {rc:?}");
    assert_eq!(rc.prewarm_frames, rc.respawned_workers, "every respawn is pre-warmed");
    assert_ledger_closes(&cluster);
    cluster.shutdown();
}

/// A stalled socket: the coordinator-side egress pump goes silent (no
/// payloads *and* no keepalives) for longer than the peer's read-timeout
/// budget. The worker tears the connection down, the coordinator sees the
/// silence as the same typed stall a dropped frame produces, and recovery
/// flows through retry + respawn with exact results.
#[test]
fn stalled_socket_trips_read_timeout_and_recovers() {
    let plan = FaultPlan::new(0x57A).stall_link(0, LinkDirection::CoordinatorToWorker, 2, 400);
    let net = GridNetworkConfig::tiny(0x57A).generate();
    let p = MultilevelPartitioner::default().partition(&net, 2);
    let config = ClusterConfig {
        faults: Some(plan),
        // Tight liveness budget so the 400 ms stall is caught quickly: an
        // idle sender proves liveness every 20 ms, silence past 100 ms is a
        // dead link.
        heartbeat: HeartbeatConfig {
            interval: Duration::from_millis(20),
            read_timeout: Duration::from_millis(100),
        },
        ..base_config()
    };
    let cluster = build_cluster(&net, &p, TransportKind::Tcp, config);
    let stream = zipf_stream(&net, 0x57A, 6);
    let mut oracle = CentralizedCoverage::new(&net);

    for (i, q) in stream.iter().enumerate() {
        let outcome = cluster.run_sgkq(q).unwrap_or_else(|e| panic!("query {i}: {e}"));
        assert_eq!(outcome.results, oracle.sgkq(q).unwrap(), "query {i} not exact across stall");
    }

    let rc = cluster.recovery_counters();
    assert!(rc.timeouts >= 1, "the stall must surface as a typed gather timeout: {rc:?}");
    assert!(rc.retries >= 1, "the stalled dispatch must be narrowly retried: {rc:?}");
    assert!(rc.respawned_workers >= 1, "the torn-down link must be respawned: {rc:?}");
    assert_ledger_closes(&cluster);
    cluster.shutdown();
}
