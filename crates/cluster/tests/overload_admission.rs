//! Overload-control properties:
//!
//! 1. A shed query costs **zero** wire traffic — neither
//!    `link_message_totals` nor `link_totals` move, in either direction —
//!    while the same query against a generous budget runs and moves bytes.
//! 2. The `retry_after` hint is monotone (non-decreasing) in the measured
//!    pressure, both as a pure function and as observed through
//!    [`PressureGauge::shed`] under growing backlog.

use proptest::prelude::*;

use disks_cluster::{retry_after, Cluster, ClusterConfig, NetworkModel, PressureGauge};
use disks_core::{
    build_all_indexes, CostParams, DFunction, IndexConfig, QueryError, QueryPlan, Term,
};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::{KeywordId, RoadNetwork};

fn build_cluster(net: &RoadNetwork, p: &Partitioning, cost_limit: u64) -> Cluster {
    let indexes = build_all_indexes(net, p, &IndexConfig::unbounded());
    Cluster::build(
        net,
        p,
        indexes,
        ClusterConfig {
            network: NetworkModel::instant(),
            coverage_cache_bytes: 64 << 20,
            cost_limit,
            brownout: f64::INFINITY,
            ..ClusterConfig::default()
        },
    )
}

/// The `rank`-th most frequent keyword actually present in the network.
fn ranked_keyword(net: &RoadNetwork, rank: usize) -> KeywordId {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    KeywordId(ranked[rank % ranked.len()] as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Shed ⇒ zero wire traffic; admitted ⇒ the wire moved. The same query
    /// against a budget of 1 (below any real plan's cost) and against an
    /// unlimited budget.
    #[test]
    fn shed_queries_leave_the_wire_untouched(seed in 0u64..500, rank in 0usize..5, mult in 1u64..4) {
        let net = GridNetworkConfig::tiny(seed).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let f = DFunction::single(
            Term::Keyword(ranked_keyword(&net, rank)),
            mult * net.avg_edge_weight(),
        );
        let cost = QueryPlan::lower(&f).estimated_cost(&CostParams::from_network(&net));
        prop_assert!(cost > 1, "a real plan costs more than the starvation budget");

        let shedder = build_cluster(&net, &p, 1);
        let frames_before = shedder.link_message_totals();
        let bytes_before = shedder.link_totals();
        match shedder.run(&f) {
            Err(QueryError::Overloaded { retry_after_millis }) => {
                prop_assert!(retry_after_millis >= 1);
            }
            other => {
                prop_assert!(false, "over-budget query must shed, got {other:?}");
            }
        }
        prop_assert_eq!(shedder.link_message_totals(), frames_before,
            "a shed query must not put a single frame on the wire");
        prop_assert_eq!(shedder.link_totals(), bytes_before,
            "a shed query must not put a single byte on the wire");
        let oc = shedder.overload_counters();
        prop_assert_eq!(oc.shed, 1);
        prop_assert_eq!(oc.admitted, 0);
        prop_assert_eq!(oc.dispatch_frames, 0);

        let generous = build_cluster(&net, &p, u64::MAX);
        let bytes_idle = generous.link_totals();
        let outcome = generous.run(&f);
        prop_assert!(outcome.is_ok(), "unlimited budget must admit: {:?}", outcome.err());
        prop_assert!(generous.link_totals().0 > bytes_idle.0, "admitted queries move bytes");
        prop_assert_eq!(generous.overload_counters().shed, 0);

        shedder.shutdown();
        generous.shutdown();
    }

    /// `retry_after` is monotone in pressure as a pure function.
    #[test]
    fn retry_after_is_monotone_in_pressure(a in 0u32..4000, b in 0u32..4000) {
        let (lo, hi) = (a.min(b) as f64 / 100.0, a.max(b) as f64 / 100.0);
        prop_assert!(retry_after(lo) <= retry_after(hi),
            "retry_after({lo}) > retry_after({hi})");
    }

    /// The hint a shed query receives through the gauge never shrinks as
    /// the backlog deepens.
    #[test]
    fn shed_hint_grows_with_backlog(limit in 1u64..1000, step in 1u64..500, n in 1usize..8) {
        let g = PressureGauge::new(limit, f64::INFINITY);
        let mut last = std::time::Duration::ZERO;
        for i in 0..n {
            let hint = g.shed(0, step);
            prop_assert!(hint >= last, "hint shrank at backlog step {i}");
            last = hint;
            g.charge(step);
        }
        prop_assert_eq!(g.counters().shed, n as u64);
    }
}
