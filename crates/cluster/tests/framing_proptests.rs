//! Property tests for the stream framing layer: whatever re-chunking the
//! kernel applies to a TCP byte stream — one byte at a time, giant
//! coalesced reads, anything between — the [`FrameAssembler`] must yield
//! exactly the frames the writer framed, in order, without ever panicking;
//! and a corrupt length prefix must fail typed *before* any allocation.

use proptest::prelude::*;

use disks_cluster::framing::{write_frame, write_keepalive, FrameAssembler, StreamEvent};
use disks_roadnet::DecodeError;

/// A frame payload mix spanning the real protocol's range: empty-adjacent
/// tiny frames through multi-KiB responses.
fn arb_frames() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..600), 0..12)
}

/// Split points for re-chunking a byte stream: a sorted subset of
/// positions, derived from arbitrary raw indices so shrinking stays
/// meaningful.
fn chunk_stream(bytes: &[u8], raw_cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut cuts: Vec<usize> =
        raw_cuts.iter().map(|&c| if bytes.is_empty() { 0 } else { c % bytes.len() }).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut chunks = Vec::new();
    let mut start = 0;
    for &c in &cuts {
        if c > start {
            chunks.push(bytes[start..c].to_vec());
            start = c;
        }
    }
    chunks.push(bytes[start..].to_vec());
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Frames interleaved with keepalives, delivered at arbitrary byte
    /// boundaries, reassemble to exactly the written sequence.
    #[test]
    fn reassembly_is_exact_under_arbitrary_chunking(
        frames in arb_frames(),
        keepalive_mask in proptest::collection::vec(any::<bool>(), 0..12),
        raw_cuts in proptest::collection::vec(any::<usize>(), 0..40),
    ) {
        let mut bytes = Vec::new();
        let mut expected = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            if keepalive_mask.get(i).copied().unwrap_or(false) {
                write_keepalive(&mut bytes).unwrap();
                expected.push(StreamEvent::Keepalive);
            }
            write_frame(&mut bytes, f).unwrap();
            expected.push(StreamEvent::Frame(bytes::Bytes::from(f.clone())));
        }

        let mut asm = FrameAssembler::new();
        let mut events = Vec::new();
        for chunk in chunk_stream(&bytes, &raw_cuts) {
            asm.extend(&chunk);
            while let Some(e) = asm.next_event().unwrap() {
                events.push(e);
            }
        }
        prop_assert_eq!(events, expected);
        prop_assert_eq!(asm.pending(), 0, "no bytes may be left behind");
    }

    /// A length prefix past the frame bound fails with the typed
    /// [`DecodeError::LengthOutOfRange`] carrying the claimed length —
    /// never a panic, never an allocation sized by attacker-chosen bytes.
    /// Valid frames decoded *before* the corruption are unaffected.
    #[test]
    fn corrupt_length_prefix_is_typed_error_not_allocation(
        frames in arb_frames(),
        excess in 1u64..u64::from(u32::MAX) - (64 << 20),
        raw_cuts in proptest::collection::vec(any::<usize>(), 0..20),
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            write_frame(&mut bytes, f).unwrap();
        }
        let bad_len = (64u64 << 20) + excess; // strictly past MAX_FRAME_LEN
        bytes.extend_from_slice(&(bad_len as u32).to_be_bytes());

        let mut asm = FrameAssembler::new();
        let mut decoded = 0usize;
        let mut error = None;
        for chunk in chunk_stream(&bytes, &raw_cuts) {
            asm.extend(&chunk);
            loop {
                match asm.next_event() {
                    Ok(Some(StreamEvent::Frame(_))) => decoded += 1,
                    Ok(Some(StreamEvent::Keepalive)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
            if error.is_some() {
                break;
            }
        }
        prop_assert_eq!(decoded, frames.len(), "every good frame decodes before the corruption");
        match error {
            Some(DecodeError::LengthOutOfRange { len, .. }) => {
                prop_assert_eq!(len, bad_len, "the typed error names the claimed length");
            }
            other => return Err(TestCaseError::fail(format!(
                "expected typed over-length error, got {other:?}"
            ))),
        }
    }
}
