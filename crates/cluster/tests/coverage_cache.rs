//! Coverage-cache equivalence: the per-worker cache is a pure
//! memoization, so a cached cluster and a cache-disabled cluster must be
//! *observably identical* on answers — over a Zipf-skewed stream, across a
//! mid-stream worker kill/respawn (whose fresh cache is pre-warmed with the
//! hottest slots before retry traffic reaches it), and against the
//! centralized oracle — while Theorem 3's zero inter-worker bytes holds in
//! both modes.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_cluster::{Cluster, ClusterConfig, FaultPlan, NetworkModel, TransportKind};
use disks_core::{build_all_indexes, CentralizedCoverage, IndexConfig, SgkQuery};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::zipf::Zipf;
use disks_roadnet::{KeywordId, RoadNetwork};

/// A seeded Zipf-skewed SGKQ stream: keywords drawn by popularity rank,
/// radii from a small pool — the repetition a real workload shows and the
/// cache exploits.
fn zipf_stream(net: &RoadNetwork, seed: u64, n: usize) -> Vec<SgkQuery> {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    ranked.truncate(10);
    let zipf = Zipf::new(ranked.len(), 1.0);
    let e = net.avg_edge_weight();
    let radii = [2 * e, 3 * e, 4 * e];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let num_kw = 1 + rng.gen_range(0..2);
            let kws: Vec<KeywordId> =
                (0..num_kw).map(|_| KeywordId(ranked[zipf.sample(&mut rng)] as u32)).collect();
            SgkQuery::new(kws, radii[rng.gen_range(0..radii.len())])
        })
        .collect()
}

fn build_cluster(
    net: &RoadNetwork,
    p: &Partitioning,
    cache_bytes: usize,
    kill_at: Option<u64>,
) -> Cluster {
    build_cluster_on(net, p, cache_bytes, kill_at, TransportKind::from_env())
}

fn build_cluster_on(
    net: &RoadNetwork,
    p: &Partitioning,
    cache_bytes: usize,
    kill_at: Option<u64>,
    transport: TransportKind,
) -> Cluster {
    let indexes = build_all_indexes(net, p, &IndexConfig::unbounded());
    let faults = kill_at.map(|nth| FaultPlan::new(0xCACE).kill_worker(0, nth));
    Cluster::build(
        net,
        p,
        indexes,
        ClusterConfig {
            network: NetworkModel::instant(),
            deadline: Duration::from_millis(200),
            coverage_cache_bytes: cache_bytes,
            faults,
            transport,
            // Pinned: these suites assert exact miss/prewarm counts of the
            // respawn-on-retry path, which the replicated CI lane would
            // bypass by re-routing retries to a surviving replica.
            replicas: 0,
            ..ClusterConfig::default()
        },
    )
}

/// The acceptance property: 200 Zipf queries, worker 0 killed mid-stream on
/// both clusters, and the cached and cache-disabled runs return identical
/// answers and identical `QueryStats.results` for every query — each one
/// also exact against the centralized oracle, with zero inter-worker bytes
/// in both modes.
#[test]
fn cached_and_disabled_clusters_answer_identically_across_respawn() {
    let net = GridNetworkConfig::tiny(0xD15C).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let stream = zipf_stream(&net, 0x5EED, 200);
    // The same deterministic kill schedule on both clusters: machine 0 dies
    // on its 100th request — mid-stream — and is respawned with a cold
    // cache on the cached cluster.
    let cached = build_cluster(&net, &p, 64 << 20, Some(100));
    let uncached = build_cluster(&net, &p, 0, Some(100));
    let mut oracle = CentralizedCoverage::new(&net);

    for (i, q) in stream.iter().enumerate() {
        let a = cached.run_sgkq(q).unwrap_or_else(|e| panic!("cached query {i}: {e}"));
        let b = uncached.run_sgkq(q).unwrap_or_else(|e| panic!("uncached query {i}: {e}"));
        assert_eq!(a.results, b.results, "query {i} answers diverge");
        assert_eq!(a.stats.results, b.stats.results, "query {i} result counts diverge");
        assert_eq!(a.results, oracle.sgkq(q).unwrap(), "query {i} not exact");
        assert_eq!(a.stats.inter_worker_bytes, 0);
        assert_eq!(b.stats.inter_worker_bytes, 0);
    }

    // The kill fired and was recovered on both clusters.
    assert!(cached.recovery_counters().respawned_workers >= 1);
    assert!(uncached.recovery_counters().respawned_workers >= 1);
    // The cached cluster actually exercised its cache; the disabled one
    // counted nothing — its absence is what makes the parity meaningful.
    let counters = cached.cache_counters();
    assert!(counters.hits > 0, "Zipf stream must produce cache hits");
    assert!(
        counters.hit_rate() > 0.5,
        "hit rate {} too low for a Zipf stream",
        counters.hit_rate()
    );
    assert_eq!(uncached.cache_counters(), disks_cluster::CacheCounters::default());
    cached.shutdown();
    uncached.shutdown();
}

/// A respawned worker is pre-warmed with the hottest coverage slots before
/// any retry traffic reaches it: the same query run three times with a kill
/// at the second run shows *no* extra cold-cache miss on the wire — the
/// respawn's fresh cache resolved the hot slot during the `Prewarm` frame
/// (which carries no response, so the wire ledger records only run 1's
/// misses), and the retried task lands on a warm cache.
#[test]
fn respawned_worker_is_prewarmed_before_retry_traffic() {
    let net = GridNetworkConfig::tiny(0xC01D).generate();
    let p = MultilevelPartitioner::default().partition(&net, 2);
    let cluster = build_cluster(&net, &p, 64 << 20, Some(2));
    let freqs = net.keyword_frequencies();
    let kw = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
    // Fat radius: both fragments' coverages must clear the 16-node content
    // bypass threshold, or the exact miss pin below would count re-misses
    // of a deliberately uncached slot.
    let q = SgkQuery::new(vec![kw], 6 * net.avg_edge_weight());
    let mut oracle = CentralizedCoverage::new(&net);
    let expect = oracle.sgkq(&q).unwrap();

    // Run 1 warms both workers (and the coordinator's slot-heat ledger);
    // run 2 kills machine 0 — the respawn is pre-warmed, so its retried
    // task hits; run 3 hits everywhere.
    for i in 0..3 {
        let outcome = cluster.run_sgkq(&q).unwrap_or_else(|e| panic!("run {i}: {e}"));
        assert_eq!(outcome.results, expect, "run {i} not exact across respawn");
    }
    let recovery = cluster.recovery_counters();
    assert!(recovery.respawned_workers >= 1, "kill must have fired");
    assert!(recovery.prewarm_frames >= 1, "respawn must have been pre-warmed");
    assert!(recovery.prewarmed_slots >= 1, "pre-warm must have shipped the hot slot");
    let counters = cluster.cache_counters();
    // Without pre-warming the cold respawn would re-miss its slot on the
    // retried task (≥3 wire misses); pre-warming absorbs that miss off the
    // response ledger, so exactly run 1's two misses remain.
    assert_eq!(counters.misses, 2, "pre-warm must absorb the cold re-miss: {counters:?}");
    assert!(counters.hits >= 3, "retried task and run 3 must all hit: {counters:?}");
    cluster.shutdown();
}

/// The kill → respawn → prewarm machinery is transport-invariant: the same
/// deterministic kill schedule over an in-process channel link and over a
/// real TCP link produces *identical* recovery counters (respawns,
/// pre-warm frames and slots), identical cache counters, identical frame
/// ledgers, and identical exact answers — the socket adds framing and
/// keepalives, never protocol behavior.
#[test]
fn kill_respawn_prewarm_counters_are_identical_across_transports() {
    let net = GridNetworkConfig::tiny(0xC01D).generate();
    let p = MultilevelPartitioner::default().partition(&net, 2);
    let freqs = net.keyword_frequencies();
    let kw = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
    let q = SgkQuery::new(vec![kw], 6 * net.avg_edge_weight());
    let mut oracle = CentralizedCoverage::new(&net);
    let expect = oracle.sgkq(&q).unwrap();

    let run = |transport: TransportKind| {
        let cluster = build_cluster_on(&net, &p, 64 << 20, Some(2), transport);
        for i in 0..3 {
            let outcome =
                cluster.run_sgkq(&q).unwrap_or_else(|e| panic!("{transport:?} run {i}: {e}"));
            assert_eq!(outcome.results, expect, "{transport:?} run {i} not exact across respawn");
        }
        let recovery = cluster.recovery_counters();
        let cache = cluster.cache_counters();
        let ledger = cluster.link_message_totals();
        cluster.shutdown();
        (recovery, cache, ledger)
    };

    let (rc_chan, cache_chan, ledger_chan) = run(TransportKind::Channel);
    let (rc_tcp, cache_tcp, ledger_tcp) = run(TransportKind::Tcp);

    assert!(rc_chan.respawned_workers >= 1, "kill must have fired: {rc_chan:?}");
    assert!(rc_chan.prewarm_frames >= 1, "respawn must have been pre-warmed: {rc_chan:?}");
    assert_eq!(rc_chan, rc_tcp, "recovery counters must be transport-invariant");
    assert_eq!(cache_chan, cache_tcp, "cache counters must be transport-invariant");
    assert_eq!(ledger_chan, ledger_tcp, "frame ledgers must be transport-invariant");
}
