//! Health-aware dispatch: straggler hedging over replicas, quarantine with
//! probation, and the knob-off wire-parity guarantees (DESIGN.md §6j).
//!
//! The chaos half stalls or delays the hottest fragment's primary mid-stream
//! and demands the hedge recover the query long before the transport read
//! timeout — byte-identical answers, no retries, no respawns — on both the
//! TCP and the in-process channel transport, plus the nasty case where the
//! hedge *target* dies mid-hedge and recovery falls back to the ordinary
//! timeout → narrowed retry → respawn path. The property half pins the
//! suspicion score's shape (silence never lowers it, regular arrivals pull
//! it back under the quarantine threshold) and proves the whole health
//! plane is wire-invisible while its knobs are off. Throughout, the frame
//! ledger must close in its extended form:
//!
//! ```text
//! c2w frames == dispatch_frames + retries + prewarm_frames + hedges + probes
//! ```

use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_cluster::{
    Cluster, ClusterConfig, FaultPlan, HealthBoard, HealthConfig, HeartbeatConfig,
    HeartbeatConfigError, HedgeMode, LinkDirection, NetworkModel, RoutePolicy, TransportKind,
};
use disks_core::{build_all_indexes, CentralizedCoverage, IndexConfig, SgkQuery};
use disks_partition::{FragmentId, MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::zipf::Zipf;
use disks_roadnet::{KeywordId, RoadNetwork};

/// A seeded Zipf-skewed SGKQ stream over the top-10 keywords — the skew
/// that concentrates load on one fragment's replica set.
fn zipf_stream(net: &RoadNetwork, seed: u64, n: usize) -> Vec<SgkQuery> {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    ranked.truncate(10);
    let zipf = Zipf::new(ranked.len(), 1.0);
    let e = net.avg_edge_weight();
    let radii = [2 * e, 3 * e, 4 * e];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let num_kw = 1 + rng.gen_range(0..2);
            let kws: Vec<KeywordId> =
                (0..num_kw).map(|_| KeywordId(ranked[zipf.sample(&mut rng)] as u32)).collect();
            SgkQuery::new(kws, radii[rng.gen_range(0..radii.len())])
        })
        .collect()
}

fn build(
    net: &RoadNetwork,
    p: &Partitioning,
    transport: TransportKind,
    config: ClusterConfig,
) -> Cluster {
    let indexes = build_all_indexes(net, p, &IndexConfig::unbounded());
    Cluster::build(net, p, indexes, ClusterConfig { transport, ..config })
}

/// Explicit knobs everywhere `ClusterConfig::default()` would read the
/// environment, so these tests mean the same thing in every CI lane.
fn base_config() -> ClusterConfig {
    ClusterConfig {
        network: NetworkModel::instant(),
        deadline: Duration::from_millis(1000),
        coverage_cache_bytes: 64 << 20,
        replicas: 1,
        route: RoutePolicy::LeastLoaded,
        hedge: HedgeMode::Off,
        hedge_ms: 50,
        quarantine: false,
        ..ClusterConfig::default()
    }
}

/// Every coordinator→worker frame is an initial dispatch, a narrowed retry,
/// a pre-warm, a hedge, or a quarantine probe — the extended ledger.
fn assert_ledger_closes(cluster: &Cluster) {
    let (c2w_frames, _) = cluster.link_message_totals();
    let (oc, rc) = (cluster.overload_counters(), cluster.recovery_counters());
    assert_eq!(
        c2w_frames,
        oc.dispatch_frames + rc.retries + rc.prewarm_frames + rc.hedges + rc.probe_frames,
        "frame ledger must reconcile exactly: {oc:?} {rc:?}"
    );
}

/// The acceptance chaos case on the socket transport: the hottest
/// fragment's primary has its worker→coordinator egress pump stalled for
/// 400 ms mid-stream (payloads *and* keepalives stop — exactly what a
/// wedged peer looks like). The adaptive hedge deadline fires within tens
/// of milliseconds, re-dispatches the narrowed plan to the surviving
/// replica, and the first answer wins: every query exact, zero timeouts,
/// zero retries, zero respawns — recovery lands well before the 2 s read
/// timeout would have torn the link down and paid a full respawn.
#[test]
fn hedge_recovers_stalled_tcp_primary_before_read_timeout() {
    let net = GridNetworkConfig::tiny(0x4ED6).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    // Fragment 0 is the declared hotspot: primary machine 0, one replica.
    // Machine 0's second response frame is held hostage for 400 ms.
    let plan = FaultPlan::new(0x4ED6).stall_link(0, LinkDirection::WorkerToCoordinator, 2, 400);
    let cluster = build(
        &net,
        &p,
        TransportKind::Tcp,
        ClusterConfig {
            placement_heat: Some(vec![1000, 1, 1]),
            faults: Some(plan),
            hedge: HedgeMode::Adaptive,
            hedge_ms: 10,
            heartbeat: HeartbeatConfig {
                interval: Duration::from_millis(50),
                read_timeout: Duration::from_millis(2000),
            },
            ..base_config()
        },
    );
    assert_eq!(cluster.placement().machine_of(FragmentId(0)), 0);
    assert_eq!(cluster.placement().replicas_of(FragmentId(0)).len(), 2);

    let stream = zipf_stream(&net, 0x4ED6, 8);
    let mut oracle = CentralizedCoverage::new(&net);
    for (i, q) in stream.iter().enumerate() {
        let o = cluster.run_sgkq(q).unwrap_or_else(|e| panic!("query {i}: {e}"));
        assert_eq!(o.results, oracle.sgkq(q).unwrap(), "query {i} not exact across stall");
        assert_eq!(o.stats.inter_worker_bytes, 0, "query {i}: Theorem 3");
    }

    let rc = cluster.recovery_counters();
    assert!(rc.hedges >= 1, "the stalled answer must be hedged: {rc:?}");
    assert!(rc.hedge_wins >= 1, "the replica's answer must win the race: {rc:?}");
    assert_eq!(rc.timeouts, 0, "hedging must preempt the stall timeout: {rc:?}");
    assert_eq!(rc.retries, 0, "hedges are not retries: {rc:?}");
    assert_eq!(rc.respawned_workers, 0, "recovery must beat the read timeout: {rc:?}");
    assert_ledger_closes(&cluster);
    cluster.shutdown();
}

/// The same chaos shape on the in-process channel transport (no keepalives,
/// no read timeout — the delay simply parks the worker thread for 400 ms),
/// with the *fixed* hedge deadline: identical acceptance — exact answers
/// with zero timeouts, retries, or respawns, and at least one hedge win.
#[test]
fn hedge_recovers_delayed_channel_primary() {
    let net = GridNetworkConfig::tiny(0x4ED7).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let plan = FaultPlan::new(0x4ED7).delay_frame(0, LinkDirection::WorkerToCoordinator, 2, 400);
    let cluster = build(
        &net,
        &p,
        TransportKind::Channel,
        ClusterConfig {
            placement_heat: Some(vec![1000, 1, 1]),
            faults: Some(plan),
            hedge: HedgeMode::Fixed,
            hedge_ms: 10,
            ..base_config()
        },
    );
    assert_eq!(cluster.placement().replicas_of(FragmentId(0)).len(), 2);

    let stream = zipf_stream(&net, 0x4ED7, 8);
    let mut oracle = CentralizedCoverage::new(&net);
    for (i, q) in stream.iter().enumerate() {
        let o = cluster.run_sgkq(q).unwrap_or_else(|e| panic!("query {i}: {e}"));
        assert_eq!(o.results, oracle.sgkq(q).unwrap(), "query {i} not exact across delay");
    }

    let rc = cluster.recovery_counters();
    assert!(rc.hedges >= 1, "the delayed answer must be hedged: {rc:?}");
    assert!(rc.hedge_wins >= 1, "the replica's answer must win the race: {rc:?}");
    assert_eq!(rc.timeouts, 0, "hedging must preempt the stall timeout: {rc:?}");
    assert_eq!(rc.retries, 0, "hedges are not retries: {rc:?}");
    assert_eq!(rc.respawned_workers, 0, "no link ever died: {rc:?}");
    assert_ledger_closes(&cluster);
    cluster.shutdown();
}

/// The nasty case: the hedge *target* is killed by the hedge frame itself.
/// Two fragments fully replicated across two machines; machine 0's answer
/// for fragment 0 is delayed 600 ms, the 10 ms hedge re-dispatches fragment
/// 0 to machine 1 — whose second request (the hedge) is its kill trigger.
/// The hedge can never win; the slot's one-hedge budget is spent; recovery
/// falls back to the ordinary stall path: timeout at the 120 ms deadline,
/// narrowed retry rerouted to machine 1, which is found dead, respawned,
/// pre-warmed, and answers exactly. The respawned worker must not inherit
/// the one-shot kill, and the ledger closes across all five frame kinds.
#[test]
fn killed_hedge_target_falls_back_to_retry() {
    let net = GridNetworkConfig::tiny(0x4ED8).generate();
    let p = MultilevelPartitioner::default().partition(&net, 2);
    let plan = FaultPlan::new(0x4ED8)
        .delay_frame(0, LinkDirection::WorkerToCoordinator, 1, 600)
        .kill_worker(1, 2);
    let cluster = build(
        &net,
        &p,
        TransportKind::Channel,
        ClusterConfig {
            faults: Some(plan),
            hedge: HedgeMode::Fixed,
            hedge_ms: 10,
            deadline: Duration::from_millis(120),
            ..base_config()
        },
    );
    // Fully replicated: machine 1 is the only possible hedge target for
    // fragment 0, and machine 1's first request is query 1's own dispatch.
    assert_eq!(cluster.placement().replicas_of(FragmentId(0)).len(), 2);

    let q = &zipf_stream(&net, 0x4ED8, 1)[0];
    let mut oracle = CentralizedCoverage::new(&net);
    let o = cluster.run_sgkq(q).expect("query must survive a dying hedge target");
    assert_eq!(o.results, oracle.sgkq(q).unwrap(), "not exact across hedge-target death");
    assert!(o.stats.degraded_fragments.is_empty(), "no degradation allowed");

    let rc = cluster.recovery_counters();
    assert_eq!(rc.hedges, 1, "exactly one hedge per slot: {rc:?}");
    assert_eq!(rc.hedge_wins, 0, "a dead target can never win: {rc:?}");
    assert!(rc.timeouts >= 1, "the lost hedge must fall back to the stall timeout: {rc:?}");
    assert!(rc.retries >= 1, "recovery must ride the narrowed-retry path: {rc:?}");
    assert!(rc.respawned_workers >= 1, "the dead hedge target must respawn: {rc:?}");
    assert_eq!(rc.prewarm_frames, rc.respawned_workers, "every respawn is pre-warmed");
    assert_ledger_closes(&cluster);
    cluster.shutdown();
}

/// Quarantine probation end to end: the hottest fragment's primary parks
/// for 600 ms, its silence crosses the quarantine threshold (expected
/// interval 5 ms, so ~40 ms of dead air), routing stops offering it
/// fragments, jittered backoff probes pile up in its queue — and when the
/// worker wakes, the burst of probe acks clears probation and reinstates
/// it. Queries stay exact throughout, and the probes are the only frames
/// beyond dispatches and hedges on the wire.
#[test]
fn quarantined_machine_is_probed_and_reinstated() {
    let net = GridNetworkConfig::tiny(0x4ED9).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let plan = FaultPlan::new(0x4ED9).delay_frame(0, LinkDirection::WorkerToCoordinator, 1, 600);
    let cluster = build(
        &net,
        &p,
        TransportKind::Channel,
        ClusterConfig {
            placement_heat: Some(vec![1000, 1, 1]),
            faults: Some(plan),
            hedge: HedgeMode::Fixed,
            hedge_ms: 10,
            quarantine: true,
            // The channel transport sends no keepalives; the interval only
            // sets the health board's expected proof-of-life cadence.
            heartbeat: HeartbeatConfig {
                interval: Duration::from_millis(5),
                read_timeout: Duration::from_millis(500),
            },
            ..base_config()
        },
    );

    let stream = zipf_stream(&net, 0x4ED9, 60);
    let mut oracle = CentralizedCoverage::new(&net);
    for (i, q) in stream.iter().enumerate() {
        let o = cluster.run_sgkq(q).unwrap_or_else(|e| panic!("query {i}: {e}"));
        assert_eq!(o.results, oracle.sgkq(q).unwrap(), "query {i} not exact under quarantine");
    }
    // Keep the stream flowing until the sleeper has woken (600 ms), acked
    // its queued probes, and been reinstated — gathers are what drive the
    // health tick, so reinstatement needs live traffic to land. Pace the
    // tail on the wall clock: the queries themselves finish in microseconds.
    let started = std::time::Instant::now();
    let mut extra = 0usize;
    while cluster.recovery_counters().reinstatements == 0
        && started.elapsed() < Duration::from_secs(5)
    {
        let q = &stream[extra % stream.len()];
        let o = cluster.run_sgkq(q).unwrap_or_else(|e| panic!("tail query {extra}: {e}"));
        assert_eq!(o.results, oracle.sgkq(q).unwrap(), "tail query {extra} not exact");
        extra += 1;
        std::thread::sleep(Duration::from_millis(1));
    }

    let rc = cluster.recovery_counters();
    assert!(rc.hedges >= 1, "the parked answer must first be hedged: {rc:?}");
    assert!(rc.quarantines >= 1, "40 ms of dead air must quarantine machine 0: {rc:?}");
    assert!(rc.probe_frames >= 1, "quarantine must be probed: {rc:?}");
    assert!(rc.reinstatements >= 1, "the woken worker's acks must reinstate it: {rc:?}");
    assert_eq!(rc.respawned_workers, 0, "quarantine is soft — no respawn: {rc:?}");
    assert_ledger_closes(&cluster);
    cluster.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Monotonicity: whatever arrival/dispatch/service history a machine
    /// has, more silence never lowers its suspicion score.
    #[test]
    fn suspicion_never_decreases_with_silence(
        events in proptest::collection::vec((0usize..3, 0u64..5_000_000, any::<bool>()), 0..40),
        services in proptest::collection::vec((0usize..3, 0u64..2_000_000), 0..20),
        t1 in 0u64..20_000_000u64,
        dt in 0u64..20_000_000u64,
    ) {
        let mut board = HealthBoard::new(3, HealthConfig::default());
        let mut evs = events;
        evs.sort_by_key(|&(_, t, _)| t);
        for (m, t, arrival) in evs {
            if arrival {
                board.observe_arrival(m, t);
            } else {
                board.observe_dispatch(m, t);
            }
        }
        for (m, micros) in services {
            board.observe_service(m, micros);
        }
        for m in 0..3 {
            let early = board.suspicion(m, t1);
            let late = board.suspicion(m, t1.saturating_add(dt));
            prop_assert!(
                late >= early,
                "longer silence lowered suspicion for {}: {} -> {}", m, early, late
            );
        }
    }

    /// Recovery: after any history — including service times that look
    /// arbitrarily slow — a run of regular arrivals pulls the score back
    /// below the quarantine threshold (the slowness penalty is bounded at
    /// the suspect threshold precisely so service times alone can never
    /// quarantine a live machine).
    #[test]
    fn regular_arrivals_pull_suspicion_below_quarantine(
        events in proptest::collection::vec((0usize..3, 0u64..5_000_000, any::<bool>()), 0..40),
        services in proptest::collection::vec(0u64..10_000_000u64, 0..20),
    ) {
        let cfg = HealthConfig::default();
        let mut board = HealthBoard::new(3, cfg.clone());
        let mut evs = events;
        evs.sort_by_key(|&(_, t, _)| t);
        for (m, t, arrival) in evs {
            if arrival {
                board.observe_arrival(m, t);
            } else {
                board.observe_dispatch(m, t);
            }
        }
        // Make machine 0 look as slow as the history allows (worst case for
        // the bounded penalty) while its peers stay fast.
        for micros in services {
            board.observe_service(0, micros);
        }
        board.observe_service(1, 100);
        board.observe_service(2, 100);
        let step = cfg.expected_interval.as_micros() as u64;
        let mut t = 6_000_000u64;
        for _ in 0..5 {
            board.observe_arrival(0, t);
            t += step;
        }
        let score = board.suspicion(0, t - step);
        prop_assert!(
            score < cfg.quarantine_threshold,
            "regular arrivals must clear quarantine: {} >= {}", score, cfg.quarantine_threshold
        );
    }
}

proptest! {
    // Each case runs three full 200-query clusters; a couple of seeds is
    // plenty for a parity property that is either exact or broken.
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// With `DISKS_HEDGE=off` the entire health plane is wire-invisible:
    /// answers, frame counts, and byte counts on a 200-query Zipf stream
    /// are bit-identical whether the health knobs are absent, quarantine is
    /// armed on a healthy cluster, or a hedge deadline is armed but never
    /// reached. Dormant machinery costs nothing on the wire.
    #[test]
    fn dormant_health_plane_is_wire_invisible(seed in any::<u64>()) {
        let net = GridNetworkConfig::tiny(0xD0FF).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let stream = zipf_stream(&net, seed, 200);
        let run = |hedge: HedgeMode, hedge_ms: u64, quarantine: bool| {
            let cluster = build(
                &net,
                &p,
                TransportKind::Channel,
                ClusterConfig { hedge, hedge_ms, quarantine, ..base_config() },
            );
            let answers: Vec<_> = stream
                .iter()
                .map(|q| cluster.run_sgkq(q).expect("fault-free").results)
                .collect();
            let frames = cluster.link_message_totals();
            let bytes = cluster.link_totals();
            let rc = cluster.recovery_counters();
            cluster.shutdown();
            (answers, frames, bytes, rc)
        };
        let (a, fa, ba, ra) = run(HedgeMode::Off, 50, false);
        let (b, fb, bb, rb) = run(HedgeMode::Off, 50, true);
        // A hedge armed 60 s out never fires: arming must be free too.
        let (c, fc, bc, rc_) = run(HedgeMode::Fixed, 60_000, false);
        prop_assert_eq!(&a, &b, "quarantine-armed healthy cluster diverged");
        prop_assert_eq!(&a, &c, "armed-but-unfired hedge diverged");
        prop_assert_eq!(fa, fb);
        prop_assert_eq!(fa, fc);
        prop_assert_eq!(ba, bb);
        prop_assert_eq!(ba, bc);
        for rc in [&ra, &rb, &rc_] {
            prop_assert_eq!(rc.hedges, 0);
            prop_assert_eq!(rc.hedge_wins, 0);
            prop_assert_eq!(rc.quarantines, 0);
            prop_assert_eq!(rc.probe_frames, 0);
        }
    }
}

/// `HeartbeatConfig::checked` rejects nonsense with *typed* errors an
/// operator (or `try_from_env`) can match on, and passes valid budgets
/// through unchanged.
#[test]
fn heartbeat_validation_yields_typed_errors() {
    assert!(matches!(
        HeartbeatConfig::checked(Duration::ZERO, Duration::from_millis(100)),
        Err(HeartbeatConfigError::ZeroInterval)
    ));
    assert!(matches!(
        HeartbeatConfig::checked(Duration::from_millis(10), Duration::ZERO),
        Err(HeartbeatConfigError::ZeroReadTimeout)
    ));
    // The read timeout must *strictly* exceed the keepalive interval, or a
    // perfectly healthy idle link would flap on schedule.
    match HeartbeatConfig::checked(Duration::from_millis(100), Duration::from_millis(100)) {
        Err(HeartbeatConfigError::ReadTimeoutNotAboveInterval { interval, read_timeout }) => {
            assert_eq!(interval, Duration::from_millis(100));
            assert_eq!(read_timeout, Duration::from_millis(100));
        }
        other => panic!("expected the typed gap error, got {other:?}"),
    }
    let ok = HeartbeatConfig::checked(Duration::from_millis(20), Duration::from_millis(100))
        .expect("a 5x budget is valid");
    assert_eq!(ok.interval, Duration::from_millis(20));
    assert_eq!(ok.read_timeout, Duration::from_millis(100));
    // Typed errors still render an actionable message.
    let msg =
        HeartbeatConfig::checked(Duration::ZERO, Duration::from_millis(1)).unwrap_err().to_string();
    assert!(!msg.is_empty());
}
