//! Fault-tolerance integration tests: every schedule here is a seeded,
//! deterministic [`FaultPlan`], and every recovered query must still equal
//! the centralized baseline with **zero** inter-worker bytes — Lemma 1's
//! per-fragment union and Theorem 3's communication bound are invariant
//! under retry, duplication, and worker failover because fragment tasks are
//! stateless and idempotent.

use std::time::{Duration, Instant};

use disks_cluster::{Cluster, ClusterConfig, FaultPlan, LinkDirection, NetworkModel};
use disks_core::{build_all_indexes, CentralizedCoverage, IndexConfig, QueryError, SgkQuery};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::{KeywordId, RoadNetwork};

fn setup(seed: u64, k: usize, config: ClusterConfig) -> (RoadNetwork, Cluster) {
    let net = GridNetworkConfig::tiny(seed).generate();
    let p: Partitioning = MultilevelPartitioner::default().partition(&net, k);
    let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
    let cluster = Cluster::build(&net, &p, indexes, config);
    (net, cluster)
}

fn top_keyword(net: &RoadNetwork) -> KeywordId {
    let freqs = net.keyword_frequencies();
    let best = (0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap();
    KeywordId(best as u32)
}

/// A config tuned for fast fault tests: instant network, short stall
/// deadline so dropped frames are re-dispatched within milliseconds.
fn fault_config(faults: FaultPlan) -> ClusterConfig {
    ClusterConfig {
        network: NetworkModel::instant(),
        deadline: Duration::from_millis(200),
        faults: Some(faults),
        ..ClusterConfig::default()
    }
}

/// The acceptance scenario: one worker panics, one response frame is
/// dropped, one is duplicated — all in a single seeded plan — and the
/// distributed answer is still exactly the centralized one, with retries
/// recorded and no worker-to-worker traffic.
#[test]
fn combined_panic_drop_duplicate_still_exact() {
    let plan = FaultPlan::new(90)
        .panic_worker(1, 1)
        .drop_frame(0, LinkDirection::WorkerToCoordinator, 1)
        .duplicate_frame(2, LinkDirection::WorkerToCoordinator, 1);
    let (net, cluster) = setup(90, 3, fault_config(plan));
    let q = SgkQuery::new(vec![top_keyword(&net)], 4 * net.avg_edge_weight());

    let outcome = cluster.run_sgkq(&q).unwrap();

    let mut central = CentralizedCoverage::new(&net);
    assert_eq!(outcome.results, central.sgkq(&q).unwrap());
    assert!(outcome.stats.retries > 0, "panic + drop must force retries");
    assert_eq!(outcome.stats.inter_worker_bytes, 0);
    assert!(outcome.stats.rounds > 1);
    cluster.shutdown();
}

#[test]
fn dropped_response_frame_is_redispatched() {
    let plan = FaultPlan::new(91).drop_frame(0, LinkDirection::WorkerToCoordinator, 1);
    let (net, cluster) = setup(91, 2, fault_config(plan));
    let q = SgkQuery::new(vec![top_keyword(&net)], 3 * net.avg_edge_weight());

    let outcome = cluster.run_sgkq(&q).unwrap();

    let mut central = CentralizedCoverage::new(&net);
    assert_eq!(outcome.results, central.sgkq(&q).unwrap());
    assert!(outcome.stats.retries >= 1);
    assert!(outcome.stats.timeouts >= 1, "the drop is only visible as a stall");
    assert!(cluster.recovery_counters().timeouts >= 1);
    cluster.shutdown();
}

#[test]
fn duplicated_response_frame_is_deduplicated() {
    let plan = FaultPlan::new(92).duplicate_frame(0, LinkDirection::WorkerToCoordinator, 1);
    let (net, cluster) = setup(92, 2, fault_config(plan));
    let q = SgkQuery::new(vec![top_keyword(&net)], 3 * net.avg_edge_weight());

    let outcome = cluster.run_sgkq(&q).unwrap();

    let mut central = CentralizedCoverage::new(&net);
    assert_eq!(outcome.results, central.sgkq(&q).unwrap());
    assert!(outcome.stats.duplicate_responses >= 1);
    // A duplicate alone must not force a retry round.
    assert_eq!(outcome.stats.retries, 0);
    cluster.shutdown();
}

#[test]
fn corrupt_frame_is_counted_ignored_and_recovered() {
    let plan = FaultPlan::new(93).corrupt_frame(0, LinkDirection::WorkerToCoordinator, 1);
    let (net, cluster) = setup(93, 2, fault_config(plan));
    let q = SgkQuery::new(vec![top_keyword(&net)], 3 * net.avg_edge_weight());

    let outcome = cluster.run_sgkq(&q).unwrap();

    let mut central = CentralizedCoverage::new(&net);
    assert_eq!(outcome.results, central.sgkq(&q).unwrap());
    assert!(outcome.stats.corrupt_frames >= 1);
    assert!(outcome.stats.retries >= 1, "the corrupted response must be re-requested");
    cluster.shutdown();
}

#[test]
fn delayed_frame_within_deadline_needs_no_retry() {
    let plan = FaultPlan::new(94).delay_frame(0, LinkDirection::WorkerToCoordinator, 1, 50);
    let (net, cluster) = setup(94, 2, fault_config(plan));
    let q = SgkQuery::new(vec![top_keyword(&net)], 3 * net.avg_edge_weight());

    let outcome = cluster.run_sgkq(&q).unwrap();

    let mut central = CentralizedCoverage::new(&net);
    assert_eq!(outcome.results, central.sgkq(&q).unwrap());
    assert_eq!(outcome.stats.retries, 0);
    assert_eq!(outcome.stats.rounds, 1);
    cluster.shutdown();
}

/// A killed worker with no retry budget: the query fails *quickly* with a
/// typed [`QueryError::WorkerTimeout`] naming the silent fragments, instead
/// of hanging; the next query succeeds on a respawned worker.
#[test]
fn killed_worker_yields_typed_timeout_then_respawns() {
    let plan = FaultPlan::new(95).kill_worker(0, 1);
    let config = ClusterConfig { max_attempts: 1, ..fault_config(plan) };
    let (net, cluster) = setup(95, 2, config);
    let q = SgkQuery::new(vec![top_keyword(&net)], 3 * net.avg_edge_weight());

    let start = Instant::now();
    match cluster.run_sgkq(&q) {
        Err(QueryError::WorkerTimeout { fragments, attempts }) => {
            assert!(!fragments.is_empty());
            assert_eq!(attempts, 1);
        }
        other => panic!("expected WorkerTimeout, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "timeout must be bounded by the deadline, not hang"
    );

    // The dead machine is detected at the next dispatch and respawned from
    // the retained index spec; the same query now succeeds exactly.
    let outcome = cluster.run_sgkq(&q).unwrap();
    let mut central = CentralizedCoverage::new(&net);
    assert_eq!(outcome.results, central.sgkq(&q).unwrap());
    assert!(outcome.stats.respawned_workers >= 1);
    assert!(cluster.recovery_counters().respawned_workers >= 1);
    cluster.shutdown();
}

/// With `allow_partial`, an exhausted retry budget degrades instead of
/// failing: the unanswered fragments are reported and the result is the
/// union of the fragments that did answer (a subset of the exact answer,
/// by Lemma 1).
#[test]
fn exhausted_budget_with_allow_partial_degrades() {
    let plan = FaultPlan::new(96).kill_worker(0, 1);
    let config = ClusterConfig { max_attempts: 1, allow_partial: true, ..fault_config(plan) };
    let (net, cluster) = setup(96, 2, config);
    let q = SgkQuery::new(vec![top_keyword(&net)], 4 * net.avg_edge_weight());

    let outcome = cluster.run_sgkq(&q).unwrap();

    assert!(!outcome.stats.degraded_fragments.is_empty());
    let mut central = CentralizedCoverage::new(&net);
    let exact = central.sgkq(&q).unwrap();
    assert!(
        outcome.results.iter().all(|n| exact.contains(n)),
        "a degraded answer must be a subset of the exact answer"
    );
    cluster.shutdown();
}

/// An aborted query's in-flight responses show up during the *next* gather
/// and must be dropped as out-of-window, not spliced into the wrong result.
/// (Invalid queries no longer produce this scenario — admission rejects
/// them before dispatch — so the abort here is a retry-budget exhaustion
/// while both responses are stuck on a slow link.)
#[test]
fn stale_responses_from_aborted_query_are_dropped_out_of_window() {
    // Both workers' first responses are delayed past the stall deadline and
    // the retry budget is 1, so the first gather aborts with WorkerTimeout
    // while two frames are still in flight.
    let plan = FaultPlan::new(97)
        .delay_frame(0, LinkDirection::WorkerToCoordinator, 1, 600)
        .delay_frame(1, LinkDirection::WorkerToCoordinator, 1, 600);
    let config = ClusterConfig {
        network: NetworkModel::instant(),
        deadline: Duration::from_millis(150),
        max_attempts: 1,
        faults: Some(plan),
        ..ClusterConfig::default()
    };
    let (net, cluster) = setup(97, 2, config);
    let kw = top_keyword(&net);

    let q = SgkQuery::new(vec![kw], 3 * net.avg_edge_weight());
    assert!(matches!(cluster.run_sgkq(&q), Err(QueryError::WorkerTimeout { .. })));

    // Wait for the delayed frames to land in the response channel, then
    // verify the follow-up query is exact despite the stale frames.
    std::thread::sleep(Duration::from_millis(700));
    let outcome = cluster.run_sgkq(&q).unwrap();
    let mut central = CentralizedCoverage::new(&net);
    assert_eq!(outcome.results, central.sgkq(&q).unwrap());
    assert!(cluster.recovery_counters().out_of_window_responses >= 1);
    cluster.shutdown();
}

/// Fault schedules are deterministic: the same seed and plan produce the
/// same recovery counters twice in a row.
#[test]
fn seeded_fault_schedules_are_reproducible() {
    let run = || {
        let plan = FaultPlan::new(98)
            .drop_frame(0, LinkDirection::WorkerToCoordinator, 1)
            .duplicate_frame(1, LinkDirection::WorkerToCoordinator, 1);
        let (net, cluster) = setup(98, 2, fault_config(plan));
        let q = SgkQuery::new(vec![top_keyword(&net)], 3 * net.avg_edge_weight());
        let outcome = cluster.run_sgkq(&q).unwrap();
        let counters = cluster.recovery_counters();
        cluster.shutdown();
        (outcome.results, counters)
    };
    let (results_a, counters_a) = run();
    let (results_b, counters_b) = run();
    assert_eq!(results_a, results_b);
    assert_eq!(counters_a, counters_b);
}
