//! Adaptive streaming dispatch equivalence: the latency-aware window
//! controller and slot-reference elision are pure transport optimizations,
//! so an adaptive cluster must return *byte-identical* answers to a
//! fixed-window cluster and the centralized oracle over a Zipf-skewed
//! stream — with zero inter-worker bytes, fewer coordinator→worker bytes
//! (elided references replace repeated slot specs), and no NACKs on the
//! fault-free path. A worker killed mid-stream respawns with an empty slot
//! directory: the coordinator's stale beliefs draw a typed `SlotUnknown`
//! NACK, repaired by full-spec narrowed re-dispatches, with answers still
//! exact and the frame ledger still closing.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_cluster::{Cluster, ClusterConfig, FaultPlan, NetworkModel};
use disks_core::{build_all_indexes, CentralizedCoverage, DFunction, IndexConfig, SgkQuery};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::zipf::Zipf;
use disks_roadnet::{KeywordId, RoadNetwork};

/// A seeded Zipf-skewed SGKQ stream: keywords drawn by popularity rank,
/// radii from a small pool — the slot repetition reference elision exploits.
fn zipf_stream(net: &RoadNetwork, seed: u64, n: usize) -> Vec<SgkQuery> {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    ranked.truncate(10);
    let zipf = Zipf::new(ranked.len(), 1.0);
    let e = net.avg_edge_weight();
    let radii = [2 * e, 3 * e, 4 * e];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let num_kw = 1 + rng.gen_range(0..2);
            let kws: Vec<KeywordId> =
                (0..num_kw).map(|_| KeywordId(ranked[zipf.sample(&mut rng)] as u32)).collect();
            SgkQuery::new(kws, radii[rng.gen_range(0..radii.len())])
        })
        .collect()
}

/// Explicit knobs so this suite exercises the adaptive path in *every* CI
/// lane (including fixed-window and cache-disabled lanes) and stays
/// deterministic: a generous time bound keeps windows size-closed, and a
/// generous p99 target keeps the controller from halving on CI jitter.
fn build_cluster(
    net: &RoadNetwork,
    p: &Partitioning,
    adaptive: bool,
    kill_at: Option<u64>,
) -> Cluster {
    let indexes = build_all_indexes(net, p, &IndexConfig::unbounded());
    let faults = kill_at.map(|nth| FaultPlan::new(0xADA7).kill_worker(0, nth));
    Cluster::build(
        net,
        p,
        indexes,
        ClusterConfig {
            network: NetworkModel::instant(),
            deadline: Duration::from_secs(1),
            coverage_cache_bytes: 64 << 20,
            batch_window: 16,
            batch_adaptive: adaptive,
            batch_window_ms: Duration::from_millis(100),
            batch_p99_target: Duration::from_secs(5),
            faults,
            ..ClusterConfig::default()
        },
    )
}

/// The acceptance property: 200 Zipf queries through an adaptive cluster
/// and a fixed window-16 cluster return byte-identical answers, each exact
/// against the centralized oracle, with zero inter-worker bytes and zero
/// retries or NACKs (fault-free FIFO dispatch teaches every directory
/// before referencing it). Reference elision makes the adaptive run
/// strictly cheaper on the coordinator→worker link, the controller leaves
/// a non-empty window trace, and the frame ledger closes exactly.
#[test]
fn adaptive_matches_fixed_windows_and_oracle_on_zipf_stream() {
    let net = GridNetworkConfig::tiny(0xD15C).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let stream = zipf_stream(&net, 0x5EED, 200);
    let fs: Vec<DFunction> = stream.iter().map(|q| q.to_dfunction()).collect();

    let adaptive = build_cluster(&net, &p, true, None);
    let fixed = build_cluster(&net, &p, false, None);
    assert!(adaptive.adaptive_enabled());
    assert!(!fixed.adaptive_enabled());
    let (a, _) = adaptive.run_batched(&fs).expect("adaptive stream");
    let (f, _) = fixed.run_batched(&fs).expect("fixed stream");
    assert_eq!(a.len(), fs.len());
    assert_eq!(f.len(), fs.len());

    let mut oracle = CentralizedCoverage::new(&net);
    for (i, q) in stream.iter().enumerate() {
        assert_eq!(a[i].results, f[i].results, "query {i}: adaptive != fixed");
        assert_eq!(a[i].results, oracle.sgkq(q).unwrap(), "query {i} not exact");
        assert_eq!(a[i].stats.results, f[i].stats.results, "query {i} result counts diverge");
        // Theorem 3 holds identically under adaptive dispatch.
        assert_eq!(a[i].stats.inter_worker_bytes, 0);
        assert_eq!(a[i].stats.retries, 0, "fault-free adaptive stream must not retry");
    }

    // FIFO teach-then-reference: a fault-free run never outruns a worker's
    // directory, so elision is invisible to the recovery ledger.
    assert_eq!(adaptive.recovery_counters().slot_nacks, 0);
    assert_eq!(adaptive.recovery_counters().retries, 0);

    // The controller actually ran (one trace entry per closed window) and
    // the fixed path never touched it.
    let trace = adaptive.window_trace();
    assert!(!trace.is_empty(), "adaptive run must close windows through the controller");
    assert!(trace.iter().all(|&w| (1..=256).contains(&w)));
    assert!(fixed.window_trace().is_empty(), "fixed windows must not consult the controller");

    // Slot-reference elision: after the first windows teach the per-worker
    // directories, repeated Zipf slots ship as 5-byte references instead of
    // full specs — strictly fewer coordinator→worker bytes for the same
    // stream and identical answers.
    let (a_c2w, _) = adaptive.link_totals();
    let (f_c2w, _) = fixed.link_totals();
    assert!(
        a_c2w < f_c2w,
        "elision must shrink the dispatch link: adaptive {a_c2w} >= fixed {f_c2w}"
    );

    // The frame ledger closes on both paths: every coordinator→worker frame
    // is an initial dispatch, a retry, a pre-warm, a hedge, or a probe.
    for c in [&adaptive, &fixed] {
        let (c2w_frames, _) = c.link_message_totals();
        let (oc, rc) = (c.overload_counters(), c.recovery_counters());
        assert_eq!(
            c2w_frames,
            oc.dispatch_frames + rc.retries + rc.prewarm_frames + rc.hedges + rc.probe_frames
        );
    }

    adaptive.shutdown();
    fixed.shutdown();
}

/// A worker killed mid-stream respawns with an *empty* slot directory while
/// the coordinator still believes it warm: the next reference-elided window
/// to reach it draws a typed `SlotUnknown` NACK, the coordinator drops its
/// beliefs for that machine and repairs through full-spec narrowed
/// re-dispatches — answers stay exact for every query, and the frame ledger
/// still closes with the NACK repairs riding the retry path.
///
/// The stream is run twice. The first pass teaches every directory, kills
/// machine 0, and repairs the lost queries (those retries are full-spec, so
/// the respawn itself completes cleanly). Where the stale beliefs bite
/// depends on when the respawn lands: if mid-stream, the remaining pass-1
/// windows NACK against the cold directory; if during the retry drain, the
/// second pass's reference-only windows draw the NACK instead. Both
/// timings are correct protocol behavior, so the assertions accept either.
#[test]
fn mid_stream_kill_under_adaptive_batching_nacks_and_repairs() {
    let net = GridNetworkConfig::tiny(0xC0DE).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let stream = zipf_stream(&net, 0xFA11, 100);
    let fs: Vec<DFunction> = stream.iter().map(|q| q.to_dfunction()).collect();
    let mut oracle = CentralizedCoverage::new(&net);

    // Machine 0 crashes on its 3rd dispatch frame of the first pass.
    let cluster = build_cluster(&net, &p, true, Some(3));
    let (first, _) = cluster.run_batched(&fs).expect("adaptive stream with mid-stream kill");
    assert_eq!(first.len(), fs.len());
    for (i, q) in stream.iter().enumerate() {
        assert_eq!(first[i].results, oracle.sgkq(q).unwrap(), "pass 1 query {i} not exact");
        assert_eq!(first[i].stats.inter_worker_bytes, 0);
    }
    let rc1 = cluster.recovery_counters();
    assert!(rc1.respawned_workers >= 1, "kill must have fired during pass 1");

    // Pass 2: every slot is believed taught, so windows ship bare
    // references — machine 0's respawned directory knows none of them.
    let (second, _) = cluster.run_batched(&fs).expect("adaptive stream after respawn");
    for (i, q) in stream.iter().enumerate() {
        assert_eq!(second[i].results, oracle.sgkq(q).unwrap(), "pass 2 query {i} not exact");
        assert_eq!(second[i].results, first[i].results, "passes must agree bit-for-bit");
        assert_eq!(second[i].stats.inter_worker_bytes, 0);
    }

    let rc2 = cluster.recovery_counters();
    assert!(rc2.slot_nacks >= 1, "stale references must NACK: {rc1:?} -> {rc2:?}");
    // Recovery narrows: the NACKed window repairs per query; the rest of
    // the stream proceeds (and machine 0's directory is re-taught, so later
    // windows resolve).
    let retried1 = first.iter().filter(|o| o.stats.retries > 0).count();
    let retried2 = second.iter().filter(|o| o.stats.retries > 0).count();
    assert!(retried1 >= 1, "kill repairs must ride the retry path");
    assert!(retried1 + retried2 < 2 * fs.len(), "retries must narrow, not resend the stream");
    if rc2.slot_nacks > rc1.slot_nacks {
        // The respawn outlived pass 1, so the NACK fired in pass 2 and its
        // repairs must be attributed to pass-2 queries.
        assert!(retried2 >= 1, "pass-2 NACKed queries must be retried");
    }
    // Per-query retry attribution stays exact across kill and NACK alike.
    let total: u64 = first.iter().chain(second.iter()).map(|o| o.stats.retries as u64).sum();
    assert_eq!(rc2.retries, total, "per-query retry attribution");

    // The ledger closes across kill, respawn, NACK, and repair alike.
    let (c2w_frames, _) = cluster.link_message_totals();
    let oc = cluster.overload_counters();
    assert_eq!(
        c2w_frames,
        oc.dispatch_frames + rc2.retries + rc2.prewarm_frames + rc2.hedges + rc2.probe_frames,
        "frame ledger must reconcile exactly: {oc:?} {rc2:?}"
    );
    cluster.shutdown();
}
