//! Batched-dispatch equivalence: merging a window of queries into one
//! super-plan per worker per round is a pure transport optimization, so a
//! batched cluster, an unbatched cluster, and the centralized oracle must
//! return *byte-identical* answers over a Zipf-skewed stream — with zero
//! inter-worker bytes, exact per-query attribution (cache counters summing
//! to the cluster ledger), and a frame economy of well under one frame per
//! query per worker. Faults inside a batch narrow to per-query retries.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_cluster::{CacheCounters, Cluster, ClusterConfig, FaultPlan, NetworkModel, QueryOutcome};
use disks_core::{build_all_indexes, CentralizedCoverage, DFunction, IndexConfig, SgkQuery};
use disks_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::zipf::Zipf;
use disks_roadnet::{KeywordId, RoadNetwork};

/// A seeded Zipf-skewed SGKQ stream: keywords drawn by popularity rank,
/// radii from a small pool — the repetition a real workload shows and
/// intra-batch slot sharing exploits.
fn zipf_stream(net: &RoadNetwork, seed: u64, n: usize) -> Vec<SgkQuery> {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    ranked.truncate(10);
    let zipf = Zipf::new(ranked.len(), 1.0);
    let e = net.avg_edge_weight();
    let radii = [2 * e, 3 * e, 4 * e];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let num_kw = 1 + rng.gen_range(0..2);
            let kws: Vec<KeywordId> =
                (0..num_kw).map(|_| KeywordId(ranked[zipf.sample(&mut rng)] as u32)).collect();
            SgkQuery::new(kws, radii[rng.gen_range(0..radii.len())])
        })
        .collect()
}

fn build_cluster(
    net: &RoadNetwork,
    p: &Partitioning,
    batch_window: usize,
    kill_at: Option<u64>,
) -> Cluster {
    let indexes = build_all_indexes(net, p, &IndexConfig::unbounded());
    let faults = kill_at.map(|nth| FaultPlan::new(0xBA7C).kill_worker(0, nth));
    Cluster::build(
        net,
        p,
        indexes,
        ClusterConfig {
            network: NetworkModel::instant(),
            // Generous stall budget: under TCP lanes with the whole suite
            // running in parallel, a healthy window's answers can be late
            // by scheduler contention alone — only the *kill* may retry.
            // (The kill test asserts pre-kill windows retry exactly zero
            // times, so spurious stall retries are test failures here.)
            deadline: Duration::from_millis(3000),
            coverage_cache_bytes: 64 << 20,
            batch_window,
            // These tests pin exact frame counts per fixed window, so the
            // adaptive controller stays off even under `DISKS_BATCH=adaptive`
            // CI lanes (adaptive equivalence has its own suite).
            batch_adaptive: false,
            faults,
            ..ClusterConfig::default()
        },
    )
}

/// Sum of the per-query wire-reported cache counters — must equal the
/// cluster's lifetime ledger exactly (attribution loses nothing).
fn summed_cache(outcomes: &[QueryOutcome]) -> CacheCounters {
    let mut sum = CacheCounters::default();
    for o in outcomes {
        sum.absorb(&CacheCounters {
            hits: o.stats.cache_hits,
            misses: o.stats.cache_misses,
            evictions: o.stats.cache_evictions,
            bypassed: o.stats.cache_bypassed,
        });
    }
    sum
}

fn summed_batch_shared(outcomes: &[QueryOutcome]) -> u64 {
    outcomes.iter().flat_map(|o| o.stats.per_machine.iter()).map(|m| m.batch_shared).sum()
}

/// The acceptance property: 200 Zipf queries through a window-16 batched
/// cluster and a window-1 unbatched cluster return byte-identical answers,
/// each exact against the centralized oracle, with zero inter-worker bytes,
/// per-query cache counters that sum to the cluster ledger, real intra-batch
/// slot sharing, and < 0.25 coordinator frames per query per worker.
#[test]
fn batched_matches_unbatched_and_oracle_on_zipf_stream() {
    let net = GridNetworkConfig::tiny(0xD15C).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let stream = zipf_stream(&net, 0x5EED, 200);
    let fs: Vec<DFunction> = stream.iter().map(|q| q.to_dfunction()).collect();

    let batched = build_cluster(&net, &p, 16, None);
    let unbatched = build_cluster(&net, &p, 1, None);
    let (b, _) = batched.run_batched(&fs).expect("batched stream");
    let (u, _) = unbatched.run_batched(&fs).expect("unbatched stream");
    assert_eq!(b.len(), fs.len());
    assert_eq!(u.len(), fs.len());

    let mut oracle = CentralizedCoverage::new(&net);
    for (i, q) in stream.iter().enumerate() {
        assert_eq!(b[i].results, u[i].results, "query {i}: batched != unbatched");
        assert_eq!(b[i].results, oracle.sgkq(q).unwrap(), "query {i} not exact");
        assert_eq!(b[i].stats.results, u[i].stats.results, "query {i} result counts diverge");
        // Theorem 3 holds identically under batching.
        assert_eq!(b[i].stats.inter_worker_bytes, 0);
        assert_eq!(u[i].stats.inter_worker_bytes, 0);
        assert_eq!(b[i].stats.retries, 0, "fault-free batch must not retry");
    }

    // Per-query attribution is exact: the per-outcome wire counters sum to
    // the cluster's lifetime cache ledger on both paths.
    assert_eq!(summed_cache(&b), batched.cache_counters());
    assert_eq!(summed_cache(&u), unbatched.cache_counters());
    // The Zipf stream repeats slots within a window, so the batched run
    // must actually share coverages intra-batch; the unbatched run cannot.
    assert!(summed_batch_shared(&b) > 0, "expected intra-batch slot sharing");
    assert_eq!(summed_batch_shared(&u), 0);

    // Frame economy: ceil(200/16) = 13 super-plan frames per worker versus
    // 200 Evaluate frames per worker unbatched.
    let machines = batched.num_machines() as f64;
    let (b_frames, _) = batched.link_message_totals();
    let (u_frames, _) = unbatched.link_message_totals();
    let per_query_per_worker = b_frames as f64 / (fs.len() as f64 * machines);
    assert!(
        per_query_per_worker < 0.25,
        "batched frames/query/worker {per_query_per_worker} too high"
    );
    assert!((u_frames as f64 / (fs.len() as f64 * machines) - 1.0).abs() < 1e-9);

    batched.shutdown();
    unbatched.shutdown();
}

/// A worker killed mid-stream (on its 3rd super-plan frame) loses the rest
/// of its queue; recovery narrows to *individual* re-dispatches of only the
/// failed queries — answers stay exact, queries answered before the kill
/// keep `retries == 0`, and attribution still sums to the ledger.
#[test]
fn mid_batch_worker_kill_narrows_to_individual_retries() {
    let net = GridNetworkConfig::tiny(0xC0DE).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let stream = zipf_stream(&net, 0xFA11, 200);
    let fs: Vec<DFunction> = stream.iter().map(|q| q.to_dfunction()).collect();

    // Window 16 → 13 super-plan frames per worker; machine 0 crashes upon
    // receiving its 3rd (queries 32.. on its fragment never answered).
    let cluster = build_cluster(&net, &p, 16, Some(3));
    let (outcomes, _) = cluster.run_batched(&fs).expect("stream with mid-batch kill");
    assert_eq!(outcomes.len(), fs.len());

    let mut oracle = CentralizedCoverage::new(&net);
    for (i, q) in stream.iter().enumerate() {
        assert_eq!(outcomes[i].results, oracle.sgkq(q).unwrap(), "query {i} not exact");
        assert_eq!(outcomes[i].stats.inter_worker_bytes, 0);
        assert_eq!(outcomes[i].stats.rounds, 1 + outcomes[i].stats.retries);
    }

    // The kill fired and the worker was respawned.
    assert!(cluster.recovery_counters().respawned_workers >= 1, "kill must have fired");
    // Recovery is per query: some queries were re-dispatched individually,
    // but the first two windows (queries 0..32) completed before the crash
    // and must be untouched.
    let retried: Vec<usize> = (0..fs.len()).filter(|&i| outcomes[i].stats.retries > 0).collect();
    assert!(!retried.is_empty(), "lost batch members must be retried");
    assert!(retried.len() < fs.len(), "retries must narrow, not resend the stream");
    assert!(retried.iter().all(|&i| i >= 32), "pre-kill windows retried: {retried:?}");
    let total: u64 = outcomes.iter().map(|o| o.stats.retries as u64).sum();
    assert_eq!(cluster.recovery_counters().retries, total, "per-query retry attribution");

    // Attribution stays exact across the fault: accepted wire counters sum
    // to the ledger even though some frames were lost with the dead worker.
    assert_eq!(summed_cache(&outcomes), cluster.cache_counters());
    cluster.shutdown();
}
