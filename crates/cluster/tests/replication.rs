//! Replica-set placement and load-aware routing: any replica of a fragment
//! answers the same coverage (the Lemma 1 union is replica-invariant), so a
//! replicated cluster must be *observably identical on answers* to the
//! single-owner cluster — over Zipf streams, under least-loaded routing
//! that provably serves fragments off non-primary machines, and across a
//! mid-stream kill of the hottest fragment's primary, where the narrowed
//! retry re-routes to the surviving replica and the query completes exactly
//! while the respawn proceeds in the background.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_cluster::{Cluster, ClusterConfig, FaultPlan, NetworkModel, RoutePolicy};
use disks_core::{
    build_all_indexes, centralized_topk, CentralizedCoverage, DFunction, IndexConfig, ScoreCombine,
    SgkQuery, TopKQuery,
};
use disks_partition::{FragmentId, MultilevelPartitioner, Partitioner, Partitioning};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::zipf::Zipf;
use disks_roadnet::{KeywordId, RoadNetwork};

/// A seeded Zipf-skewed SGKQ stream over the top-10 keywords — the skew
/// that makes some fragments hot and replication worth having.
fn zipf_stream(net: &RoadNetwork, seed: u64, n: usize) -> Vec<SgkQuery> {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    ranked.truncate(10);
    let zipf = Zipf::new(ranked.len(), 1.0);
    let e = net.avg_edge_weight();
    let radii = [2 * e, 3 * e, 4 * e];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let num_kw = 1 + rng.gen_range(0..2);
            let kws: Vec<KeywordId> =
                (0..num_kw).map(|_| KeywordId(ranked[zipf.sample(&mut rng)] as u32)).collect();
            SgkQuery::new(kws, radii[rng.gen_range(0..radii.len())])
        })
        .collect()
}

fn build(net: &RoadNetwork, p: &Partitioning, config: ClusterConfig) -> Cluster {
    let indexes = build_all_indexes(net, p, &IndexConfig::unbounded());
    Cluster::build(net, p, indexes, config)
}

fn base_config() -> ClusterConfig {
    ClusterConfig {
        network: NetworkModel::instant(),
        deadline: Duration::from_millis(200),
        coverage_cache_bytes: 64 << 20,
        ..ClusterConfig::default()
    }
}

/// With `replicas == 0` the routing layer is inert: a least-loaded cluster
/// and a primary-routed cluster run the same 200-query Zipf stream with
/// identical answers, identical per-query stats, an identical frame ledger,
/// and zero reroutes — the degenerate-parity half of the acceptance.
#[test]
fn zero_replicas_routing_is_inert() {
    let net = GridNetworkConfig::tiny(0x1DE7).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let stream = zipf_stream(&net, 0x5EED, 200);
    let fs: Vec<DFunction> = stream.iter().map(|q| q.to_dfunction()).collect();

    let run = |route: RoutePolicy| {
        let cluster = build(&net, &p, ClusterConfig { replicas: 0, route, ..base_config() });
        assert!(!cluster.placement().is_replicated());
        let (items, _) = cluster.run_stream(&fs);
        let ledger = cluster.link_message_totals();
        let reroutes = cluster.recovery_counters().reroutes;
        cluster.shutdown();
        (items, ledger, reroutes)
    };

    let (a, ledger_a, rr_a) = run(RoutePolicy::LeastLoaded);
    let (b, ledger_b, rr_b) = run(RoutePolicy::Primary);
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
        assert_eq!(x.results, y.results, "query {i}: answers diverge");
        assert_eq!(x.stats.results, y.stats.results, "query {i}: result counts diverge");
        assert_eq!(x.stats.retries, y.stats.retries, "query {i}: retries diverge");
    }
    assert_eq!(ledger_a, ledger_b, "replicas=0 frame ledgers must be identical");
    assert_eq!((rr_a, rr_b), (0, 0), "replicas=0 must never reroute");
}

/// Replicated clusters (1 and 2 extra copies, least-loaded routing) answer
/// a 200-query Zipf stream byte-identically to the single-owner cluster and
/// exactly against the centralized oracle — fault-free, with zero reroutes,
/// zero inter-worker bytes, and every fragment hosted on `replicas + 1`
/// distinct machines.
#[test]
fn replicated_answers_are_byte_identical_to_single_owner() {
    let net = GridNetworkConfig::tiny(0xD15C).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let stream = zipf_stream(&net, 0x5EED, 200);
    let mut oracle = CentralizedCoverage::new(&net);

    let baseline = build(&net, &p, ClusterConfig { replicas: 0, ..base_config() });
    for replicas in [1usize, 2] {
        let cluster = build(
            &net,
            &p,
            ClusterConfig { replicas, route: RoutePolicy::LeastLoaded, ..base_config() },
        );
        let placement = cluster.placement();
        assert!(placement.is_replicated());
        for f in 0..placement.num_fragments() {
            assert_eq!(
                placement.replicas_of(FragmentId(f as u32)).len(),
                replicas + 1,
                "fragment {f} must be hosted on {} machines",
                replicas + 1
            );
        }
        for (i, q) in stream.iter().enumerate() {
            let a = baseline.run_sgkq(q).unwrap_or_else(|e| panic!("baseline query {i}: {e}"));
            let b = cluster.run_sgkq(q).unwrap_or_else(|e| panic!("r={replicas} query {i}: {e}"));
            assert_eq!(a.results, b.results, "r={replicas} query {i}: answers diverge");
            assert_eq!(b.results, oracle.sgkq(q).unwrap(), "r={replicas} query {i}: not exact");
            assert_eq!(b.stats.inter_worker_bytes, 0, "r={replicas} query {i}: Theorem 3");
            assert!(b.stats.degraded_fragments.is_empty(), "r={replicas} query {i}: degraded");
        }
        let rc = cluster.recovery_counters();
        assert_eq!(rc.reroutes, 0, "fault-free stream must never reroute: {rc:?}");
        assert_eq!(rc.retries, 0, "fault-free stream must never retry: {rc:?}");
        assert!(cluster.unbalance_factor() >= 1.0);
        cluster.shutdown();
    }
    baseline.shutdown();
}

/// Least-loaded routing actually uses the replicas: with three fragments on
/// two machines and one replica of each (every fragment hosted everywhere),
/// the cumulative-load tie-breaking provably serves some fragments off
/// non-primary machines — visible in the per-query serving attribution —
/// while every answer stays exact. Top-k rides the same routed dispatch.
#[test]
fn least_loaded_routing_serves_fragments_off_non_primary_replicas() {
    let net = GridNetworkConfig::tiny(0xBA1A).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let cluster = build(
        &net,
        &p,
        ClusterConfig {
            machines: Some(2),
            replicas: 1,
            route: RoutePolicy::LeastLoaded,
            ..base_config()
        },
    );
    let stream = zipf_stream(&net, 0xF00D, 60);
    let mut oracle = CentralizedCoverage::new(&net);

    let mut off_primary = 0usize;
    for (i, q) in stream.iter().enumerate() {
        let o = cluster.run_sgkq(q).unwrap_or_else(|e| panic!("query {i}: {e}"));
        assert_eq!(o.results, oracle.sgkq(q).unwrap(), "query {i}: not exact");
        for (m, mc) in o.stats.per_machine.iter().enumerate() {
            for &f in &mc.fragments {
                if cluster.placement().machine_of(FragmentId(f)) != m {
                    off_primary += 1;
                }
            }
        }
    }
    assert!(
        off_primary > 0,
        "least-loaded routing over fully replicated fragments must serve off-primary"
    );

    // Top-k flows through the same routed dispatch and stays exact.
    let freqs = net.keyword_frequencies();
    let kw = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
    let q = TopKQuery::new(vec![kw], 5, 6 * net.avg_edge_weight(), ScoreCombine::Max);
    let (ranked, stats) = cluster.run_topk(&q).unwrap();
    assert_eq!(ranked, centralized_topk(&net, &q).unwrap(), "top-k not exact under routing");
    assert_eq!(stats.inter_worker_bytes, 0);

    assert_eq!(cluster.recovery_counters().reroutes, 0, "fault-free: no reroutes");
    cluster.shutdown();
}

/// The satellite chaos property: kill the primary of the *hottest* fragment
/// mid-stream with one replica configured. Every query still completes
/// exactly (zero degraded fragments anywhere) because the narrowed retry is
/// re-routed to the surviving replica, the respawn of the dead primary
/// proceeds in the background (pre-warmed before any retry traffic), and
/// the coordinator→worker frame ledger still closes exactly:
///
/// ```text
/// c2w frames == dispatch_frames + retries + prewarm_frames + hedges + probes
/// ```
#[test]
fn killing_hottest_fragment_primary_reroutes_to_surviving_replica() {
    let net = GridNetworkConfig::tiny(0x0BAD).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let stream = zipf_stream(&net, 0xCAFE, 200);
    let fs: Vec<DFunction> = stream.iter().map(|q| q.to_dfunction()).collect();

    // Declare fragment 0 the hottest: its primary is machine 0 (round-robin
    // places fragment f on machine f here), which the fault plan kills on
    // its 10th request — mid-stream, while queries are in flight.
    let heat = vec![1000, 1, 1];
    let cluster = build(
        &net,
        &p,
        ClusterConfig {
            replicas: 1,
            route: RoutePolicy::LeastLoaded,
            placement_heat: Some(heat),
            faults: Some(FaultPlan::new(0x0DD5).kill_worker(0, 10)),
            batch_window: 8,
            ..base_config()
        },
    );
    assert_eq!(cluster.placement().machine_of(FragmentId(0)), 0);
    assert_eq!(cluster.placement().replicas_of(FragmentId(0)).len(), 2);

    let (items, _) = cluster.run_stream(&fs);
    assert_eq!(items.len(), fs.len());
    let mut oracle = CentralizedCoverage::new(&net);
    for (i, item) in items.iter().enumerate() {
        let o = item.as_ref().unwrap_or_else(|e| panic!("query {i} failed: {e}"));
        assert!(o.stats.degraded_fragments.is_empty(), "query {i}: degraded across kill");
        assert_eq!(o.results, oracle.sgkq(&stream[i]).unwrap(), "query {i}: not exact");
        assert_eq!(o.stats.inter_worker_bytes, 0, "query {i}: Theorem 3");
    }

    let rc = cluster.recovery_counters();
    assert!(rc.reroutes >= 1, "retry must move to the surviving replica: {rc:?}");
    assert!(rc.retries >= rc.reroutes, "every reroute is a narrowed retry: {rc:?}");
    assert!(rc.respawned_workers >= 1, "the dead primary must respawn in background: {rc:?}");
    assert_eq!(rc.prewarm_frames, rc.respawned_workers, "every respawn is pre-warmed: {rc:?}");

    // The ledger closes even with re-routed retries in the mix: every
    // coordinator→worker frame is an initial dispatch, a narrowed retry
    // (re-routed or not), a pre-warm, a hedge, or a quarantine probe.
    let oc = cluster.overload_counters();
    let (c2w_frames, _) = cluster.link_message_totals();
    assert_eq!(
        c2w_frames,
        oc.dispatch_frames + rc.retries + rc.prewarm_frames + rc.hedges + rc.probe_frames,
        "frame ledger must reconcile exactly: {oc:?} {rc:?}"
    );

    cluster.shutdown();
}
