//! Property tests for the [`HeatSnapshot`] codec (DESIGN.md §6i): encode →
//! decode is the identity for arbitrary ledgers, and corrupt/truncated
//! input decodes to a typed error, never a panic.

use disks_cluster::HeatSnapshot;
use disks_core::Term;
use disks_roadnet::{KeywordId, NodeId};
use proptest::prelude::*;

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u32..10_000).prop_map(|k| Term::Keyword(KeywordId(k))),
        (0u32..10_000).prop_map(|n| Term::Node(NodeId(n))),
    ]
}

fn arb_snapshot() -> impl Strategy<Value = HeatSnapshot> {
    collection::vec((arb_term(), any::<u64>(), any::<u64>()), 0..64)
        .prop_map(|entries| HeatSnapshot { entries })
}

proptest! {
    /// The codec round-trips every ledger exactly, including empty ones,
    /// duplicate slots, and extreme radius/count values.
    #[test]
    fn encode_decode_round_trips(snap in arb_snapshot()) {
        let bytes = snap.encode_bytes();
        let back = HeatSnapshot::decode_bytes(&bytes).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// Any strict prefix of a valid encoding fails with a typed error —
    /// no panic, no silently truncated snapshot.
    #[test]
    fn truncated_input_is_a_typed_error(snap in arb_snapshot(), cut in 0usize..256) {
        let bytes = snap.encode_bytes();
        let cut = cut % bytes.len();
        prop_assert!(HeatSnapshot::decode_bytes(&bytes[..cut]).is_err());
    }

    /// The profile projection conserves total dispatch weight: every
    /// entry's count lands in the radius distribution exactly once.
    /// (Counts are bounded so the profile's saturating accumulators never
    /// clip — conservation is exact below the saturation point.)
    #[test]
    fn profile_conserves_radius_weight(
        entries in collection::vec((arb_term(), any::<u64>(), 0u64..(1 << 40)), 0..64)
    ) {
        let snap = HeatSnapshot { entries };
        let profile = snap.to_profile();
        let total: u128 = snap.entries.iter().map(|&(_, _, c)| c as u128).sum();
        let projected: u128 =
            profile.radius_distribution().iter().map(|&(_, c)| c as u128).sum();
        prop_assert_eq!(projected, total);
    }
}
