//! Overload + fault chaos soak: a 500-query Zipf stream pushed through the
//! batched dispatch path with cost-model admission, brownout, bounded
//! queues, retry backoff, worker kills, and response-link delays/drops all
//! active at once. The acceptance trichotomy: every query ends in exactly
//! one of {exact oracle match, typed partial with its degraded fragments
//! listed, typed `Overloaded`} — and afterwards the overload/recovery
//! counters reconcile *exactly* against the coordinator→worker link ledger:
//!
//! ```text
//! c2w frames == dispatch_frames + retries + prewarm_frames
//! ```
//!
//! which is the frame-level proof that shed queries never touched the wire.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_cluster::{Cluster, ClusterConfig, FaultPlan, LinkDirection, NetworkModel};
use disks_core::{
    build_all_indexes, CentralizedCoverage, CostParams, DFunction, IndexConfig, QueryError,
    QueryPlan, SgkQuery,
};
use disks_partition::{MultilevelPartitioner, Partitioner};
use disks_roadnet::generator::GridNetworkConfig;
use disks_roadnet::zipf::Zipf;
use disks_roadnet::{KeywordId, RoadNetwork};

/// A seeded Zipf-skewed SGKQ stream over the top-10 keywords — the
/// repetition a real workload shows, so the slot-heat ledger and the
/// coverage caches both have something to work with.
fn zipf_stream(net: &RoadNetwork, seed: u64, n: usize) -> Vec<SgkQuery> {
    let freqs = net.keyword_frequencies();
    let mut ranked: Vec<usize> = (0..freqs.len()).filter(|&k| freqs[k] > 0).collect();
    ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
    ranked.truncate(10);
    let zipf = Zipf::new(ranked.len(), 1.0);
    let e = net.avg_edge_weight();
    let radii = [2 * e, 3 * e, 4 * e];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let num_kw = 1 + rng.gen_range(0..2);
            let kws: Vec<KeywordId> =
                (0..num_kw).map(|_| KeywordId(ranked[zipf.sample(&mut rng)] as u32)).collect();
            SgkQuery::new(kws, radii[rng.gen_range(0..radii.len())])
        })
        .collect()
}

#[test]
fn chaos_soak_trichotomy_and_ledger_reconciliation() {
    let net = GridNetworkConfig::tiny(0x0BAD).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let stream = zipf_stream(&net, 0xCAFE, 500);
    let fs: Vec<DFunction> = stream.iter().map(|q| q.to_dfunction()).collect();

    // Budget the per-worker cost at the stream's median estimated cost:
    // everything above the median must shed on cost alone, everything at or
    // below flows through small admission groups (frequent queue pauses).
    let params = CostParams::from_network(&net);
    let mut costs: Vec<u64> =
        fs.iter().map(|f| QueryPlan::lower(f).estimated_cost(&params)).collect();
    costs.sort_unstable();
    let limit = costs[costs.len() / 2];
    let over_budget = costs.iter().filter(|&&c| c > limit).count();
    assert!(over_budget > 0, "seed must produce over-budget queries (limit {limit})");
    assert!(over_budget < fs.len(), "seed must produce admittable queries (limit {limit})");

    // Chaos: each machine crashes once mid-stream; the response link adds a
    // delay and a drop. No coordinator→worker duplicate faults — those
    // legitimately put extra frames on the wire and would (correctly)
    // unbalance the frame ledger this test closes.
    let faults = FaultPlan::new(0x0DD5)
        .kill_worker(0, 25)
        .kill_worker(1, 60)
        .kill_worker(2, 110)
        .delay_frame(1, LinkDirection::WorkerToCoordinator, 40, 30)
        .drop_frame(2, LinkDirection::WorkerToCoordinator, 30);
    let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
    let cluster = Cluster::build(
        &net,
        &p,
        indexes,
        ClusterConfig {
            network: NetworkModel::instant(),
            deadline: Duration::from_millis(150),
            allow_partial: true,
            faults: Some(faults),
            coverage_cache_bytes: 64 << 20,
            batch_window: 8,
            cost_limit: limit,
            brownout: 0.75,
            retry_backoff: Duration::from_millis(1),
            queue_capacity: 64,
            ..ClusterConfig::default()
        },
    );

    let (items, _elapsed) = cluster.run_stream(&fs);
    assert_eq!(items.len(), fs.len());

    // The trichotomy: exact, typed partial, or typed Overloaded — nothing
    // else, for every single query.
    let mut oracle = CentralizedCoverage::new(&net);
    let (mut exact, mut partial, mut shed) = (0usize, 0usize, 0usize);
    for (i, item) in items.iter().enumerate() {
        match item {
            Ok(o) if o.stats.degraded_fragments.is_empty() => {
                assert_eq!(o.results, oracle.sgkq(&stream[i]).unwrap(), "query {i} not exact");
                exact += 1;
            }
            Ok(o) => {
                // Typed partial: a strict subset of the oracle's answer,
                // with the unanswered fragments listed.
                let full = oracle.sgkq(&stream[i]).unwrap();
                for node in &o.results {
                    assert!(full.binary_search(node).is_ok(), "query {i}: spurious node {node:?}");
                }
                partial += 1;
            }
            Err(QueryError::Overloaded { retry_after_millis }) => {
                assert!(*retry_after_millis >= 1, "query {i}: empty retry hint");
                shed += 1;
            }
            Err(e) => panic!("query {i}: outside the trichotomy: {e}"),
        }
        if let Ok(o) = item {
            assert_eq!(o.stats.inter_worker_bytes, 0, "query {i}: Theorem 3 violated");
            assert_eq!(o.stats.rounds, 1 + o.stats.retries, "query {i}: round accounting");
            assert!(o.stats.estimated_cost > 0, "query {i}: admitted without a cost");
            assert!(o.stats.estimated_cost <= limit, "query {i}: admitted over budget");
        }
    }
    assert_eq!(exact + partial + shed, fs.len(), "trichotomy must partition the stream");
    assert!(exact > 0, "chaos must not drown every query");
    assert!(shed >= over_budget, "every over-budget query must shed");

    // Overload counters agree with the observed outcomes.
    let oc = cluster.overload_counters();
    assert_eq!(oc.shed, shed as u64);
    assert_eq!(oc.admitted, (exact + partial) as u64);
    assert_eq!(oc.retry_after_hist.iter().sum::<u64>(), oc.shed, "every shed is histogrammed");
    assert!(oc.queue_pauses > 0, "median-cost budget must pause the queue");
    let browned_ok =
        items.iter().filter(|r| matches!(r, Ok(o) if o.stats.browned_out)).count() as u64;
    assert_eq!(oc.browned_out, browned_ok, "brownout attribution matches per-query stats");

    // Recovery: all three kills fired, each respawn was pre-warmed before
    // its retry traffic, and narrowed retries actually happened.
    let rc = cluster.recovery_counters();
    assert!(rc.respawned_workers >= 3, "all three kills must fire: {rc:?}");
    assert_eq!(rc.prewarm_frames, rc.respawned_workers, "every respawn is pre-warmed");
    assert!(rc.prewarmed_slots >= rc.prewarm_frames, "pre-warm frames carry slots");
    assert!(rc.retries > 0, "kills and drops must force narrowed retries");

    // The ledger closes: every coordinator→worker frame is an initial
    // dispatch, a narrowed retry, a pre-warm, a hedge, or a quarantine
    // probe — shed queries contributed nothing. (Measured before shutdown;
    // shutdown frames are lifecycle, not query traffic.)
    let (c2w_frames, _) = cluster.link_message_totals();
    assert_eq!(
        c2w_frames,
        oc.dispatch_frames + rc.retries + rc.prewarm_frames + rc.hedges + rc.probe_frames,
        "frame ledger must reconcile exactly: {oc:?} {rc:?}"
    );

    cluster.shutdown();
}

/// The same stream with overload control off collapses into one admission
/// group (the pre-overload behavior) and answers everything exactly — the
/// backward-compatibility half of the chaos soak.
#[test]
fn disabled_overload_control_is_the_pre_overload_path() {
    let net = GridNetworkConfig::tiny(0x0BAD).generate();
    let p = MultilevelPartitioner::default().partition(&net, 3);
    let stream = zipf_stream(&net, 0xCAFE, 120);
    let fs: Vec<DFunction> = stream.iter().map(|q| q.to_dfunction()).collect();
    let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
    let cluster = Cluster::build(
        &net,
        &p,
        indexes,
        ClusterConfig {
            network: NetworkModel::instant(),
            deadline: Duration::from_millis(200),
            coverage_cache_bytes: 64 << 20,
            batch_window: 8,
            cost_limit: 0, // overload control off
            brownout: 0.75,
            retry_backoff: Duration::from_millis(1),
            ..ClusterConfig::default()
        },
    );
    let (items, _) = cluster.run_stream(&fs);
    let mut oracle = CentralizedCoverage::new(&net);
    for (i, item) in items.iter().enumerate() {
        let o = item.as_ref().unwrap_or_else(|e| panic!("query {i} failed: {e}"));
        assert_eq!(o.results, oracle.sgkq(&stream[i]).unwrap(), "query {i} not exact");
    }
    let oc = cluster.overload_counters();
    assert_eq!(oc.shed, 0);
    assert_eq!(oc.queue_pauses, 0, "disabled gauge must never pause");
    assert_eq!(oc.browned_out, 0);
    assert_eq!(oc.admitted, fs.len() as u64);
    cluster.shutdown();
}
