//! Properties of the elided super-plan codec (slot-reference elision):
//!
//! 1. Merge → elide (mixed full-spec / slot-reference entries) → encode →
//!    decode → resolve → split reproduces the original plans exactly, for
//!    any believed-cached subset of the slot ids.
//! 2. A wiped directory (worker respawn) NACKs precisely the elided ids and
//!    flags exactly the programs that touch them.
//! 3. Out-of-range program indexes are rejected by the decoder — the
//!    PR 3 index-bounds checks extend to the compact encoding.

use std::collections::{HashMap, HashSet};

use bytes::{Buf, BytesMut};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disks_core::{DFunction, ElidedSuperPlan, QueryPlan, SetOp, SlotIdTable, SuperPlan, Term};
use disks_roadnet::codec::{Decode, Encode};
use disks_roadnet::{DecodeError, KeywordId};

/// Seeded random plans over a tiny `(keyword, radius)` space so slots are
/// shared both within and across queries.
fn random_plans(seed: u64, n: usize) -> Vec<QueryPlan> {
    let mut rng = StdRng::seed_from_u64(seed);
    let term = |rng: &mut StdRng| Term::Keyword(KeywordId(rng.gen_range(0..6)));
    (0..n)
        .map(|_| {
            let mut f = DFunction::single(term(&mut rng), 1 + rng.gen_range(0..4) as u64);
            for _ in 0..rng.gen_range(0..4) {
                let op = match rng.gen_range(0..3) {
                    0 => SetOp::Union,
                    1 => SetOp::Intersect,
                    _ => SetOp::Subtract,
                };
                f = f.then(op, term(&mut rng), 1 + rng.gen_range(0..4) as u64);
            }
            QueryPlan::lower(&f)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mixed_encoding_round_trip_preserves_merge_split(
        seed in 0u64..10_000, n in 1usize..6, mask in 0u64..256
    ) {
        let plans = random_plans(seed, n);
        let sp = SuperPlan::merge(&plans);
        let mut table = SlotIdTable::new();
        let all: Vec<u32> =
            sp.try_elide(&mut table, &HashSet::new()).unwrap().slot_ids().collect();
        // The believed-cached subset is mask-driven → frames mix full-spec
        // and reference entries in every ratio.
        let believed: HashSet<u32> =
            all.iter().copied().filter(|&id| mask & (1 << (id % 64)) != 0).collect();
        let elided = sp.try_elide(&mut table, &believed).unwrap();
        prop_assert_eq!(elided.num_elided(), believed.len());

        // Codec round-trip is exact and consumes the frame fully.
        let mut buf = BytesMut::new();
        elided.encode(&mut buf);
        let mut bytes = buf.freeze();
        let decoded = ElidedSuperPlan::decode(&mut bytes).unwrap();
        prop_assert!(!bytes.has_remaining());
        prop_assert_eq!(&decoded, &elided);

        // A directory taught exactly the believed bindings resolves the
        // frame, and merge/split round-trips to the original plans.
        let mut dir = HashMap::new();
        for (i, s) in sp.slots().iter().enumerate() {
            if believed.contains(&all[i]) {
                dir.insert(all[i], *s);
            }
        }
        let resolved = decoded.resolve(&mut dir);
        prop_assert!(resolved.unknown.is_empty());
        prop_assert!(resolved.affected.iter().all(|&a| !a));
        prop_assert_eq!(&resolved.plan, &sp);
        prop_assert_eq!(resolved.plan.split(), plans);

        // A wiped directory (respawn) NACKs every elided id, and flags
        // exactly the programs that reference one.
        let mut fresh = HashMap::new();
        let r = decoded.resolve(&mut fresh);
        let mut want: Vec<u32> = believed.iter().copied().collect();
        want.sort_unstable();
        prop_assert_eq!(r.unknown, want);
        for (qi, plan) in sp.split().iter().enumerate() {
            let touches = plan.slots().iter().any(|t| {
                let gi = sp.slots().iter().position(|s| s == t).unwrap();
                believed.contains(&all[gi])
            });
            prop_assert_eq!(r.affected[qi], touches, "query {} affected flag", qi);
        }
    }

    #[test]
    fn out_of_range_reference_index_rejected(ns in 1u16..8, excess in 0u16..5) {
        // Hand-build a frame whose single program's first operand references
        // slot `ns + excess` — always out of range.
        let mut buf = BytesMut::new();
        ns.encode(&mut buf);
        for id in 0..ns {
            1u8.encode(&mut buf); // Cached reference
            u32::from(id).encode(&mut buf);
        }
        1u16.encode(&mut buf);
        (ns + excess).encode(&mut buf);
        0u8.encode(&mut buf); // no ops
        let mut bytes = buf.freeze();
        prop_assert!(matches!(
            ElidedSuperPlan::decode(&mut bytes),
            Err(DecodeError::LengthOutOfRange { context: "ElidedSuperPlan slot index", .. })
        ));
    }
}
