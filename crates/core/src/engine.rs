//! The per-fragment query engine — Algorithm 2.
//!
//! A [`FragmentEngine`] is the state one machine keeps for its fragment `P`:
//!
//! * the *extended fragment* `P' = P ∪ SC(P)` as a local CSR graph (Step 1),
//! * the DL component for seeding cross-fragment distances (Steps 2–3),
//! * a local inverted keyword index (sources of the virtual keyword nodes).
//!
//! The paper's "virtual node `Vᵢ` connected by directed 0-weight edges" is
//! realized as multi-source Dijkstra seeding, which is the same computation
//! without materializing the node (seeds cannot be re-entered, exactly like
//! the paper's directed virtual edges). Per query term the engine seeds:
//!
//! * every local node containing the term's keyword at distance 0,
//! * every portal `N` with an aggregated DL distance `d(ω, N) ≤ r` at
//!   distance `d` (Step 3's added shortcut edges),
//!
//! then runs a Dijkstra bounded by `r` over `P'`. The resulting coverage
//! `R(ω, r) ∩ P` feeds the D-function combiner (Lemma 1). No information
//! from any other machine is consulted — Theorem 3's zero-communication
//! property, which the cluster layer asserts at runtime.
//!
//! The engine is **share-nothing by construction**: after `new` returns it
//! holds copies of exactly `P ∪ SC(P) ∪ DL(P)` plus local keywords, never a
//! reference to the global network.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use disks_partition::{FragmentId, Partitioning};
use disks_roadnet::dijkstra::{Control, Graph};
use disks_roadnet::{DijkstraWorkspace, KeywordId, NodeId, RoadNetwork, Weight};

use crate::bitset::BitSet;
use crate::dfunc::{DFunction, DTerm, Term};
use crate::error::{IndexError, QueryError};
use crate::index::{DlScope, NpdIndex};
use crate::plan::QueryPlan;

/// Local sentinel for "not reached this term" in the top-k scorer.
const INF_LOCAL: u64 = u64::MAX;

/// Theorem 5 cost attribution for one coverage slot (one `R(term, r) ∩ P`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotCost {
    pub term: Term,
    pub radius: u64,
    /// αⱼ — DL pairs inspected for this slot.
    pub alpha: usize,
    /// Nodes settled by this slot's coverage search (0 on a cache hit).
    pub settled: usize,
    /// Heap pushes by this slot's coverage search (0 on a cache hit).
    pub pushed: usize,
    /// `|P ∩ R(term, r)|`.
    pub coverage_nodes: usize,
    /// Whether the coverage was served from a [`CoverageStore`] hit.
    pub cached: bool,
}

/// Theorem 5 cost-model instrumentation for one query on one fragment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Σ αⱼ — DL pairs inspected across terms.
    pub alpha: usize,
    /// β = |SC(P)| (constant per engine, counted once per query).
    pub beta: usize,
    /// Nodes settled across the coverage searches.
    pub settled: usize,
    /// Heap pushes across the coverage searches.
    pub pushed: usize,
    /// Σ |P ∩ R(ωⱼ, r)| — total coverage sizes.
    pub coverage_nodes: usize,
    /// Result nodes produced.
    pub results: usize,
    /// Wall-clock spent.
    pub elapsed: Duration,
    /// Per-slot breakdown of the aggregates above, in slot order.
    pub per_slot: Vec<SlotCost>,
}

impl QueryCost {
    fn absorb(&mut self, other: &QueryCost) {
        self.alpha += other.alpha;
        self.settled += other.settled;
        self.pushed += other.pushed;
        self.coverage_nodes += other.coverage_nodes;
        self.per_slot.extend_from_slice(&other.per_slot);
    }
}

/// A pluggable coverage store consulted per plan slot — the seam between the
/// pure per-term coverage stage and the cluster layer's per-worker cache.
///
/// Implementations must be transparent: `lookup` may only return a value
/// previously passed to `store` for the *same* slot on the *same* engine
/// (coverage is a pure function of the immutable engine, so a stored value
/// never goes stale while the engine lives).
pub trait CoverageStore {
    /// A previously stored coverage for `slot`, if any.
    fn lookup(&mut self, slot: &DTerm) -> Option<Arc<BitSet>>;
    /// Offer a freshly computed coverage for `slot`.
    fn store(&mut self, slot: &DTerm, coverage: &Arc<BitSet>);
}

/// The no-op [`CoverageStore`]: every lookup misses, stores are dropped.
pub struct NoCache;

impl CoverageStore for NoCache {
    fn lookup(&mut self, _slot: &DTerm) -> Option<Arc<BitSet>> {
        None
    }
    fn store(&mut self, _slot: &DTerm, _coverage: &Arc<BitSet>) {}
}

/// One machine's query-evaluation state for its fragment.
pub struct FragmentEngine {
    fragment: FragmentId,
    max_r: u64,
    dl_scope: DlScope,
    /// local id → global id.
    globals: Vec<NodeId>,
    /// global id → local id.
    local_of: HashMap<u32, u32>,
    /// Local CSR over `P ∪ SC(P)` (both arcs for every undirected edge).
    adj_offsets: Vec<u32>,
    adj_node: Vec<u32>,
    adj_weight: Vec<Weight>,
    /// Local inverted index: keyword → local node ids containing it.
    kw_nodes: HashMap<KeywordId, Vec<u32>>,
    /// §3.7 aggregation with portals translated to local ids:
    /// keyword → (local portal, distance), sorted by distance.
    keyword_portals: HashMap<KeywordId, Vec<(u32, u64)>>,
    /// Node-keyed DL with local portal ids, for `Term::Node` seeds.
    dl_node_entries: HashMap<u32, Vec<(u32, u64)>>,
    /// |SC(P)| — β of Theorem 5.
    sc_size: usize,
    ws: DijkstraWorkspace,
}

impl Graph for FragmentEngine {
    fn num_nodes(&self) -> usize {
        self.globals.len()
    }

    #[inline]
    fn for_each_neighbor(&self, node: u32, f: &mut dyn FnMut(u32, Weight)) {
        let lo = self.adj_offsets[node as usize] as usize;
        let hi = self.adj_offsets[node as usize + 1] as usize;
        for i in lo..hi {
            f(self.adj_node[i], self.adj_weight[i]);
        }
    }
}

impl FragmentEngine {
    /// Materialize the engine for `index.fragment()` from the global network
    /// and partitioning. This is the *loading* phase; afterwards the engine
    /// is self-contained.
    pub fn new(
        net: &RoadNetwork,
        partitioning: &Partitioning,
        index: &NpdIndex,
    ) -> Result<Self, IndexError> {
        let fragment = index.fragment();
        let members = partitioning.nodes(fragment);
        let globals: Vec<NodeId> = members.to_vec();
        let mut local_of = HashMap::with_capacity(globals.len());
        for (i, &g) in globals.iter().enumerate() {
            local_of.insert(g.0, i as u32);
        }
        // Local adjacency: intra-fragment original edges + SC shortcuts.
        let mut adj: Vec<Vec<(u32, Weight)>> = vec![Vec::new(); globals.len()];
        for (i, &g) in globals.iter().enumerate() {
            for (nb, w) in net.neighbors(g) {
                if let Some(&ln) = local_of.get(&nb.0) {
                    adj[i].push((ln, w));
                }
            }
        }
        for &(a, b, d) in index.shortcuts() {
            let w = Weight::try_from(d).map_err(|_| IndexError::WeightOverflow { distance: d })?;
            let (la, lb) = (local_of[&a.0], local_of[&b.0]);
            adj[la as usize].push((lb, w));
            adj[lb as usize].push((la, w));
        }
        let mut adj_offsets = Vec::with_capacity(globals.len() + 1);
        adj_offsets.push(0u32);
        let mut adj_node = Vec::new();
        let mut adj_weight = Vec::new();
        for list in &adj {
            for &(n, w) in list {
                adj_node.push(n);
                adj_weight.push(w);
            }
            adj_offsets.push(adj_node.len() as u32);
        }
        // Local keyword inverted index.
        let mut kw_nodes: HashMap<KeywordId, Vec<u32>> = HashMap::new();
        for (i, &g) in globals.iter().enumerate() {
            for &k in net.keywords(g) {
                kw_nodes.entry(k).or_default().push(i as u32);
            }
        }
        // DL with local portal ids.
        let mut keyword_portals = HashMap::new();
        for (&kw, list) in &index.keyword_portals {
            let translated: Vec<(u32, u64)> =
                list.iter().map(|&(p, d)| (local_of[&p.0], d)).collect();
            keyword_portals.insert(kw, translated);
        }
        let mut dl_node_entries = HashMap::new();
        for (node, list) in index.dl_entries() {
            let translated: Vec<(u32, u64)> =
                list.iter().map(|&(p, d)| (local_of[&p.0], d)).collect();
            dl_node_entries.insert(node.0, translated);
        }
        let num_local = globals.len();
        Ok(FragmentEngine {
            fragment,
            max_r: index.max_r(),
            dl_scope: index.dl_scope(),
            globals,
            local_of,
            adj_offsets,
            adj_node,
            adj_weight,
            kw_nodes,
            keyword_portals,
            dl_node_entries,
            sc_size: index.shortcuts().len(),
            ws: DijkstraWorkspace::new(num_local),
        })
    }

    pub fn fragment(&self) -> FragmentId {
        self.fragment
    }

    /// Number of nodes in the fragment.
    pub fn num_local_nodes(&self) -> usize {
        self.globals.len()
    }

    /// The `maxR` the underlying index supports.
    pub fn max_r(&self) -> u64 {
        self.max_r
    }

    /// DL scope of the underlying index.
    pub fn dl_scope(&self) -> DlScope {
        self.dl_scope
    }

    /// Approximate resident bytes of the engine's state.
    pub fn memory_bytes(&self) -> usize {
        self.globals.len() * 4
            + self.local_of.len() * 8
            + self.adj_offsets.len() * 4
            + self.adj_node.len() * 4
            + self.adj_weight.len() * 4
            + self.kw_nodes.values().map(|v| v.len() * 4 + 8).sum::<usize>()
            + self.keyword_portals.values().map(|v| v.len() * 12 + 8).sum::<usize>()
            + self.dl_node_entries.values().map(|v| v.len() * 12 + 8).sum::<usize>()
    }

    /// Compute the local keyword coverage `R(term, radius) ∩ P` (Steps 1–3
    /// of Alg. 2 plus the coverage Dijkstra).
    ///
    /// The result is a pure function of the immutable engine, returned as an
    /// `Arc` so callers (and the cluster-layer coverage cache) can share it
    /// across queries without copying. Radius validation happens at
    /// coordinator admission; the guard here is a debug assert only.
    pub fn coverage(
        &mut self,
        term: Term,
        radius: u64,
    ) -> Result<(Arc<BitSet>, QueryCost), QueryError> {
        // Split borrows: the search mutates `ws` while reading `self`'s CSR.
        let mut ws = std::mem::replace(&mut self.ws, DijkstraWorkspace::new(0));
        let out = self.coverage_with(&mut ws, term, radius);
        self.ws = ws;
        out
    }

    /// [`Self::coverage`] against a caller-owned workspace: the engine is
    /// only *read*, so independent slots of a batch can be evaluated
    /// concurrently from one shared engine, each thread bringing its own
    /// [`DijkstraWorkspace`]. Identical result and cost accounting to
    /// [`Self::coverage`] (which delegates here with the resident
    /// workspace).
    pub fn coverage_with(
        &self,
        ws: &mut DijkstraWorkspace,
        term: Term,
        radius: u64,
    ) -> Result<(Arc<BitSet>, QueryCost), QueryError> {
        debug_assert!(
            radius <= self.max_r,
            "radius {radius} exceeds index maxR {} — admission should have rejected this query",
            self.max_r
        );
        let mut cost = QueryCost::default();
        let mut seeds: Vec<(u32, u64)> = Vec::new();
        match term {
            Term::Keyword(k) => {
                if let Some(locals) = self.kw_nodes.get(&k) {
                    seeds.extend(locals.iter().map(|&n| (n, 0)));
                }
                if let Some(pairs) = self.keyword_portals.get(&k) {
                    // Sorted by distance → early break at radius (Step 2's
                    // "retain pairs with distance at most r").
                    for &(portal, d) in pairs {
                        if d > radius {
                            break;
                        }
                        cost.alpha += 1;
                        seeds.push((portal, d));
                    }
                }
            }
            Term::Node(l) => {
                if let Some(&local) = self.local_of.get(&l.0) {
                    seeds.push((local, 0));
                } else if let Some(pairs) = self.dl_node_entries.get(&l.0) {
                    for &(portal, d) in pairs {
                        if d > radius {
                            break;
                        }
                        cost.alpha += 1;
                        seeds.push((portal, d));
                    }
                }
                // No entry: either the location is farther than `radius`
                // from every portal of P (empty local coverage — correct),
                // or it is not DL-indexed under ObjectsOnly scope. The
                // coordinator validates locations against the scope; the
                // engine itself cannot distinguish the two cases without
                // global data (see `DlScope`).
            }
        }
        let mut cov = BitSet::new(self.globals.len());
        let stats = ws.run(self, &seeds, radius, |n, _| {
            cov.insert(n as usize);
            Control::Continue
        });
        cost.settled = stats.settled;
        cost.pushed = stats.pushed;
        cost.coverage_nodes = cov.count();
        cost.per_slot.push(SlotCost {
            term,
            radius,
            alpha: cost.alpha,
            settled: cost.settled,
            pushed: cost.pushed,
            coverage_nodes: cost.coverage_nodes,
            cached: false,
        });
        Ok((Arc::new(cov), cost))
    }

    /// Local per-node distances for one term: `(local id, d(node, term))`
    /// for every local node within `bound` (the coverage Dijkstra of Alg. 2
    /// with distances kept). Exact for `bound ≤ maxR` (Theorem 3).
    pub fn distance_table(
        &mut self,
        term: Term,
        bound: u64,
    ) -> Result<(Vec<(u32, u64)>, QueryCost), QueryError> {
        debug_assert!(
            bound <= self.max_r,
            "bound {bound} exceeds index maxR {} — admission should have rejected this query",
            self.max_r
        );
        let mut cost = QueryCost::default();
        let mut seeds: Vec<(u32, u64)> = Vec::new();
        match term {
            Term::Keyword(k) => {
                if let Some(locals) = self.kw_nodes.get(&k) {
                    seeds.extend(locals.iter().map(|&n| (n, 0)));
                }
                if let Some(pairs) = self.keyword_portals.get(&k) {
                    for &(portal, d) in pairs {
                        if d > bound {
                            break;
                        }
                        cost.alpha += 1;
                        seeds.push((portal, d));
                    }
                }
            }
            Term::Node(l) => {
                if let Some(&local) = self.local_of.get(&l.0) {
                    seeds.push((local, 0));
                } else if let Some(pairs) = self.dl_node_entries.get(&l.0) {
                    for &(portal, d) in pairs {
                        if d > bound {
                            break;
                        }
                        cost.alpha += 1;
                        seeds.push((portal, d));
                    }
                }
            }
        }
        let mut table = Vec::new();
        let mut ws = std::mem::replace(&mut self.ws, DijkstraWorkspace::new(0));
        let stats = ws.run(&*self, &seeds, bound, |n, d| {
            table.push((n, d));
            Control::Continue
        });
        self.ws = ws;
        cost.settled = stats.settled;
        cost.pushed = stats.pushed;
        cost.coverage_nodes = table.len();
        cost.per_slot.push(SlotCost {
            term,
            radius: bound,
            alpha: cost.alpha,
            settled: cost.settled,
            pushed: cost.pushed,
            coverage_nodes: cost.coverage_nodes,
            cached: false,
        });
        Ok((table, cost))
    }

    /// The fragment's local contribution to a top-k query: its best `k`
    /// `(score, global node)` pairs, exact within the query horizon.
    pub fn topk_local(
        &mut self,
        q: &crate::topk::TopKQuery,
    ) -> Result<(Vec<crate::topk::Ranked>, QueryCost), QueryError> {
        debug_assert!(
            !q.keywords.is_empty(),
            "empty top-k query — admission should have rejected this query"
        );
        let start = std::time::Instant::now();
        let mut total = QueryCost { beta: self.sc_size, ..QueryCost::default() };
        // score[i] = Some(partial aggregate) while node i is within the
        // horizon of every term processed so far.
        let mut scores: Vec<Option<u64>> = vec![Some(0); self.globals.len()];
        let mut this_term = vec![INF_LOCAL; self.globals.len()];
        for &kw in &q.keywords {
            let (table, cost) = self.distance_table(Term::Keyword(kw), q.horizon)?;
            total.absorb(&cost);
            for &(n, d) in &table {
                this_term[n as usize] = d;
            }
            for (i, slot) in scores.iter_mut().enumerate() {
                if let Some(acc) = *slot {
                    let d = this_term[i];
                    *slot = if d == INF_LOCAL { None } else { Some(q.combine.fold(acc, d)) };
                }
            }
            for &(n, _) in &table {
                this_term[n as usize] = INF_LOCAL;
            }
        }
        let mut ranked: Vec<crate::topk::Ranked> = scores
            .into_iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|score| (score, self.globals[i])))
            .collect();
        ranked.sort_unstable();
        ranked.truncate(q.k);
        total.results = ranked.len();
        total.elapsed = start.elapsed();
        Ok((ranked, total))
    }

    /// Evaluate a D-function on this fragment (Alg. 2), returning the local
    /// result nodes as **global** ids (sorted) plus the cost breakdown.
    ///
    /// Convenience wrapper: lowers to a [`QueryPlan`] (deduplicating
    /// repeated terms) and runs [`Self::evaluate_plan`].
    pub fn evaluate(&mut self, f: &DFunction) -> Result<(Vec<NodeId>, QueryCost), QueryError> {
        self.evaluate_plan(&QueryPlan::lower(f))
    }

    /// Evaluate a normalized plan without a coverage store.
    pub fn evaluate_plan(
        &mut self,
        plan: &QueryPlan,
    ) -> Result<(Vec<NodeId>, QueryCost), QueryError> {
        self.evaluate_plan_with_cache(plan, &mut NoCache)
    }

    /// Evaluate a normalized plan, consulting `store` per coverage slot.
    ///
    /// This is the layered split of Alg. 2: a per-slot coverage stage (each
    /// slot either served from `store` or computed and offered back) and a
    /// combine stage running the plan's operator program. Lemma 1 semantics
    /// are identical to [`Self::evaluate`]; a hit skips the Dijkstra, never
    /// changes the answer.
    pub fn evaluate_plan_with_cache(
        &mut self,
        plan: &QueryPlan,
        store: &mut dyn CoverageStore,
    ) -> Result<(Vec<NodeId>, QueryCost), QueryError> {
        self.evaluate_plan_prefetched(plan, store, &HashMap::new())
    }

    /// [`Self::evaluate_plan_with_cache`] with a table of already-computed
    /// coverages (the commit half of the worker pool's two-phase protocol).
    ///
    /// For every store miss the slot is first looked up in `prefetched`;
    /// present entries stand in for the Dijkstra the serial path would run
    /// right here — same coverage, same recorded cost — and are offered to
    /// `store` exactly as a fresh computation would be, so cache admissions,
    /// evictions, and counters replay in serial order. Absent slots (a
    /// predicted hit evicted mid-frame, or a slot whose parallel evaluation
    /// panicked) fall back to the in-place serial computation.
    pub fn evaluate_plan_prefetched(
        &mut self,
        plan: &QueryPlan,
        store: &mut dyn CoverageStore,
        prefetched: &HashMap<(Term, u64), (Arc<BitSet>, QueryCost)>,
    ) -> Result<(Vec<NodeId>, QueryCost), QueryError> {
        let start = std::time::Instant::now();
        let mut total = QueryCost { beta: self.sc_size, ..QueryCost::default() };
        let mut coverages: Vec<Arc<BitSet>> = Vec::with_capacity(plan.num_slots());
        for slot in plan.slots() {
            if let Some(hit) = store.lookup(slot) {
                let nodes = hit.count();
                total.coverage_nodes += nodes;
                total.per_slot.push(SlotCost {
                    term: slot.term,
                    radius: slot.radius,
                    alpha: 0,
                    settled: 0,
                    pushed: 0,
                    coverage_nodes: nodes,
                    cached: true,
                });
                coverages.push(hit);
                continue;
            }
            let (cov, cost) = match prefetched.get(&(slot.term, slot.radius)) {
                Some((cov, cost)) => (Arc::clone(cov), cost.clone()),
                None => self.coverage(slot.term, slot.radius)?,
            };
            store.store(slot, &cov);
            total.absorb(&cost);
            coverages.push(cov);
        }
        // Single-operand plans (the common 1-keyword SGKQ/RKQ shape) read
        // the coverage directly instead of cloning it through `combine`.
        let mut result: Vec<NodeId> = match plan.single_slot() {
            Some(slot) => coverages[slot as usize].iter().map(|i| self.globals[i]).collect(),
            None => plan.combine(&coverages).iter().map(|i| self.globals[i]).collect(),
        };
        result.sort_unstable();
        total.results = result.len();
        total.elapsed = start.elapsed();
        Ok((result, total))
    }

    /// Translate a local coverage bitset to global node ids (test helper).
    pub fn to_global(&self, cov: &BitSet) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = cov.iter().map(|i| self.globals[i]).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CentralizedCoverage;
    use crate::index::{build_all_indexes, IndexConfig};
    use crate::query::{RangeKeywordQuery, SgkQuery};
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::graph::figure1_network;

    /// Distributed evaluation = union of fragment evaluations (Lemma 1);
    /// compare against centralized ground truth (Theorem 3 end-to-end).
    fn assert_distributed_matches_centralized(
        net: &RoadNetwork,
        k: usize,
        cfg: &IndexConfig,
        f: &DFunction,
    ) {
        let p = MultilevelPartitioner::default().partition(net, k);
        let indexes = build_all_indexes(net, &p, cfg);
        let mut distributed: Vec<NodeId> = Vec::new();
        for idx in &indexes {
            let mut engine = FragmentEngine::new(net, &p, idx).unwrap();
            let (local, _) = engine.evaluate(f).unwrap();
            distributed.extend(local);
        }
        distributed.sort_unstable();
        let mut central = CentralizedCoverage::new(net);
        let expect = central.evaluate(f).unwrap();
        assert_eq!(distributed, expect, "query {f}");
    }

    #[test]
    fn figure1_sgkq_distributed_matches_example1() {
        let (net, names) = figure1_network();
        let museum = net.vocab().get("museum").unwrap();
        let school = net.vocab().get("school").unwrap();
        let f = SgkQuery::new(vec![museum, school], 3).to_dfunction();
        assert_distributed_matches_centralized(&net, 2, &IndexConfig::unbounded(), &f);
        let _ = names;
    }

    #[test]
    fn generated_network_sgkq_matches_centralized_for_all_radii() {
        let net = GridNetworkConfig::tiny(42).generate();
        let freqs = net.keyword_frequencies();
        // Pick the two most frequent keywords so coverages are non-trivial.
        let mut ranked: Vec<usize> = (0..freqs.len()).collect();
        ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
        let k1 = KeywordId(ranked[0] as u32);
        let k2 = KeywordId(ranked[1] as u32);
        let e = net.avg_edge_weight();
        for r in [0, e, 3 * e, 10 * e] {
            let f = SgkQuery::new(vec![k1, k2], r).to_dfunction();
            assert_distributed_matches_centralized(&net, 3, &IndexConfig::unbounded(), &f);
        }
    }

    #[test]
    fn rkq_distributed_matches_centralized() {
        let net = GridNetworkConfig::tiny(43).generate();
        // Query location: some object node; keyword: its first keyword →
        // non-empty result guaranteed (the node itself at distance 0).
        let obj = net.node_ids().find(|&n| net.is_object(n)).unwrap();
        let kw = net.keywords(obj)[0];
        let f = RangeKeywordQuery::new(obj, vec![kw], 5 * net.avg_edge_weight()).to_dfunction();
        assert_distributed_matches_centralized(&net, 3, &IndexConfig::unbounded(), &f);
    }

    #[test]
    fn bounded_max_r_still_exact_within_bound() {
        let net = GridNetworkConfig::tiny(44).generate();
        let e = net.avg_edge_weight();
        let cfg = IndexConfig::with_max_r(8 * e);
        let freqs = net.keyword_frequencies();
        let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
        for r in [e, 4 * e, 8 * e] {
            let f = DFunction::single(Term::Keyword(top), r);
            assert_distributed_matches_centralized(&net, 4, &cfg, &f);
        }
    }

    /// Radius validation moved to coordinator admission; the engine keeps a
    /// debug assert as the last-line guard.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds index maxR")]
    fn radius_above_max_r_trips_debug_guard() {
        let net = GridNetworkConfig::tiny(45).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let cfg = IndexConfig::with_max_r(net.avg_edge_weight());
        let indexes = build_all_indexes(&net, &p, &cfg);
        let mut engine = FragmentEngine::new(&net, &p, &indexes[0]).unwrap();
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 100 * net.avg_edge_weight());
        let _ = engine.evaluate(&f);
    }

    /// A caching store changes the work (slots marked cached, zero settled)
    /// but never the answer.
    #[test]
    fn plan_evaluation_with_store_matches_uncached() {
        use crate::plan::QueryPlan;
        use std::collections::HashMap as Map;
        use std::sync::Arc;

        struct MapStore(Map<(Term, u64), Arc<crate::bitset::BitSet>>);
        impl crate::engine::CoverageStore for MapStore {
            fn lookup(&mut self, slot: &crate::dfunc::DTerm) -> Option<Arc<crate::bitset::BitSet>> {
                self.0.get(&(slot.term, slot.radius)).cloned()
            }
            fn store(&mut self, slot: &crate::dfunc::DTerm, cov: &Arc<crate::bitset::BitSet>) {
                self.0.insert((slot.term, slot.radius), cov.clone());
            }
        }

        let net = GridNetworkConfig::tiny(49).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let mut engine = FragmentEngine::new(&net, &p, &indexes[0]).unwrap();
        let freqs = net.keyword_frequencies();
        let mut ranked: Vec<usize> = (0..freqs.len()).collect();
        ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
        let e = net.avg_edge_weight();
        let f =
            SgkQuery::new(vec![KeywordId(ranked[0] as u32), KeywordId(ranked[1] as u32)], 4 * e)
                .to_dfunction();
        let plan = QueryPlan::lower(&f);

        let (expect, cold_cost) = engine.evaluate_plan(&plan).unwrap();
        assert!(cold_cost.per_slot.iter().all(|s| !s.cached));

        let mut store = MapStore(Map::new());
        let (first, _) = engine.evaluate_plan_with_cache(&plan, &mut store).unwrap();
        let (second, warm_cost) = engine.evaluate_plan_with_cache(&plan, &mut store).unwrap();
        assert_eq!(first, expect);
        assert_eq!(second, expect);
        assert!(warm_cost.per_slot.iter().all(|s| s.cached && s.settled == 0));
        assert_eq!(warm_cost.settled, 0);
        assert_eq!(warm_cost.coverage_nodes, cold_cost.coverage_nodes);
    }

    #[test]
    fn subtraction_and_union_dfunctions_match() {
        let net = GridNetworkConfig::tiny(46).generate();
        let freqs = net.keyword_frequencies();
        let mut ranked: Vec<usize> = (0..freqs.len()).collect();
        ranked.sort_unstable_by_key(|&k| std::cmp::Reverse(freqs[k]));
        let (a, b, c) =
            (KeywordId(ranked[0] as u32), KeywordId(ranked[1] as u32), KeywordId(ranked[2] as u32));
        let e = net.avg_edge_weight();
        // (R(a, 4e) − R(b, 2e)) ∪ R(c, 3e)
        let f = DFunction::single(Term::Keyword(a), 4 * e)
            .then(crate::dfunc::SetOp::Subtract, Term::Keyword(b), 2 * e)
            .then(crate::dfunc::SetOp::Union, Term::Keyword(c), 3 * e);
        assert_distributed_matches_centralized(&net, 3, &IndexConfig::unbounded(), &f);
    }

    #[test]
    fn cost_model_reports_theorem5_quantities() {
        let net = GridNetworkConfig::tiny(47).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
        let mut engine = FragmentEngine::new(&net, &p, &indexes[1]).unwrap();
        let freqs = net.keyword_frequencies();
        let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
        let f = DFunction::single(Term::Keyword(top), 6 * net.avg_edge_weight());
        let (_, cost) = engine.evaluate(&f).unwrap();
        assert_eq!(cost.beta, indexes[1].shortcuts().len());
        assert!(cost.settled > 0);
        assert!(cost.coverage_nodes >= cost.results);
    }

    #[test]
    fn engine_is_self_contained_after_construction() {
        // The engine must answer queries correctly even after the global
        // network and index are dropped (share-nothing property).
        let net = GridNetworkConfig::tiny(48).generate();
        let freqs = net.keyword_frequencies();
        let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
        let e = net.avg_edge_weight();
        let f = DFunction::single(Term::Keyword(top), 4 * e);
        let mut central = CentralizedCoverage::new(&net);
        let expect = central.evaluate(&f).unwrap();

        let p = MultilevelPartitioner::default().partition(&net, 2);
        let mut engines: Vec<FragmentEngine> = {
            let indexes = build_all_indexes(&net, &p, &IndexConfig::unbounded());
            indexes.iter().map(|i| FragmentEngine::new(&net, &p, i).unwrap()).collect()
        }; // indexes dropped here
        let mut got: Vec<NodeId> = Vec::new();
        for engine in &mut engines {
            got.extend(engine.evaluate(&f).unwrap().0);
        }
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}
