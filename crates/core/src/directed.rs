//! Directed NPD-index — the paper's §2.1 adaptation, made concrete.
//!
//! Everything mirrors the undirected construction with directions made
//! explicit:
//!
//! * **Coverage direction.** `R(ω, r) = { A : d(ω → A) ≤ r }` — nodes
//!   *reachable from* a keyword node within `r`, which is exactly the
//!   paper's virtual-node formulation (virtual `W` with arcs `W → keyword
//!   nodes`, forward Dijkstra). For the opposite semantics ("nodes that can
//!   reach a keyword") run the same machinery on [`DirectedRoadNetwork::reversed`].
//! * **Portals.** An *in-portal* of fragment `P` is a node of `P` with an
//!   incoming arc from outside; an *out-portal* has an outgoing arc to
//!   outside. Forward paths enter `P` through in-portals and leave through
//!   out-portals.
//! * **DL(P).** For an external keyword node `A`: `(N, d(A→N))` for
//!   in-portals `N` whose every shortest `A→N` path meets `P` only at `N`.
//! * **SC(P).** Directed shortcuts `u → N` (out-portal → in-portal) for
//!   paths that leave and re-enter `P` with no internal `P` node, excluding
//!   original arcs of equal weight (the directed Rule 1, including the
//!   weighted-triple condition 2).
//!
//! Both components fall out of one backward search per in-portal over the
//! **reversed** graph — the directed analogue of Algorithm 1 — so the
//! construction remains fragment-wise and the query remains one-round and
//! communication-free.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use disks_roadnet::digraph::DirectedRoadNetwork;
use disks_roadnet::dijkstra::Control;
use disks_roadnet::{DijkstraWorkspace, Graph, KeywordId, NodeId, Weight, INF};

use crate::error::{IndexError, QueryError};

/// A k-way node assignment over a directed network.
#[derive(Debug, Clone)]
pub struct DirectedPartition {
    assignment: Vec<u32>,
    k: usize,
    /// Per fragment: nodes with an incoming cross arc (forward entry points).
    in_portals: Vec<Vec<NodeId>>,
    /// Per fragment: member nodes.
    members: Vec<Vec<NodeId>>,
}

impl DirectedPartition {
    /// Build from a node → fragment assignment.
    ///
    /// # Panics
    /// Panics if the assignment length mismatches or a fragment id ≥ `k`.
    pub fn from_assignment(net: &DirectedRoadNetwork, assignment: Vec<u32>, k: usize) -> Self {
        assert_eq!(assignment.len(), net.num_nodes(), "assignment must label every node");
        assert!(k > 0);
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for (i, &f) in assignment.iter().enumerate() {
            assert!((f as usize) < k, "fragment id out of range");
            members[f as usize].push(NodeId(i as u32));
        }
        let mut is_in_portal = vec![false; net.num_nodes()];
        for (from, to, _) in net.arcs() {
            if assignment[from.index()] != assignment[to.index()] {
                is_in_portal[to.index()] = true;
            }
        }
        let mut in_portals: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for (i, &p) in is_in_portal.iter().enumerate() {
            if p {
                in_portals[assignment[i] as usize].push(NodeId(i as u32));
            }
        }
        DirectedPartition { assignment, k, in_portals, members }
    }

    pub fn num_fragments(&self) -> usize {
        self.k
    }

    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    pub fn members(&self, f: u32) -> &[NodeId] {
        &self.members[f as usize]
    }

    pub fn in_portals(&self, f: u32) -> &[NodeId] {
        &self.in_portals[f as usize]
    }
}

/// The directed NPD-index of one fragment.
#[derive(Debug, Clone)]
pub struct DirectedNpdIndex {
    fragment: u32,
    max_r: u64,
    /// Directed shortcuts `(from, to, d(from→to))`, out-portal → in-portal.
    sc: Vec<(NodeId, NodeId, u64)>,
    /// External object node → sorted `(in-portal, d(node→portal))`.
    dl_entries: HashMap<NodeId, Vec<(NodeId, u64)>>,
    /// Keyword → per-in-portal minimum `d(ω→portal)` over external carriers.
    keyword_portals: HashMap<KeywordId, Vec<(NodeId, u64)>>,
}

impl DirectedNpdIndex {
    pub fn fragment(&self) -> u32 {
        self.fragment
    }

    pub fn shortcuts(&self) -> &[(NodeId, NodeId, u64)] {
        &self.sc
    }

    pub fn dl_entry(&self, node: NodeId) -> Option<&[(NodeId, u64)]> {
        self.dl_entries.get(&node).map(Vec::as_slice)
    }

    pub fn distances_recorded(&self) -> usize {
        self.sc.len() + self.dl_entries.values().map(Vec::len).sum::<usize>()
    }
}

/// Build the directed index for `fragment`: one bounded Dijkstra per
/// in-portal over the reversed graph, with the Rules 3/4 tie-merging flag.
pub fn build_directed_index(
    net: &DirectedRoadNetwork,
    partition: &DirectedPartition,
    fragment: u32,
    max_r: u64,
) -> DirectedNpdIndex {
    let assignment = partition.assignment();
    let n = net.num_nodes();
    let reversed = net.reversed();
    let mut dist = vec![INF; n];
    let mut reentered = vec![false; n];
    let mut stamp = vec![0u32; n];
    let mut epoch = 0u32;
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

    let mut sc: Vec<(NodeId, NodeId, u64)> = Vec::new();
    let mut dl_entries: HashMap<NodeId, Vec<(NodeId, u64)>> = HashMap::new();

    for &portal in partition.in_portals(fragment) {
        epoch += 1;
        heap.clear();
        let source = portal.0;
        dist[source as usize] = 0;
        stamp[source as usize] = epoch;
        reentered[source as usize] = false;
        heap.push(Reverse((0, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if stamp[u as usize] != epoch || d > dist[u as usize] {
                continue;
            }
            // Mark settled by leaving dist as-is; stale entries are filtered
            // by the distance comparison above.
            let u_reentered = reentered[u as usize];
            if u != source && !u_reentered {
                if assignment[u as usize] == fragment {
                    // Directed Rule 1: shortcut u → portal, unless an
                    // original arc of exactly this weight exists.
                    if net.arc_weight(NodeId(u), portal).map(u64::from) != Some(d) {
                        sc.push((NodeId(u), portal, d));
                    }
                } else if net.is_object(NodeId(u)) {
                    dl_entries.entry(NodeId(u)).or_default().push((portal, d));
                }
            }
            let flag_through_u = u_reentered || (u != source && assignment[u as usize] == fragment);
            reversed.for_each_neighbor(u, &mut |v, w| {
                let nd = d.saturating_add(u64::from(w));
                if nd > max_r {
                    return;
                }
                let vi = v as usize;
                let cur = if stamp[vi] == epoch { dist[vi] } else { INF };
                match nd.cmp(&cur) {
                    std::cmp::Ordering::Less => {
                        dist[vi] = nd;
                        stamp[vi] = epoch;
                        reentered[vi] = flag_through_u;
                        heap.push(Reverse((nd, v)));
                    }
                    std::cmp::Ordering::Equal => {
                        // Rules 3/4: merge across equal shortest paths.
                        reentered[vi] |= flag_through_u;
                    }
                    std::cmp::Ordering::Greater => {}
                }
            });
        }
    }
    sc.sort_unstable();
    sc.dedup();
    for list in dl_entries.values_mut() {
        list.sort_unstable_by_key(|&(p, d)| (d, p.0));
    }
    let mut kw_min: HashMap<(KeywordId, u32), u64> = HashMap::new();
    for (&node, list) in &dl_entries {
        for &kw in net.keywords(node) {
            for &(portal, d) in list {
                kw_min.entry((kw, portal.0)).and_modify(|c| *c = (*c).min(d)).or_insert(d);
            }
        }
    }
    let mut keyword_portals: HashMap<KeywordId, Vec<(NodeId, u64)>> = HashMap::new();
    for ((kw, portal), d) in kw_min {
        keyword_portals.entry(kw).or_default().push((NodeId(portal), d));
    }
    for list in keyword_portals.values_mut() {
        list.sort_unstable_by_key(|&(p, d)| (d, p.0));
    }
    DirectedNpdIndex { fragment, max_r, sc, dl_entries, keyword_portals }
}

/// The directed per-fragment engine: local directed CSR (intra-fragment
/// arcs + SC arcs) with DL-seeded forward coverage.
pub struct DirectedFragmentEngine {
    fragment: u32,
    max_r: u64,
    globals: Vec<NodeId>,
    adj_offsets: Vec<u32>,
    adj_node: Vec<u32>,
    adj_weight: Vec<Weight>,
    kw_nodes: HashMap<KeywordId, Vec<u32>>,
    keyword_portals: HashMap<KeywordId, Vec<(u32, u64)>>,
    ws: DijkstraWorkspace,
}

impl Graph for DirectedFragmentEngine {
    fn num_nodes(&self) -> usize {
        self.globals.len()
    }

    fn for_each_neighbor(&self, node: u32, f: &mut dyn FnMut(u32, Weight)) {
        let lo = self.adj_offsets[node as usize] as usize;
        let hi = self.adj_offsets[node as usize + 1] as usize;
        for i in lo..hi {
            f(self.adj_node[i], self.adj_weight[i]);
        }
    }
}

impl DirectedFragmentEngine {
    pub fn new(
        net: &DirectedRoadNetwork,
        partition: &DirectedPartition,
        index: &DirectedNpdIndex,
    ) -> Result<Self, IndexError> {
        let fragment = index.fragment;
        let globals: Vec<NodeId> = partition.members(fragment).to_vec();
        let mut local_of = HashMap::with_capacity(globals.len());
        for (i, &g) in globals.iter().enumerate() {
            local_of.insert(g.0, i as u32);
        }
        let mut adj: Vec<Vec<(u32, Weight)>> = vec![Vec::new(); globals.len()];
        for (i, &g) in globals.iter().enumerate() {
            for (to, w) in net.out_neighbors(g) {
                if let Some(&lt) = local_of.get(&to.0) {
                    adj[i].push((lt, w));
                }
            }
        }
        for &(from, to, d) in &index.sc {
            let w = Weight::try_from(d).map_err(|_| IndexError::WeightOverflow { distance: d })?;
            adj[local_of[&from.0] as usize].push((local_of[&to.0], w));
        }
        let mut adj_offsets = Vec::with_capacity(globals.len() + 1);
        adj_offsets.push(0u32);
        let mut adj_node = Vec::new();
        let mut adj_weight = Vec::new();
        for list in &adj {
            for &(n, w) in list {
                adj_node.push(n);
                adj_weight.push(w);
            }
            adj_offsets.push(adj_node.len() as u32);
        }
        let mut kw_nodes: HashMap<KeywordId, Vec<u32>> = HashMap::new();
        for (i, &g) in globals.iter().enumerate() {
            for &k in net.keywords(g) {
                kw_nodes.entry(k).or_default().push(i as u32);
            }
        }
        let keyword_portals = index
            .keyword_portals
            .iter()
            .map(|(&kw, list)| {
                (kw, list.iter().map(|&(p, d)| (local_of[&p.0], d)).collect::<Vec<_>>())
            })
            .collect();
        let nl = globals.len();
        Ok(DirectedFragmentEngine {
            fragment,
            max_r: index.max_r,
            globals,
            adj_offsets,
            adj_node,
            adj_weight,
            kw_nodes,
            keyword_portals,
            ws: DijkstraWorkspace::new(nl),
        })
    }

    pub fn fragment(&self) -> u32 {
        self.fragment
    }

    /// Local directed coverage `R(ω, r) ∩ P` (global node ids, sorted).
    pub fn coverage(&mut self, kw: KeywordId, r: u64) -> Result<Vec<NodeId>, QueryError> {
        if r > self.max_r {
            return Err(QueryError::RadiusExceedsMaxR { r, max_r: self.max_r });
        }
        let mut seeds: Vec<(u32, u64)> = Vec::new();
        if let Some(locals) = self.kw_nodes.get(&kw) {
            seeds.extend(locals.iter().map(|&n| (n, 0)));
        }
        if let Some(pairs) = self.keyword_portals.get(&kw) {
            for &(portal, d) in pairs {
                if d > r {
                    break;
                }
                seeds.push((portal, d));
            }
        }
        let mut covered = Vec::new();
        let mut ws = std::mem::replace(&mut self.ws, DijkstraWorkspace::new(0));
        ws.run(&*self, &seeds, r, |n, _| {
            covered.push(self.globals[n as usize]);
            Control::Continue
        });
        self.ws = ws;
        covered.sort_unstable();
        Ok(covered)
    }

    /// Use by tests: the local ids of this fragment.
    pub fn num_local_nodes(&self) -> usize {
        self.globals.len()
    }
}

/// Centralized directed coverage (ground truth): forward multi-source
/// Dijkstra from all `ω` carriers.
pub fn directed_centralized_coverage(
    net: &DirectedRoadNetwork,
    kw: KeywordId,
    r: u64,
) -> Vec<NodeId> {
    let seeds: Vec<(u32, u64)> = net.nodes_with_keyword(kw).iter().map(|n| (n.0, 0)).collect();
    let mut ws = DijkstraWorkspace::new(net.num_nodes());
    let mut out = Vec::new();
    ws.run(&net.forward(), &seeds, r, |n, _| {
        out.push(NodeId(n));
        Control::Continue
    });
    out.sort_unstable();
    out
}

/// Distributed directed SGKQ (intersection of per-keyword coverages),
/// evaluated per fragment and unioned — Lemma 1 is direction-agnostic.
pub fn directed_sgkq_distributed(
    net: &DirectedRoadNetwork,
    partition: &DirectedPartition,
    indexes: &[DirectedNpdIndex],
    keywords: &[KeywordId],
    r: u64,
) -> Result<Vec<NodeId>, QueryError> {
    if keywords.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    let mut results = Vec::new();
    for idx in indexes {
        let mut engine = DirectedFragmentEngine::new(net, partition, idx)
            .map_err(|e| QueryError::Engine(e.to_string()))?;
        let mut acc: Option<Vec<NodeId>> = None;
        for &kw in keywords {
            let cov = engine.coverage(kw, r)?;
            acc = Some(match acc {
                None => cov,
                Some(prev) => prev.into_iter().filter(|n| cov.binary_search(n).is_ok()).collect(),
            });
        }
        results.extend(acc.unwrap_or_default());
    }
    results.sort_unstable();
    Ok(results)
}

/// Centralized directed SGKQ for cross-checking.
pub fn directed_sgkq_centralized(
    net: &DirectedRoadNetwork,
    keywords: &[KeywordId],
    r: u64,
) -> Result<Vec<NodeId>, QueryError> {
    if keywords.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    let mut acc: Option<Vec<NodeId>> = None;
    for &kw in keywords {
        let cov = directed_centralized_coverage(net, kw, r);
        acc = Some(match acc {
            None => cov,
            Some(prev) => prev.into_iter().filter(|n| cov.binary_search(n).is_ok()).collect(),
        });
    }
    Ok(acc.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_roadnet::digraph::DirectedRoadNetworkBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// One-way ring with a keyword at one node: coverage is strongly
    /// asymmetric (only "downstream" nodes are covered).
    #[test]
    fn one_way_ring_coverage_is_downstream_only() {
        let mut b = DirectedRoadNetworkBuilder::new();
        let nodes: Vec<NodeId> = (0..6)
            .map(|i| {
                if i == 0 {
                    b.add_node(i as f32, 0.0, &["cafe"])
                } else {
                    b.add_node(i as f32, 0.0, &[])
                }
            })
            .collect();
        for i in 0..6 {
            b.add_arc(nodes[i], nodes[(i + 1) % 6], 1).unwrap();
        }
        let net = b.build().unwrap();
        let cafe = net.vocab().get("cafe").unwrap();
        // r = 2 covers nodes 0, 1, 2 only (downstream of the arc direction).
        let cov = directed_centralized_coverage(&net, cafe, 2);
        assert_eq!(cov, vec![nodes[0], nodes[1], nodes[2]]);
        // Distributed over fragments {0,1,2} and {3,4,5}.
        let partition = DirectedPartition::from_assignment(&net, vec![0, 0, 0, 1, 1, 1], 2);
        let indexes: Vec<_> =
            (0..2).map(|f| build_directed_index(&net, &partition, f, INF)).collect();
        let got = directed_sgkq_distributed(&net, &partition, &indexes, &[cafe], 2).unwrap();
        assert_eq!(got, cov);
    }

    /// Antiparallel arcs with different weights: the directed Rule 1
    /// condition-2 must compare arc weight per direction.
    #[test]
    fn asymmetric_antiparallel_arcs_are_handled() {
        let mut b = DirectedRoadNetworkBuilder::new();
        let a = b.add_node(0.0, 0.0, &["poi"]);
        let x = b.add_node(1.0, 0.0, &[]);
        let c = b.add_node(2.0, 0.0, &[]);
        // a→x fast (1), x→a slow (10); x→c 1, c→x 1; a→c direct slow (9),
        // detour a→x→c = 2.
        b.add_arc(a, x, 1).unwrap();
        b.add_arc(x, a, 10).unwrap();
        b.add_road(x, c, 1).unwrap();
        b.add_arc(a, c, 9).unwrap();
        let net = b.build().unwrap();
        let poi = net.vocab().get("poi").unwrap();
        // P = {a, c}; x external. d(a→c) = 2 via x.
        let partition = DirectedPartition::from_assignment(&net, vec![0, 1, 0], 2);
        let idx = build_directed_index(&net, &partition, 0, INF);
        assert!(
            idx.shortcuts().contains(&(a, c, 2)),
            "directed shortcut a→c=2 required despite the slower direct arc: {:?}",
            idx.shortcuts()
        );
        let indexes: Vec<_> =
            (0..2).map(|f| build_directed_index(&net, &partition, f, INF)).collect();
        for r in 0..=4 {
            let got = directed_sgkq_distributed(&net, &partition, &indexes, &[poi], r).unwrap();
            assert_eq!(got, directed_centralized_coverage(&net, poi, r), "r={r}");
        }
    }

    /// Randomized cross-check: random directed graphs, random assignments,
    /// random radii — distributed == centralized.
    #[test]
    fn randomized_directed_distributed_equals_centralized() {
        let mut rng = StdRng::seed_from_u64(0xD12EC7);
        for trial in 0..60 {
            let n = rng.gen_range(5..30usize);
            let mut b = DirectedRoadNetworkBuilder::new();
            let words = ["p", "q", "s"];
            let nodes: Vec<NodeId> = (0..n)
                .map(|i| {
                    let kws: Vec<&str> = if rng.gen_bool(0.4) {
                        vec![words[rng.gen_range(0..words.len())]]
                    } else {
                        vec![]
                    };
                    b.add_node(i as f32, 0.0, &kws)
                })
                .collect();
            // Cycle spine for reachability variety + random extra arcs.
            for i in 0..n {
                b.add_arc(nodes[i], nodes[(i + 1) % n], rng.gen_range(1..10)).unwrap();
            }
            for _ in 0..rng.gen_range(0..2 * n) {
                let x = rng.gen_range(0..n);
                let y = rng.gen_range(0..n);
                if x != y {
                    b.add_arc(nodes[x], nodes[y], rng.gen_range(1..10)).unwrap();
                }
            }
            let net = b.build().unwrap();
            let k = rng.gen_range(1..4usize);
            let assignment: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k as u32)).collect();
            let partition = DirectedPartition::from_assignment(&net, assignment, k);
            let max_r = if rng.gen_bool(0.5) { INF } else { rng.gen_range(5..60) };
            let indexes: Vec<_> =
                (0..k as u32).map(|f| build_directed_index(&net, &partition, f, max_r)).collect();
            let keywords: Vec<KeywordId> =
                words.iter().filter_map(|w| net.vocab().get(w)).take(rng.gen_range(1..3)).collect();
            if keywords.is_empty() {
                continue; // no node drew a keyword this trial
            }
            let r = rng.gen_range(0..40).min(max_r);
            let got = directed_sgkq_distributed(&net, &partition, &indexes, &keywords, r)
                .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            let expect = directed_sgkq_centralized(&net, &keywords, r).unwrap();
            assert_eq!(got, expect, "trial {trial} r={r} maxR={max_r} k={k}");
        }
    }

    #[test]
    fn empty_keywords_rejected() {
        let mut b = DirectedRoadNetworkBuilder::new();
        let a = b.add_node(0.0, 0.0, &["x"]);
        let c = b.add_node(1.0, 0.0, &[]);
        b.add_arc(a, c, 1).unwrap();
        let net = b.build().unwrap();
        let partition = DirectedPartition::from_assignment(&net, vec![0, 0], 1);
        let indexes = vec![build_directed_index(&net, &partition, 0, INF)];
        assert!(matches!(
            directed_sgkq_distributed(&net, &partition, &indexes, &[], 5),
            Err(QueryError::EmptyQuery)
        ));
    }
}
