//! Centralized whole-graph evaluation.
//!
//! Serves two roles:
//!
//! 1. **Ground truth** for every distributed test: keyword coverage by
//!    multi-source Dijkstra over the entire network, straight from
//!    Definition 4.
//! 2. The paper's **"1 fragment" reference** configuration (Figs. 10/11):
//!    the whole query evaluated on a single machine without any index.

use std::collections::HashMap;

use disks_roadnet::dijkstra::Control;
use disks_roadnet::{DijkstraWorkspace, NodeId, RoadNetwork, INF};

use crate::bitset::BitSet;
use crate::dfunc::{DFunction, Term};
use crate::error::QueryError;
use crate::query::{QClassQuery, RangeKeywordQuery, SgkQuery};

/// Centralized coverage evaluator over a full road network.
pub struct CentralizedCoverage<'a> {
    net: &'a RoadNetwork,
    ws: DijkstraWorkspace,
}

impl<'a> CentralizedCoverage<'a> {
    pub fn new(net: &'a RoadNetwork) -> Self {
        CentralizedCoverage { net, ws: DijkstraWorkspace::new(net.num_nodes()) }
    }

    /// The keyword coverage `R(term, radius)` (Definition 4) as a bitset
    /// over all node ids.
    pub fn coverage(&mut self, term: Term, radius: u64) -> BitSet {
        let sources: Vec<u32> = match term {
            Term::Keyword(k) => self.net.nodes_with_keyword(k).iter().map(|n| n.0).collect(),
            Term::Node(l) => vec![l.0],
        };
        let mut out = BitSet::new(self.net.num_nodes());
        let seeded: Vec<(u32, u64)> = sources.iter().map(|&s| (s, 0)).collect();
        self.ws.run(self.net, &seeded, radius, |n, _| {
            out.insert(n as usize);
            Control::Continue
        });
        out
    }

    /// Evaluate a D-function centrally. Node ids are returned sorted.
    pub fn evaluate(&mut self, f: &DFunction) -> Result<Vec<NodeId>, QueryError> {
        if f.num_terms() == 0 {
            return Err(QueryError::EmptyQuery);
        }
        let coverages: Vec<BitSet> = f.terms().map(|t| self.coverage(t.term, t.radius)).collect();
        let combined = f.combine(&coverages);
        Ok(combined.iter().map(|i| NodeId(i as u32)).collect())
    }

    /// SGKQ (Definition 2) evaluated centrally.
    pub fn sgkq(&mut self, q: &SgkQuery) -> Result<Vec<NodeId>, QueryError> {
        self.evaluate(&q.to_dfunction())
    }

    /// RKQ (Definition 3) evaluated centrally.
    pub fn rkq(&mut self, q: &RangeKeywordQuery) -> Result<Vec<NodeId>, QueryError> {
        self.evaluate(&q.to_dfunction())
    }

    /// Q-class query evaluated centrally.
    pub fn qclass(&mut self, q: &QClassQuery) -> Result<Vec<NodeId>, QueryError> {
        self.evaluate(&q.to_dfunction())
    }

    /// Per-node distance table `d(·, term)` — an O(n log n) oracle used by
    /// tests to validate coverage against Definition 4 literally.
    pub fn distance_table(&mut self, term: Term) -> HashMap<NodeId, u64> {
        let sources: Vec<(u32, u64)> = match term {
            Term::Keyword(k) => self.net.nodes_with_keyword(k).iter().map(|n| (n.0, 0)).collect(),
            Term::Node(l) => vec![(l.0, 0)],
        };
        let mut out = HashMap::new();
        self.ws.run(self.net, &sources, INF - 1, |n, d| {
            out.insert(NodeId(n), d);
            Control::Continue
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_roadnet::graph::figure1_network;

    #[test]
    fn example1_sgkq_from_paper() {
        // SGKQ({museum, school}, 3) on Fig. 1 returns {B, E}.
        let (net, names) = figure1_network();
        let museum = net.vocab().get("museum").unwrap();
        let school = net.vocab().get("school").unwrap();
        let mut eval = CentralizedCoverage::new(&net);
        let mut res = eval.sgkq(&SgkQuery::new(vec![museum, school], 3)).unwrap();
        res.sort_unstable();
        let mut expect = vec![names["B"], names["E"]];
        expect.sort_unstable();
        assert_eq!(res, expect);
    }

    #[test]
    fn example3_keyword_coverage_from_paper() {
        // R(school, 3) = {A, B, E}.
        let (net, names) = figure1_network();
        let school = net.vocab().get("school").unwrap();
        let mut eval = CentralizedCoverage::new(&net);
        let cov = eval.coverage(Term::Keyword(school), 3);
        let got: Vec<u32> = cov.iter().map(|i| i as u32).collect();
        let mut expect = vec![names["A"].0, names["B"].0, names["E"].0];
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn example2_rkq_from_paper() {
        // RKQ(B, {museum}, 4) returns {D}.
        let (net, names) = figure1_network();
        let museum = net.vocab().get("museum").unwrap();
        let mut eval = CentralizedCoverage::new(&net);
        let res = eval.rkq(&RangeKeywordQuery::new(names["B"], vec![museum], 4)).unwrap();
        assert_eq!(res, vec![names["D"]]);
    }

    #[test]
    fn coverage_matches_distance_table_definition() {
        let (net, _) = figure1_network();
        let school = net.vocab().get("school").unwrap();
        let mut eval = CentralizedCoverage::new(&net);
        let table = eval.distance_table(Term::Keyword(school));
        for r in 0..6 {
            let cov = eval.coverage(Term::Keyword(school), r);
            for n in net.node_ids() {
                let in_cov = cov.contains(n.index());
                let within = table.get(&n).is_some_and(|&d| d <= r);
                assert_eq!(in_cov, within, "node {n} radius {r}");
            }
        }
    }

    #[test]
    fn empty_query_rejected() {
        let (net, _) = figure1_network();
        let eval = CentralizedCoverage::new(&net);
        // DFunction cannot be constructed empty through the public API, so
        // exercise the SGKQ path with zero keywords via direct construction.
        let q = SgkQuery { keywords: vec![], radius: 1 };
        assert!(q.to_dfunction_checked().is_none());
        drop(eval); // evaluator unused further; DFunction is total otherwise
    }

    #[test]
    fn unknown_keyword_coverage_is_empty() {
        let (net, _) = figure1_network();
        let mut eval = CentralizedCoverage::new(&net);
        // A keyword id beyond the vocabulary has no nodes.
        let cov = eval.coverage(Term::Keyword(disks_roadnet::KeywordId(999)), 10);
        assert!(cov.is_empty());
    }
}
