//! Naive (non-minimal) index construction — the ablation baseline.
//!
//! §3.3/§3.4 of the paper motivate Rules 1 and 2 against the obvious
//! strawman: make `P` complete by adding a shortcut for **every** portal
//! pair, and record **every** `(external node, portal)` distance. Both are
//! valid (they form a *standard shortcut set* / *standard fragment index*,
//! Definitions 6–7), but Theorems 2 and 4 prove the rule-based components
//! are the unique minima. This module builds the naive variant so the
//! benchmark harness can measure exactly how much the minimality theorems
//! save — in index bytes and in query-time α/β (Theorem 5).

use std::collections::HashMap;

use disks_partition::{FragmentId, Partitioning};
use disks_roadnet::dijkstra::Control;
use disks_roadnet::{DijkstraWorkspace, KeywordId, NodeId, RoadNetwork};

use super::{DlScope, IndexConfig, NpdIndex};

/// Build the naive index: all portal-pair shortcuts (minus original edges)
/// and all `(external, portal)` DL pairs within `maxR`.
///
/// The result is interchangeable with the rule-based [`NpdIndex`] — it is a
/// standard fragment index, so every query evaluates to the same answer —
/// just larger.
pub fn build_naive_index(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    fragment: FragmentId,
    config: &IndexConfig,
) -> NpdIndex {
    let start = std::time::Instant::now();
    let max_r = config.max_r;
    let portals = partitioning.portals(fragment);
    let portal_set: std::collections::HashSet<u32> = portals.iter().map(|p| p.0).collect();
    let assignment = partitioning.assignment();
    let p = fragment.0;

    let mut ws = DijkstraWorkspace::new(net.num_nodes());
    let mut sc_map: HashMap<(u32, u32), u64> = HashMap::new();
    let mut dl_entries: HashMap<NodeId, Vec<(NodeId, u64)>> = HashMap::new();
    let mut settled_total = 0u64;

    for &portal in portals {
        let stats = ws.run(net, &[(portal.0, 0)], max_r, |u, d| {
            if u == portal.0 {
                return Control::Continue;
            }
            if assignment[u as usize] == p {
                if portal_set.contains(&u)
                    && net.edge_weight(NodeId(u), portal).map(u64::from) != Some(d)
                {
                    let key = if u < portal.0 { (u, portal.0) } else { (portal.0, u) };
                    sc_map.insert(key, d);
                }
            } else {
                let indexed = match config.dl_scope {
                    DlScope::ObjectsOnly => net.is_object(NodeId(u)),
                    DlScope::AllNodes => true,
                };
                if indexed {
                    dl_entries.entry(NodeId(u)).or_default().push((portal, d));
                }
            }
            Control::Continue
        });
        settled_total += stats.settled as u64;
    }

    let mut sc: Vec<(NodeId, NodeId, u64)> =
        sc_map.into_iter().map(|((a, b), d)| (NodeId(a), NodeId(b), d)).collect();
    sc.sort_unstable();
    for list in dl_entries.values_mut() {
        list.sort_unstable_by_key(|&(portal, d)| (d, portal.0));
    }
    let mut kw_min: HashMap<(KeywordId, u32), u64> = HashMap::new();
    for (&node, list) in &dl_entries {
        for &kw in net.keywords(node) {
            for &(portal, d) in list {
                kw_min.entry((kw, portal.0)).and_modify(|c| *c = (*c).min(d)).or_insert(d);
            }
        }
    }
    let mut keyword_portals: HashMap<KeywordId, Vec<(NodeId, u64)>> = HashMap::new();
    for ((kw, portal), d) in kw_min {
        keyword_portals.entry(kw).or_default().push((NodeId(portal), d));
    }
    for list in keyword_portals.values_mut() {
        list.sort_unstable_by_key(|&(portal, d)| (d, portal.0));
    }

    NpdIndex {
        fragment,
        max_r,
        dl_scope: config.dl_scope,
        sc,
        dl_entries,
        keyword_portals,
        build_time: start.elapsed(),
        build_settled: settled_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CentralizedCoverage;
    use crate::dfunc::{DFunction, Term};
    use crate::engine::FragmentEngine;
    use crate::index::build_index;
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::INF;

    #[test]
    fn naive_index_is_a_superset_of_the_minimal_one() {
        let net = GridNetworkConfig::tiny(120).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let cfg = IndexConfig::unbounded();
        for f in p.fragment_ids() {
            let minimal = build_index(&net, &p, f, &cfg);
            let naive = build_naive_index(&net, &p, f, &cfg);
            // Theorem 2/4: the rule-based components are subsets.
            let naive_sc: std::collections::HashSet<_> = naive.shortcuts().iter().collect();
            for edge in minimal.shortcuts() {
                assert!(naive_sc.contains(edge), "missing shortcut {edge:?}");
            }
            for (node, list) in minimal.dl_entries() {
                let naive_list = naive.dl_entry(node).expect("entry must exist");
                for pair in list {
                    assert!(naive_list.contains(pair), "missing DL pair {pair:?} for {node}");
                }
            }
            assert!(naive.distances_recorded() >= minimal.distances_recorded());
        }
    }

    #[test]
    fn naive_index_answers_queries_identically() {
        let net = GridNetworkConfig::tiny(121).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let cfg = IndexConfig::unbounded();
        let freqs = net.keyword_frequencies();
        let top = KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32);
        let f = DFunction::single(Term::Keyword(top), 8 * net.avg_edge_weight());
        let mut got = Vec::new();
        for frag in p.fragment_ids() {
            let idx = build_naive_index(&net, &p, frag, &cfg);
            let mut engine = FragmentEngine::new(&net, &p, &idx).unwrap();
            got.extend(engine.evaluate(&f).unwrap().0);
        }
        got.sort_unstable();
        let mut central = CentralizedCoverage::new(&net);
        assert_eq!(got, central.evaluate(&f).unwrap());
    }

    #[test]
    fn minimality_gap_is_real_on_nontrivial_partitions() {
        // On a grid with multilevel fragments there are portal pairs whose
        // shortest paths run through the fragment interior — the naive SC
        // records them, Rule 1 does not.
        let net = GridNetworkConfig::small(122).generate();
        let p = MultilevelPartitioner::default().partition(&net, 4);
        let cfg = IndexConfig::with_max_r(20 * net.avg_edge_weight());
        let mut naive_total = 0usize;
        let mut minimal_total = 0usize;
        for f in p.fragment_ids() {
            naive_total += build_naive_index(&net, &p, f, &cfg).distances_recorded();
            minimal_total += build_index(&net, &p, f, &cfg).distances_recorded();
        }
        assert!(
            naive_total > minimal_total,
            "expected a strict gap: naive {naive_total} vs minimal {minimal_total}"
        );
        let _ = INF;
    }
}
