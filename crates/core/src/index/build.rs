//! NPD-index construction — Algorithm 1's backward portal-source search.
//!
//! For each portal `n` of fragment `P`, a Dijkstra search runs over the
//! whole graph bounded by `maxR`. Along the shortest-path tree we propagate
//! a per-node flag `reentered`: *does some shortest path from `n` to this
//! node contain an internal node of `P`?* Merging the flag on equal-distance
//! relaxations implements the multiple-shortest-paths Rules 3/4 soundly
//! (with "any shortest path" semantics). On settling node `u` with the flag
//! clear:
//!
//! * `u ∈ P`, `u ≠ n`, `(u, n) ∉ E`  → record the SC shortcut `(u, n, d)`
//!   (Rule 1/3; `u` is necessarily a portal — a path that leaves and
//!   re-enters `P` without internal `P` nodes must re-enter over a cut
//!   edge).
//! * `u ∉ P` and `u` is DL-indexed  → record `(n, d)` in the DL entry
//!   `(u, P)` (Rule 2/4).
//!
//! Note on the paper's pseudocode: Algorithm 1 line 8/9 keys the DL entry as
//! `(n_i, part[p])`, which contradicts the prose of §3.4, Rule 2 and the
//! Fig. 4 caption ("d(A,C) is recorded in DL mapped by entry (A, P)"). We
//! follow the prose, which is the internally consistent reading and the one
//! the query algorithm (Alg. 2 Step 2) actually consumes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

use disks_partition::{FragmentId, Partitioning};
use disks_roadnet::{Graph, KeywordId, NodeId, RoadNetwork, INF};

use super::{DlScope, IndexConfig, NpdIndex};

/// Reusable arrays for the construction searches (sized to the full graph).
struct BuildWorkspace {
    dist: Vec<u64>,
    /// Some shortest path from the source passes through an internal node
    /// of the fragment being indexed.
    reentered: Vec<bool>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl BuildWorkspace {
    fn new(n: usize) -> Self {
        BuildWorkspace {
            dist: vec![INF; n],
            reentered: vec![false; n],
            stamp: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    fn begin(&mut self) {
        self.heap.clear();
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    #[inline]
    fn dist_of(&self, u: u32) -> u64 {
        if self.stamp[u as usize] == self.epoch {
            self.dist[u as usize]
        } else {
            INF
        }
    }
}

/// Everything one portal's backward search contributes to the index:
/// shortcut candidates (normalized endpoint keys), DL pairs `(external
/// node, distance)` for this portal, and the settled-node count. Pure per
/// portal, so searches can run sequentially or on scoped threads and merge
/// to the identical index.
struct PortalYield {
    portal: NodeId,
    sc: Vec<((u32, u32), u64)>,
    dl: Vec<(NodeId, u64)>,
    settled: u64,
}

/// Algorithm 1's backward search from one portal (see module docs).
fn portal_search(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    fragment: FragmentId,
    config: &IndexConfig,
    portal: NodeId,
    ws: &mut BuildWorkspace,
) -> PortalYield {
    let assignment = partitioning.assignment();
    let p = fragment.0;
    let max_r = config.max_r;
    let mut y = PortalYield { portal, sc: Vec::new(), dl: Vec::new(), settled: 0 };

    let source = portal.0;
    ws.begin();
    ws.dist[source as usize] = 0;
    ws.reentered[source as usize] = false;
    ws.stamp[source as usize] = ws.epoch;
    ws.heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = ws.heap.pop() {
        if d > ws.dist_of(u) {
            continue; // stale
        }
        y.settled += 1;
        let u_reentered = ws.reentered[u as usize];
        if u != source && !u_reentered {
            if assignment[u as usize] == p {
                // Rule 1/3 condition 2 excludes the case where
                // (A, B, d(A,B)) is an *original edge with that weight*.
                // An original parallel edge that is LONGER than the
                // shortest detour does not make the shortcut redundant
                // (the local fragment would only have the suboptimal
                // edge), so compare weights, not mere existence.
                if net.edge_weight(NodeId(u), portal).map(u64::from) != Some(d) {
                    debug_assert!(
                        partitioning.portals(fragment).contains(&NodeId(u)),
                        "SC endpoint must be a portal"
                    );
                    let key = if u < source { (u, source) } else { (source, u) };
                    y.sc.push((key, d));
                }
            } else {
                let indexed = match config.dl_scope {
                    DlScope::ObjectsOnly => net.is_object(NodeId(u)),
                    DlScope::AllNodes => true,
                };
                if indexed {
                    y.dl.push((NodeId(u), d));
                }
            }
        }
        // A path continuing through `u` has `u` as an internal node, so
        // the flag for successors must include "u is an internal P node".
        let flag_through_u = u_reentered || (u != source && assignment[u as usize] == p);
        let epoch = ws.epoch;
        let (dist, stamp, reentered, heap) =
            (&mut ws.dist, &mut ws.stamp, &mut ws.reentered, &mut ws.heap);
        net.for_each_neighbor(u, &mut |v, w| {
            let nd = d.saturating_add(u64::from(w));
            if nd > max_r {
                return;
            }
            let vi = v as usize;
            let cur = if stamp[vi] == epoch { dist[vi] } else { INF };
            if nd < cur {
                dist[vi] = nd;
                stamp[vi] = epoch;
                reentered[vi] = flag_through_u;
                heap.push(Reverse((nd, v)));
            } else if nd == cur && cur != INF {
                // Rule 3/4: "ANY shortest path" — merge the flag.
                reentered[vi] |= flag_through_u;
            }
        });
    }
    y
}

/// Merge per-portal yields (in portal order) into the finished index. Every
/// downstream structure is either keyed (SC dedup), sorted by a total order
/// (DL entry lists, keyword-portal lists), or a commutative min/sum — so
/// the assembled index is identical however the searches were scheduled.
fn assemble_index(
    net: &RoadNetwork,
    fragment: FragmentId,
    config: &IndexConfig,
    yields: Vec<PortalYield>,
    start: Instant,
) -> NpdIndex {
    let mut settled_total: u64 = 0;
    // SC shortcuts are discovered from both endpoints; normalize and dedup.
    let mut sc_map: HashMap<(u32, u32), u64> = HashMap::new();
    let mut dl_entries: HashMap<NodeId, Vec<(NodeId, u64)>> = HashMap::new();
    for y in yields {
        settled_total += y.settled;
        for (key, d) in y.sc {
            let prev = sc_map.insert(key, d);
            debug_assert!(
                prev.is_none() || prev == Some(d),
                "shortcut rediscovered with a different distance"
            );
        }
        for (node, d) in y.dl {
            dl_entries.entry(node).or_default().push((y.portal, d));
        }
    }

    let mut sc: Vec<(NodeId, NodeId, u64)> =
        sc_map.into_iter().map(|((a, b), d)| (NodeId(a), NodeId(b), d)).collect();
    sc.sort_unstable();

    // Rule 2 condition 3: sort each entry list by distance (ties by portal).
    for list in dl_entries.values_mut() {
        list.sort_unstable_by_key(|&(portal, d)| (d, portal.0));
    }

    // §3.7 keyword aggregation: per (keyword, portal) minimum over entries.
    let mut kw_min: HashMap<(KeywordId, u32), u64> = HashMap::new();
    for (&node, list) in &dl_entries {
        for &kw in net.keywords(node) {
            for &(portal, d) in list {
                kw_min.entry((kw, portal.0)).and_modify(|cur| *cur = (*cur).min(d)).or_insert(d);
            }
        }
    }
    let mut keyword_portals: HashMap<KeywordId, Vec<(NodeId, u64)>> = HashMap::new();
    for ((kw, portal), d) in kw_min {
        keyword_portals.entry(kw).or_default().push((NodeId(portal), d));
    }
    for list in keyword_portals.values_mut() {
        list.sort_unstable_by_key(|&(portal, d)| (d, portal.0));
    }

    NpdIndex {
        fragment,
        max_r: config.max_r,
        dl_scope: config.dl_scope,
        sc,
        dl_entries,
        keyword_portals,
        build_time: start.elapsed(),
        build_settled: settled_total,
    }
}

/// Build the NPD-index for one fragment.
pub fn build_index(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    fragment: FragmentId,
    config: &IndexConfig,
) -> NpdIndex {
    let mut ws = BuildWorkspace::new(net.num_nodes());
    build_index_with_workspace(net, partitioning, fragment, config, &mut ws)
}

fn build_index_with_workspace(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    fragment: FragmentId,
    config: &IndexConfig,
    ws: &mut BuildWorkspace,
) -> NpdIndex {
    let start = Instant::now();
    let yields = partitioning
        .portals(fragment)
        .iter()
        .map(|&portal| portal_search(net, partitioning, fragment, config, portal, ws))
        .collect();
    assemble_index(net, fragment, config, yields, start)
}

/// Build the NPD-index for one fragment with the per-portal backward
/// searches spread over up to `threads` scoped OS threads. The searches
/// are independent (each owns a private [`BuildWorkspace`]) and the merge
/// is deterministic — the result is bit-identical to [`build_index`].
pub fn build_index_with_threads(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    fragment: FragmentId,
    config: &IndexConfig,
    threads: usize,
) -> NpdIndex {
    let portals = partitioning.portals(fragment);
    let threads = threads.min(portals.len()).max(1);
    if threads == 1 {
        return build_index(net, partitioning, fragment, config);
    }
    let start = Instant::now();
    // Work-stealing over portal positions: portals' search frontiers vary
    // wildly in size (maxR-bounded), so static striping would unbalance.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, PortalYield)>();
    let mut slots: Vec<Option<PortalYield>> = Vec::with_capacity(portals.len());
    slots.resize_with(portals.len(), || None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || {
                let mut ws = BuildWorkspace::new(net.num_nodes());
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= portals.len() {
                        break;
                    }
                    let y = portal_search(net, partitioning, fragment, config, portals[i], &mut ws);
                    tx.send((i, y)).expect("collector alive");
                }
            });
        }
        drop(tx);
        for (i, y) in rx {
            slots[i] = Some(y);
        }
    });
    // Reassemble in portal order (not completion order).
    let yields = slots.into_iter().map(|o| o.expect("every portal searched")).collect();
    assemble_index(net, fragment, config, yields, start)
}

/// Build the index for every fragment, in parallel across OS threads (the
/// paper's "naturally parallel, fragment-wise" construction — one machine
/// per fragment). Returns indexes ordered by fragment id.
pub fn build_all_indexes(
    net: &RoadNetwork,
    partitioning: &Partitioning,
    config: &IndexConfig,
) -> Vec<NpdIndex> {
    let k = partitioning.num_fragments();
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let across = cores.min(k.max(1));
    // Cores left over after fragment-level parallelism go to portal-level
    // parallelism *within* each build (few big fragments, many cores).
    let within = (cores / across).max(1);
    let mut out: Vec<Option<NpdIndex>> = Vec::with_capacity(k);
    out.resize_with(k, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Workers pull fragment ids from a shared counter and send finished
    // indexes over a channel; the scope owner reassembles them in order.
    let (tx, rx) = std::sync::mpsc::channel::<NpdIndex>();
    std::thread::scope(|scope| {
        for _ in 0..across {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || {
                let mut ws = BuildWorkspace::new(net.num_nodes());
                loop {
                    let f = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if f >= k {
                        break;
                    }
                    let fragment = FragmentId(f as u32);
                    let idx = if within > 1 {
                        build_index_with_threads(net, partitioning, fragment, config, within)
                    } else {
                        build_index_with_workspace(net, partitioning, fragment, config, &mut ws)
                    };
                    tx.send(idx).expect("collector alive");
                }
            });
        }
        drop(tx);
        for idx in rx {
            let f = idx.fragment.index();
            out[f] = Some(idx);
        }
    });
    out.into_iter().map(|o| o.expect("every fragment built")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::graph::figure1_network;
    use disks_roadnet::DijkstraWorkspace;

    /// Theorem 3 oracle: for each fragment P, each DL-indexed external node
    /// A, and each node B ∈ P, the extended-fragment distance (computed via
    /// SC + DL by the engine machinery in `engine.rs`) must equal the global
    /// distance. Here we verify the *components* directly:
    /// every recorded SC / DL distance is a true shortest distance.
    #[test]
    fn recorded_distances_are_true_shortest_distances() {
        let net = GridNetworkConfig::tiny(1).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let cfg = IndexConfig::unbounded();
        let mut ws = DijkstraWorkspace::new(net.num_nodes());
        for f in p.fragment_ids() {
            let idx = build_index(&net, &p, f, &cfg);
            for &(a, b, d) in idx.shortcuts() {
                assert_eq!(ws.distance(&net, a.0, b.0), d, "SC distance wrong for ({a},{b})");
                assert_ne!(
                    net.edge_weight(a, b).map(u64::from),
                    Some(d),
                    "SC must not duplicate an original edge of equal weight"
                );
                assert_eq!(p.fragment_of(a), f);
                assert_eq!(p.fragment_of(b), f);
            }
            for (node, list) in idx.dl_entries() {
                assert_ne!(p.fragment_of(node), f, "DL entries must be external");
                for &(portal, d) in list {
                    assert_eq!(p.fragment_of(portal), f, "DL pairs must target portals of P");
                    assert_eq!(
                        ws.distance(&net, node.0, portal.0),
                        d,
                        "DL distance wrong for ({node},{portal})"
                    );
                }
                // Rule 2 condition 3: sorted by distance.
                assert!(list.windows(2).all(|w| w[0].1 <= w[1].1));
            }
        }
    }

    /// Rule 1 condition 3 oracle: a recorded shortcut's shortest path must
    /// not contain another node of P; conversely, a non-adjacent portal pair
    /// whose *every* shortest path avoids P internally must be recorded.
    #[test]
    fn rule1_shortcut_membership_matches_path_structure() {
        let net = GridNetworkConfig::tiny(2).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let cfg = IndexConfig::unbounded();
        for f in p.fragment_ids() {
            let idx = build_index(&net, &p, f, &cfg);
            let sc_set: std::collections::HashSet<(u32, u32)> =
                idx.shortcuts().iter().map(|&(a, b, _)| (a.0, b.0)).collect();
            let portals = p.portals(f);
            for (i, &a) in portals.iter().enumerate() {
                for &b in &portals[i + 1..] {
                    if net.has_edge(a, b) {
                        continue;
                    }
                    // Check via a P-internal-avoiding Dijkstra whether the
                    // true shortest distance is achievable without internal
                    // P nodes.
                    let (d_true, d_avoiding) = distances_with_and_without_p(&net, &p, f, a, b);
                    let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
                    if d_avoiding == d_true && d_true != INF {
                        assert!(
                            sc_set.contains(&key),
                            "missing shortcut for portal pair ({a},{b}) d={d_true}"
                        );
                    }
                    if sc_set.contains(&key) {
                        assert_eq!(
                            d_avoiding, d_true,
                            "shortcut ({a},{b}) recorded although every shortest path \
                             crosses P internally"
                        );
                    }
                }
            }
        }
    }

    /// d(a,b) globally, and d(a,b) over paths whose internal nodes avoid
    /// fragment `f` (endpoints excluded).
    fn distances_with_and_without_p(
        net: &RoadNetwork,
        p: &Partitioning,
        f: FragmentId,
        a: NodeId,
        b: NodeId,
    ) -> (u64, u64) {
        let mut ws = DijkstraWorkspace::new(net.num_nodes());
        let d_true = ws.distance(net, a.0, b.0);
        // Avoiding search: plain Dijkstra where internal P nodes (≠ a, b)
        // are never expanded.
        use disks_roadnet::dijkstra::Control;
        let mut d_avoid = INF;
        ws.run(net, &[(a.0, 0)], INF - 1, |n, d| {
            if n == b.0 {
                d_avoid = d;
                return Control::Stop;
            }
            if n != a.0 && p.fragment_of(NodeId(n)) == f {
                return Control::SkipNeighbors;
            }
            Control::Continue
        });
        (d_true, d_avoid)
    }

    #[test]
    fn figure1_example_fragments() {
        // Fragments from paper Example 4: U1 = {A, B}, U2 = {C, D, E}.
        let (net, names) = figure1_network();
        let mut assignment = vec![0u32; 5];
        for n in ["C", "D", "E"] {
            assignment[names[n].index()] = 1;
        }
        let p = Partitioning::from_assignment(&net, assignment, 2);
        let cfg = IndexConfig::unbounded().with_scope(DlScope::AllNodes);
        let idx0 = build_index(&net, &p, FragmentId(0), &cfg);
        let idx1 = build_index(&net, &p, FragmentId(1), &cfg);
        // Fragment 0 = {A, B} with edge (A,B) present: a shortcut (A,B)
        // would duplicate an original edge, so SC(P0) is empty.
        assert!(idx0.shortcuts().is_empty());
        // External nodes C, D, E get DL entries in P0.
        for n in ["C", "D", "E"] {
            assert!(idx0.dl_entry(names[n]).is_some(), "missing DL entry for {n}");
        }
        // DL(P0) entry for D (portals of P0 = {A, B}):
        // d(D,B) = 2 via the direct edge — intersects P0 only at B → (B, 2).
        // d(D,A) = 4 via both D→E→A (valid) and D→B→A (contains B ∈ P0
        // internally) — Rule 4 requires *every* shortest path to meet P0
        // only at A, so (A, 4) is NOT recorded.
        let d_entry = idx0.dl_entry(names["D"]).unwrap();
        assert_eq!(d_entry, &[(names["B"], 2)]);
        // Entry for E: d(E,A) = 1 direct → (A,1); d(E,B) = 3 only via A ∈ P0
        // internally → not recorded.
        assert_eq!(idx0.dl_entry(names["E"]).unwrap(), &[(names["A"], 1)]);
        // SC(P1): portals of P1 = {C, D, E}. C↔D: shortest C→B→D = 4 with
        // only B ∉ P1 internal → shortcut (C,D,4). C↔E: shortest C→B→A→E = 5
        // with only B,A ∉ P1 internal → shortcut (C,E,5). D↔E: the direct
        // edge (weight 3) is shortest → excluded by Rule 1 condition 2.
        let sc1: Vec<(u32, u32, u64)> =
            idx1.shortcuts().iter().map(|&(a, b, d)| (a.0, b.0, d)).collect();
        let key = |x: NodeId, y: NodeId| (x.0.min(y.0), x.0.max(y.0));
        let (cd0, cd1) = key(names["C"], names["D"]);
        let (ce0, ce1) = key(names["C"], names["E"]);
        let (de0, de1) = key(names["D"], names["E"]);
        assert!(sc1.contains(&(cd0, cd1, 4)), "SC(P1) must contain (C,D,4): {sc1:?}");
        assert!(sc1.contains(&(ce0, ce1, 5)), "SC(P1) must contain (C,E,5): {sc1:?}");
        assert!(
            !sc1.iter().any(|&(a, b, _)| (a, b) == (de0, de1)),
            "(D,E) is an original edge, Rule 1 condition 2 excludes it: {sc1:?}"
        );
        assert_eq!(sc1.len(), 2);
    }

    /// Regression: Rule 1 condition 2 is about the *weighted triple*
    /// `(A, B, d(A,B))`. An original edge (A, B) that is LONGER than the
    /// shortest external detour must not suppress the shortcut — otherwise
    /// the complete fragment only sees the suboptimal direct edge and
    /// coverage underestimates. (Found via the small-world extension; grids
    /// are near-metric, so their direct edges are always shortest.)
    #[test]
    fn longer_parallel_edge_does_not_suppress_shortcut() {
        use crate::coverage::CentralizedCoverage;
        use crate::dfunc::{DFunction, Term};
        use crate::engine::FragmentEngine;
        use disks_roadnet::RoadNetworkBuilder;
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(0.0, 0.0, &["poi"]);
        let bb = b.add_node(2.0, 0.0, &[]);
        let c = b.add_node(1.0, 1.0, &[]);
        b.add_edge(a, bb, 10).unwrap(); // direct but long
        b.add_edge(a, c, 2).unwrap();
        b.add_edge(c, bb, 3).unwrap(); // detour of length 5
        let net = b.build().unwrap();
        // P = {A, B}; C is external.
        let mut assignment = vec![0u32; 3];
        assignment[c.index()] = 1;
        let p = Partitioning::from_assignment(&net, assignment, 2);
        let idx = build_index(&net, &p, FragmentId(0), &IndexConfig::unbounded());
        assert_eq!(
            idx.shortcuts(),
            &[(a, bb, 5)],
            "the shortcut must be recorded alongside the longer original edge"
        );
        // End to end: coverage R(poi, 5) must include B.
        let poi = net.vocab().get("poi").unwrap();
        let f = DFunction::single(Term::Keyword(poi), 5);
        let mut engine = FragmentEngine::new(&net, &p, &idx).unwrap();
        let (local, _) = engine.evaluate(&f).unwrap();
        assert!(local.contains(&bb), "B is within 5 of the poi via the detour");
        let mut central = CentralizedCoverage::new(&net);
        let idx1 = build_index(&net, &p, FragmentId(1), &IndexConfig::unbounded());
        let mut engine1 = FragmentEngine::new(&net, &p, &idx1).unwrap();
        let mut got = local;
        got.extend(engine1.evaluate(&f).unwrap().0);
        got.sort_unstable();
        assert_eq!(got, central.evaluate(&f).unwrap());
    }

    /// Rule 3 tie handling: when one of two equally short paths between two
    /// portals passes through an internal node of P, the shortcut must NOT
    /// be recorded. A construction that tracks only one shortest-path tree
    /// (ignoring equal-distance merges) would record it.
    #[test]
    fn rule3_tie_suppresses_shortcut() {
        use disks_roadnet::RoadNetworkBuilder;
        let mut b = RoadNetworkBuilder::new();
        let x = b.add_node(0.0, 0.0, &["x"]);
        let y = b.add_node(2.0, 0.0, &["y"]);
        let z = b.add_node(1.0, 0.0, &["z"]); // internal to P
        let w = b.add_node(1.0, 1.0, &["w"]); // outside P
        b.add_edge(x, z, 1).unwrap();
        b.add_edge(z, y, 1).unwrap();
        b.add_edge(x, w, 1).unwrap();
        b.add_edge(w, y, 1).unwrap();
        let net = b.build().unwrap();
        // P = {x, y, z}; w is its own fragment.
        let mut assignment = vec![0u32; 4];
        assignment[w.index()] = 1;
        let p = Partitioning::from_assignment(&net, assignment, 2);
        let idx = build_index(&net, &p, FragmentId(0), &IndexConfig::unbounded());
        // d(x,y) = 2 via z (internal to P) AND via w (outside). Rule 3:
        // "ANY shortest path must not contain another node of P" fails for
        // the z path → no shortcut.
        assert!(
            idx.shortcuts().is_empty(),
            "tie through internal node must suppress the shortcut: {:?}",
            idx.shortcuts()
        );
    }

    #[test]
    fn max_r_prunes_distances() {
        let net = GridNetworkConfig::tiny(3).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let max_r = 3 * net.avg_edge_weight();
        let bounded = build_index(&net, &p, FragmentId(0), &IndexConfig::with_max_r(max_r));
        let unbounded = build_index(&net, &p, FragmentId(0), &IndexConfig::unbounded());
        assert!(bounded.distances_recorded() <= unbounded.distances_recorded());
        for &(_, _, d) in bounded.shortcuts() {
            assert!(d <= max_r);
        }
        for (_, list) in bounded.dl_entries() {
            assert!(list.iter().all(|&(_, d)| d <= max_r));
        }
    }

    #[test]
    fn objects_only_scope_prunes_junction_entries() {
        let net = GridNetworkConfig::tiny(4).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let objects = build_index(&net, &p, FragmentId(0), &IndexConfig::unbounded());
        let all = build_index(
            &net,
            &p,
            FragmentId(0),
            &IndexConfig::unbounded().with_scope(DlScope::AllNodes),
        );
        assert!(objects.dl_entries.len() <= all.dl_entries.len());
        for (node, _) in objects.dl_entries() {
            assert!(net.is_object(node), "ObjectsOnly scope leaked junction {node}");
        }
        // AllNodes is a superset on entries.
        for (node, list) in objects.dl_entries() {
            assert_eq!(all.dl_entry(node), Some(list), "entry for {node} must agree");
        }
    }

    #[test]
    fn keyword_aggregation_is_min_over_entries() {
        let net = GridNetworkConfig::tiny(5).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let idx = build_index(&net, &p, FragmentId(1), &IndexConfig::unbounded());
        // Recompute the aggregation naively and compare.
        let mut expect: HashMap<(KeywordId, u32), u64> = HashMap::new();
        for (node, list) in idx.dl_entries() {
            for &kw in net.keywords(node) {
                for &(portal, d) in list {
                    expect.entry((kw, portal.0)).and_modify(|c| *c = (*c).min(d)).or_insert(d);
                }
            }
        }
        let total: usize = idx.keyword_portals.values().map(Vec::len).sum();
        assert_eq!(total, expect.len());
        for ((kw, portal), d) in expect {
            let list = idx.keyword_portal_list(kw);
            assert!(
                list.contains(&(NodeId(portal), d)),
                "aggregated pair missing for {kw} portal {portal}"
            );
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let net = GridNetworkConfig::tiny(6).generate();
        let p = MultilevelPartitioner::default().partition(&net, 4);
        let cfg = IndexConfig::unbounded();
        let all = build_all_indexes(&net, &p, &cfg);
        assert_eq!(all.len(), 4);
        for (i, idx) in all.iter().enumerate() {
            assert_eq!(idx.fragment().index(), i);
            let solo = build_index(&net, &p, FragmentId(i as u32), &cfg);
            assert_eq!(idx.shortcuts(), solo.shortcuts());
            assert_eq!(idx.dl_pairs(), solo.dl_pairs());
        }
    }

    /// Portal-level parallelism is an implementation detail: for any thread
    /// count the assembled index is identical to the sequential build —
    /// same SC set, same DL entries (order included), same keyword
    /// aggregation, same settled count.
    #[test]
    fn portal_parallel_build_is_deterministic() {
        let net = GridNetworkConfig::tiny(8).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        for cfg in [IndexConfig::unbounded(), IndexConfig::with_max_r(4 * net.avg_edge_weight())] {
            for f in p.fragment_ids() {
                let seq = build_index(&net, &p, f, &cfg);
                for threads in [2, 3, 8] {
                    let par = build_index_with_threads(&net, &p, f, &cfg, threads);
                    assert_eq!(par.shortcuts(), seq.shortcuts(), "threads={threads}");
                    assert_eq!(par.dl_pairs(), seq.dl_pairs(), "threads={threads}");
                    let mut seq_dl: Vec<_> = seq.dl_entries().collect();
                    let mut par_dl: Vec<_> = par.dl_entries().collect();
                    seq_dl.sort_unstable_by_key(|&(n, _)| n);
                    par_dl.sort_unstable_by_key(|&(n, _)| n);
                    assert_eq!(par_dl, seq_dl, "threads={threads}");
                    assert_eq!(par.keyword_portals, seq.keyword_portals, "threads={threads}");
                    assert_eq!(par.build_settled, seq.build_settled, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn single_fragment_index_is_empty() {
        let net = GridNetworkConfig::tiny(7).generate();
        let p = Partitioning::single_fragment(&net);
        let idx = build_index(&net, &p, FragmentId(0), &IndexConfig::unbounded());
        assert_eq!(idx.distances_recorded(), 0, "no portals ⇒ empty index");
    }
}
