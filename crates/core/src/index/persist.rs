//! Binary persistence for NPD-indexes.
//!
//! In the paper's deployment each machine stores "an SC file and a DL file"
//! per fragment; storage cost (EXP 1 / Figs. 7–8) is measured on these
//! files. We persist both components (plus the §3.7 keyword aggregation) in
//! one binary blob per fragment and report its size as the storage cost.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use disks_partition::FragmentId;
use disks_roadnet::codec::{decode_header, decode_len, encode_header, encode_len, Decode, Encode};
use disks_roadnet::{DecodeError, KeywordId, NodeId};

use super::{DlScope, NpdIndex};
use crate::error::IndexError;

/// Magic header for the binary index format ("DSKI" + version 1).
pub const INDEX_MAGIC: u32 = 0x4453_4B11;

impl Encode for DlScope {
    fn encode(&self, buf: &mut impl BufMut) {
        let tag: u8 = match self {
            DlScope::ObjectsOnly => 0,
            DlScope::AllNodes => 1,
        };
        tag.encode(buf);
    }
}
impl Decode for DlScope {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(DlScope::ObjectsOnly),
            1 => Ok(DlScope::AllNodes),
            tag => Err(DecodeError::BadTag { context: "DlScope", tag }),
        }
    }
}

fn encode_pairs(pairs: &[(NodeId, u64)], buf: &mut impl BufMut) {
    encode_len(pairs.len(), buf);
    for &(n, d) in pairs {
        n.encode(buf);
        d.encode(buf);
    }
}

fn decode_pairs(buf: &mut impl Buf) -> Result<Vec<(NodeId, u64)>, DecodeError> {
    let len = decode_len(buf, "dl pairs")?;
    let mut out = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        out.push((NodeId::decode(buf)?, u64::decode(buf)?));
    }
    Ok(out)
}

/// Encode an index to bytes.
pub fn to_binary(index: &NpdIndex) -> Bytes {
    let mut buf = BytesMut::new();
    encode_header(INDEX_MAGIC, &mut buf);
    index.fragment.0.encode(&mut buf);
    index.max_r.encode(&mut buf);
    index.dl_scope.encode(&mut buf);
    encode_len(index.sc.len(), &mut buf);
    for &(a, b, d) in &index.sc {
        a.encode(&mut buf);
        b.encode(&mut buf);
        d.encode(&mut buf);
    }
    // Deterministic order for reproducible files.
    let mut entries: Vec<(&NodeId, &Vec<(NodeId, u64)>)> = index.dl_entries.iter().collect();
    entries.sort_unstable_by_key(|(n, _)| n.0);
    encode_len(entries.len(), &mut buf);
    for (n, list) in entries {
        n.encode(&mut buf);
        encode_pairs(list, &mut buf);
    }
    let mut kws: Vec<(&KeywordId, &Vec<(NodeId, u64)>)> = index.keyword_portals.iter().collect();
    kws.sort_unstable_by_key(|(k, _)| k.0);
    encode_len(kws.len(), &mut buf);
    for (k, list) in kws {
        k.encode(&mut buf);
        encode_pairs(list, &mut buf);
    }
    buf.freeze()
}

/// Decode an index from bytes.
pub fn from_binary(mut bytes: Bytes) -> Result<NpdIndex, IndexError> {
    decode_header(&mut bytes, INDEX_MAGIC)?;
    let fragment = FragmentId(u32::decode(&mut bytes)?);
    let max_r = u64::decode(&mut bytes)?;
    let dl_scope = DlScope::decode(&mut bytes)?;
    let sc_len = decode_len(&mut bytes, "sc")?;
    let mut sc = Vec::with_capacity(sc_len.min(1 << 20));
    for _ in 0..sc_len {
        sc.push((
            NodeId::decode(&mut bytes)?,
            NodeId::decode(&mut bytes)?,
            u64::decode(&mut bytes)?,
        ));
    }
    let entry_len = decode_len(&mut bytes, "dl entries")?;
    let mut dl_entries = HashMap::with_capacity(entry_len.min(1 << 20));
    for _ in 0..entry_len {
        let n = NodeId::decode(&mut bytes)?;
        dl_entries.insert(n, decode_pairs(&mut bytes)?);
    }
    let kw_len = decode_len(&mut bytes, "keyword portals")?;
    let mut keyword_portals = HashMap::with_capacity(kw_len.min(1 << 20));
    for _ in 0..kw_len {
        let k = KeywordId::decode(&mut bytes)?;
        keyword_portals.insert(k, decode_pairs(&mut bytes)?);
    }
    Ok(NpdIndex {
        fragment,
        max_r,
        dl_scope,
        sc,
        dl_entries,
        keyword_portals,
        build_time: std::time::Duration::ZERO,
        build_settled: 0,
    })
}

/// Size of the persisted form in bytes (the EXP 1 storage-cost measure).
pub fn encoded_size(index: &NpdIndex) -> usize {
    to_binary(index).len()
}

/// Save an index file.
pub fn save_index(index: &NpdIndex, path: impl AsRef<Path>) -> Result<(), IndexError> {
    let bytes = to_binary(index);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&bytes)?;
    Ok(())
}

/// Load an index file, checking it belongs to `expected` fragment.
pub fn load_index(path: impl AsRef<Path>, expected: FragmentId) -> Result<NpdIndex, IndexError> {
    let data = std::fs::read(path)?;
    let index = from_binary(Bytes::from(data))?;
    if index.fragment != expected {
        return Err(IndexError::FragmentMismatch { expected: expected.0, found: index.fragment.0 });
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{build_index, IndexConfig};
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;

    fn sample_index() -> NpdIndex {
        let net = GridNetworkConfig::tiny(8).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        build_index(&net, &p, FragmentId(1), &IndexConfig::unbounded())
    }

    #[test]
    fn binary_round_trip() {
        let idx = sample_index();
        let back = from_binary(to_binary(&idx)).unwrap();
        assert_eq!(back.fragment, idx.fragment);
        assert_eq!(back.max_r, idx.max_r);
        assert_eq!(back.sc, idx.sc);
        assert_eq!(back.dl_entries, idx.dl_entries);
        assert_eq!(back.keyword_portals, idx.keyword_portals);
    }

    #[test]
    fn encoding_is_deterministic() {
        let idx = sample_index();
        assert_eq!(to_binary(&idx), to_binary(&idx));
    }

    #[test]
    fn truncated_input_rejected() {
        let idx = sample_index();
        let raw = to_binary(&idx);
        let cut = raw.slice(0..raw.len() - 3);
        assert!(from_binary(cut).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let idx = sample_index();
        let mut raw = to_binary(&idx).to_vec();
        raw[1] ^= 0x55;
        assert!(from_binary(Bytes::from(raw)).is_err());
    }

    #[test]
    fn file_round_trip_and_fragment_check() {
        let idx = sample_index();
        let dir = std::env::temp_dir().join(format!("disks-idx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frag1.npd");
        save_index(&idx, &path).unwrap();
        let back = load_index(&path, FragmentId(1)).unwrap();
        assert_eq!(back.distances_recorded(), idx.distances_recorded());
        assert!(matches!(
            load_index(&path, FragmentId(0)),
            Err(IndexError::FragmentMismatch { expected: 0, found: 1 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn encoded_size_matches_blob() {
        let idx = sample_index();
        assert_eq!(encoded_size(&idx), to_binary(&idx).len());
        assert!(encoded_size(&idx) > 0);
    }
}
