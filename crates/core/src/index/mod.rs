//! The **NPD-index** (Node-Partition-Distance index, §3).
//!
//! For each fragment `P` the index `IND(P)` holds two components:
//!
//! * **SC(P)** — *shortcut* edges `(A, B, d(A,B))` with both ends in `P`,
//!   added exactly when Rule 1 (or Rule 3 under multiple shortest paths)
//!   holds: `(A,B)` is not an original edge and no shortest path `A↔B`
//!   contains another node of `P`. `P ∪ SC(P)` is then a *complete fragment*
//!   (Theorem 1): every intra-fragment distance (≤ maxR) is computable
//!   locally, and SC(P) is the smallest such set (Theorem 2).
//! * **DL(P)** — *distance lists*: for an external node `A ∉ P`, the entry
//!   `(A, P)` maps to the sorted list of `(Nᵢ, d(A,Nᵢ))` over portals `Nᵢ` of
//!   `P` whose shortest path from `A` meets `P` only at `Nᵢ` (Rule 2/4).
//!   Together with SC this computes `d(A,B)` for every `A ∈ G, B ∈ P`
//!   (Theorem 3) and is the smallest standard fragment index (Theorem 4).
//!
//! Following §3.7 the index additionally materializes the *virtual keyword
//! node* aggregation: for each keyword `ω`, the per-portal minimum of DL
//! distances over external nodes containing `ω`. SGKQ evaluation touches
//! `O(|port(P)|)` pairs per keyword instead of scanning node entries; the
//! paper's reported index size is the node-keyed pair count, which
//! [`IndexStats::distances_recorded`] preserves.

mod build;
mod naive;
mod persist;

pub use build::{build_all_indexes, build_index, build_index_with_threads};
pub use naive::build_naive_index;
pub use persist::{load_index, save_index, INDEX_MAGIC};

use std::collections::HashMap;

use disks_partition::FragmentId;
use disks_roadnet::{KeywordId, NodeId, INF};

/// Which external nodes get DL entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlScope {
    /// Only object (keyword-bearing) nodes — the paper's §3.7 pruning.
    /// RKQ query locations must then be object nodes.
    ObjectsOnly,
    /// Every node: any node id can be a query location, at a larger index.
    AllNodes,
}

/// NPD-index construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Distance cap `maxR = λ·ē` (§3.7); [`disks_roadnet::INF`] = unbounded.
    pub max_r: u64,
    /// DL entry scope.
    pub dl_scope: DlScope,
}

impl IndexConfig {
    /// Bounded index with the given `maxR`, objects-only DL.
    pub fn with_max_r(max_r: u64) -> Self {
        IndexConfig { max_r, dl_scope: DlScope::ObjectsOnly }
    }

    /// Unbounded index (`maxR = ∞`), objects-only DL.
    pub fn unbounded() -> Self {
        IndexConfig { max_r: INF, dl_scope: DlScope::ObjectsOnly }
    }

    pub fn with_scope(mut self, scope: DlScope) -> Self {
        self.dl_scope = scope;
        self
    }
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig::unbounded()
    }
}

/// The NPD-index of one fragment.
#[derive(Debug, Clone)]
pub struct NpdIndex {
    pub(crate) fragment: FragmentId,
    pub(crate) max_r: u64,
    pub(crate) dl_scope: DlScope,
    /// SC(P): shortcut edges `(a, b, d)` with `a < b`, sorted.
    pub(crate) sc: Vec<(NodeId, NodeId, u64)>,
    /// DL(P): external node → list of `(portal, distance)` sorted by
    /// distance (Rule 2 condition 3).
    pub(crate) dl_entries: HashMap<NodeId, Vec<(NodeId, u64)>>,
    /// §3.7 keyword aggregation: keyword → per-portal minimum distances,
    /// sorted by distance.
    pub(crate) keyword_portals: HashMap<KeywordId, Vec<(NodeId, u64)>>,
    /// Wall-clock spent building, for the Table 3 experiment.
    pub(crate) build_time: std::time::Duration,
    /// Total nodes settled during construction searches.
    pub(crate) build_settled: u64,
}

impl NpdIndex {
    /// The fragment this index belongs to.
    pub fn fragment(&self) -> FragmentId {
        self.fragment
    }

    /// The `maxR` bound the index was built with ([`INF`] = unbounded).
    pub fn max_r(&self) -> u64 {
        self.max_r
    }

    /// DL entry scope.
    pub fn dl_scope(&self) -> DlScope {
        self.dl_scope
    }

    /// SC(P) shortcut edges.
    pub fn shortcuts(&self) -> &[(NodeId, NodeId, u64)] {
        &self.sc
    }

    /// DL entry for external node `a`, if recorded.
    pub fn dl_entry(&self, a: NodeId) -> Option<&[(NodeId, u64)]> {
        self.dl_entries.get(&a).map(Vec::as_slice)
    }

    /// Iterate all DL entries.
    pub fn dl_entries(&self) -> impl Iterator<Item = (NodeId, &[(NodeId, u64)])> {
        self.dl_entries.iter().map(|(&n, v)| (n, v.as_slice()))
    }

    /// §3.7 aggregated `(portal, min distance)` list for keyword `kw`
    /// (external occurrences only), sorted by distance.
    pub fn keyword_portal_list(&self, kw: KeywordId) -> &[(NodeId, u64)] {
        self.keyword_portals.get(&kw).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of node-keyed DL `(portal, distance)` pairs.
    pub fn dl_pairs(&self) -> usize {
        self.dl_entries.values().map(Vec::len).sum()
    }

    /// The paper's index-size measure: number of recorded distances
    /// (`|SC| + Σ |DL entry|`, Theorem 4's counting).
    pub fn distances_recorded(&self) -> usize {
        self.sc.len() + self.dl_pairs()
    }

    /// Size/shape summary.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            fragment: self.fragment,
            shortcuts: self.sc.len(),
            dl_entries: self.dl_entries.len(),
            dl_pairs: self.dl_pairs(),
            keyword_pairs: self.keyword_portals.values().map(Vec::len).sum(),
            distances_recorded: self.distances_recorded(),
            encoded_bytes: persist::encoded_size(self),
            build_time: self.build_time,
            build_settled: self.build_settled,
        }
    }
}

/// Per-fragment index statistics (EXP 1 and EXP 2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    pub fragment: FragmentId,
    /// |SC(P)| — `β` in Theorem 5.
    pub shortcuts: usize,
    /// Number of DL entries (distinct external nodes).
    pub dl_entries: usize,
    /// Total node-keyed `(portal, distance)` pairs across entries.
    pub dl_pairs: usize,
    /// Total keyword-aggregated pairs (§3.7 materialization).
    pub keyword_pairs: usize,
    /// `|SC| + dl_pairs` — the paper's size measure.
    pub distances_recorded: usize,
    /// Bytes of the persisted binary form (the Fig. 7/8 storage cost).
    pub encoded_bytes: usize,
    /// Wall-clock construction time (Table 3).
    pub build_time: std::time::Duration,
    /// Nodes settled across all portal-source searches.
    pub build_settled: u64,
}

impl std::fmt::Display for IndexStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: sc={} dl_entries={} dl_pairs={} distances={} bytes={} built_in={:?}",
            self.fragment,
            self.shortcuts,
            self.dl_entries,
            self.dl_pairs,
            self.distances_recorded,
            self.encoded_bytes,
            self.build_time
        )
    }
}
