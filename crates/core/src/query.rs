//! The paper's query types and their lowering to D-functions.
//!
//! * [`SgkQuery`] — Spatial Group Keyword Query (Definition 2): node `A` is a
//!   result iff `d(A, ωᵢ) ≤ r` for every query keyword `ωᵢ`. Lowered to
//!   `⋂ᵢ R(ωᵢ, r)`.
//! * [`RangeKeywordQuery`] — Range Keyword Query (Definition 3): `A` is a
//!   result iff `d(l, A) ≤ r` and `A` contains every `ωᵢ`. Lowered to
//!   `R(l, r) ∩ ⋂ᵢ R(ωᵢ, 0)` — the paper's Example 2 treatment, where the
//!   query location's node id is used as a term and radius 0 forces
//!   containment.
//! * [`QClassQuery`] — the general Q-class (Definition 8): any D-function
//!   over coverages with per-term radii.

use bytes::{Buf, BufMut};

use disks_roadnet::codec::{Decode, Encode};
use disks_roadnet::{DecodeError, KeywordId, NodeId};

use crate::dfunc::{DFunction, SetOp, Term};

/// Spatial Group Keyword Query (Definition 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgkQuery {
    pub keywords: Vec<KeywordId>,
    pub radius: u64,
}

impl SgkQuery {
    /// Build a query; duplicate keywords are removed (they cannot change the
    /// intersection).
    pub fn new(mut keywords: Vec<KeywordId>, radius: u64) -> Self {
        keywords.sort_unstable();
        keywords.dedup();
        SgkQuery { keywords, radius }
    }

    /// Lower to the D-function `⋂ᵢ R(ωᵢ, r)`.
    ///
    /// # Panics
    /// Panics if the query has no keywords; use [`Self::to_dfunction_checked`]
    /// for fallible lowering.
    pub fn to_dfunction(&self) -> DFunction {
        DFunction::intersection_of(&self.keywords, self.radius)
    }

    /// Fallible lowering: `None` when the query has no keywords.
    pub fn to_dfunction_checked(&self) -> Option<DFunction> {
        if self.keywords.is_empty() {
            None
        } else {
            Some(self.to_dfunction())
        }
    }
}

/// Range Keyword Query (Definition 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeKeywordQuery {
    pub location: NodeId,
    pub keywords: Vec<KeywordId>,
    pub radius: u64,
}

impl RangeKeywordQuery {
    pub fn new(location: NodeId, mut keywords: Vec<KeywordId>, radius: u64) -> Self {
        keywords.sort_unstable();
        keywords.dedup();
        RangeKeywordQuery { location, keywords, radius }
    }

    /// Lower to `R(l, r) ∩ ⋂ᵢ R(ωᵢ, 0)` (paper Example 2 / §3.1).
    pub fn to_dfunction(&self) -> DFunction {
        let mut f = DFunction::single(Term::Node(self.location), self.radius);
        for &k in &self.keywords {
            f = f.then(SetOp::Intersect, Term::Keyword(k), 0);
        }
        f
    }
}

/// A general Q-class query (Definition 8): an arbitrary D-function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QClassQuery {
    pub dfunction: DFunction,
}

impl QClassQuery {
    pub fn new(dfunction: DFunction) -> Self {
        QClassQuery { dfunction }
    }

    /// The paper's extended SGKQ Q5: union of coverages,
    /// "within r of *either* keyword".
    pub fn any_of(keywords: &[KeywordId], radius: u64) -> Self {
        assert!(!keywords.is_empty(), "at least one keyword required");
        let mut f = DFunction::single(Term::Keyword(keywords[0]), radius);
        for &k in &keywords[1..] {
            f = f.then(SetOp::Union, Term::Keyword(k), radius);
        }
        QClassQuery { dfunction: f }
    }

    /// The paper's extended SGKQ Q2: "contains `target`, at least `radius`
    /// away from every `avoid` node": `R(target, 0) − R(avoid, r)`.
    pub fn near_but_far(target: KeywordId, avoid: KeywordId, radius: u64) -> Self {
        let f = DFunction::single(Term::Keyword(target), 0).then(
            SetOp::Subtract,
            Term::Keyword(avoid),
            radius,
        );
        QClassQuery { dfunction: f }
    }

    pub fn to_dfunction(&self) -> DFunction {
        self.dfunction.clone()
    }
}

impl Encode for SgkQuery {
    fn encode(&self, buf: &mut impl BufMut) {
        self.keywords.encode(buf);
        self.radius.encode(buf);
    }
}
impl Decode for SgkQuery {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(SgkQuery { keywords: Vec::decode(buf)?, radius: u64::decode(buf)? })
    }
}

impl Encode for RangeKeywordQuery {
    fn encode(&self, buf: &mut impl BufMut) {
        self.location.encode(buf);
        self.keywords.encode(buf);
        self.radius.encode(buf);
    }
}
impl Decode for RangeKeywordQuery {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(RangeKeywordQuery {
            location: NodeId::decode(buf)?,
            keywords: Vec::decode(buf)?,
            radius: u64::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgkq_dedupes_keywords() {
        let q = SgkQuery::new(vec![KeywordId(2), KeywordId(1), KeywordId(2)], 5);
        assert_eq!(q.keywords, vec![KeywordId(1), KeywordId(2)]);
        let f = q.to_dfunction();
        assert_eq!(f.num_terms(), 2);
        assert!(f.rest.iter().all(|(op, _)| *op == SetOp::Intersect));
    }

    #[test]
    fn rkq_lowering_matches_paper_example2() {
        // RKQ(B, {museum}, 4) → R(B, 4) ∩ R(museum, 0).
        let q = RangeKeywordQuery::new(NodeId(1), vec![KeywordId(3)], 4);
        let f = q.to_dfunction();
        assert_eq!(f.first.term, Term::Node(NodeId(1)));
        assert_eq!(f.first.radius, 4);
        assert_eq!(f.rest.len(), 1);
        assert_eq!(
            f.rest[0],
            (
                SetOp::Intersect,
                crate::dfunc::DTerm { term: Term::Keyword(KeywordId(3)), radius: 0 }
            )
        );
    }

    #[test]
    fn q5_any_of_uses_unions() {
        let q = QClassQuery::any_of(&[KeywordId(0), KeywordId(1)], 500);
        let f = q.to_dfunction();
        assert_eq!(f.rest[0].0, SetOp::Union);
        assert_eq!(f.max_radius(), 500);
    }

    #[test]
    fn q2_near_but_far_uses_subtraction() {
        let q = QClassQuery::near_but_far(KeywordId(0), KeywordId(1), 1000);
        let f = q.to_dfunction();
        assert_eq!(f.first.radius, 0);
        assert_eq!(f.rest[0].0, SetOp::Subtract);
        assert_eq!(f.rest[0].1.radius, 1000);
    }

    #[test]
    fn query_codecs_round_trip() {
        use bytes::BytesMut;
        let q = SgkQuery::new(vec![KeywordId(4), KeywordId(9)], 77);
        let mut buf = BytesMut::new();
        q.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(SgkQuery::decode(&mut bytes).unwrap(), q);

        let rq = RangeKeywordQuery::new(NodeId(11), vec![KeywordId(2)], 6);
        let mut buf = BytesMut::new();
        rq.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(RangeKeywordQuery::decode(&mut bytes).unwrap(), rq);
    }
}
