//! Query planning: lowering D-functions into normalized [`QueryPlan`]s.
//!
//! A plan is the coordinator-side, wire-shippable form of a query. It
//! separates *what must be computed* — the deduplicated `(term, radius)`
//! **slots**, each a keyword coverage `R(term, r) ∩ P` — from *how results
//! combine* — a left-associated operator **program** over slot indexes.
//!
//! Deduplication is what makes the slot the unit of caching: a Zipf-skewed
//! stream repeats the same `(keyword, radius)` pairs constantly, and a plan
//! referencing slot `#i` twice costs one Dijkstra, not two. Lemma 1 is
//! unaffected: the program is evaluated per fragment over local coverages,
//! and the union over fragments is taken by the coordinator exactly as for
//! the original D-function.

use bytes::{Buf, BufMut};

use disks_roadnet::codec::{Decode, Encode};
use disks_roadnet::{DecodeError, RoadNetwork};

use crate::bitset::BitSet;
use crate::dfunc::{DFunction, DTerm, SetOp, Term};

/// Keyword statistics backing the Theorem 5 pre-dispatch cost estimate.
///
/// Theorem 5 bounds a slot's evaluation cost by the size of the coverage it
/// materializes (`α` settled nodes) times the per-node expansion work. At
/// admission time neither is known exactly, but both are predictable from
/// whole-network statistics the coordinator already holds: the keyword's
/// global frequency bounds the coverage population, and the radius measured
/// in average edge lengths bounds the Dijkstra expansion depth. The product
/// is a unitless *cost score* — only ratios between queries matter, so the
/// admission budget (`DISKS_COST_LIMIT`) is calibrated in the same units.
#[derive(Debug, Clone)]
pub struct CostParams {
    keyword_freq: Vec<u64>,
    num_nodes: u64,
    avg_edge_weight: u64,
}

impl CostParams {
    /// Capture cost statistics from a road network (coordinator side; the
    /// coordinator retains the network for respawns, so this is free).
    pub fn from_network(net: &RoadNetwork) -> Self {
        CostParams::new(
            net.keyword_frequencies().into_iter().map(|f| f as u64).collect(),
            net.num_nodes() as u64,
            net.avg_edge_weight(),
        )
    }

    /// Build from raw statistics (tests / synthetic workloads).
    pub fn new(keyword_freq: Vec<u64>, num_nodes: u64, avg_edge_weight: u64) -> Self {
        CostParams { keyword_freq, num_nodes, avg_edge_weight }
    }

    /// Estimated cost of materializing one coverage slot: expected coverage
    /// population × radius expressed in average edge lengths (a hop-count
    /// proxy for Dijkstra expansion depth). Monotone in both the keyword's
    /// frequency and the slot radius; never zero, so every admitted slot
    /// charges the pressure gauge.
    pub fn slot_cost(&self, slot: &DTerm) -> u64 {
        let population = match slot.term {
            Term::Keyword(k) => {
                self.keyword_freq.get(k.0 as usize).copied().unwrap_or(0).min(self.num_nodes)
            }
            // A node-anchored slot expands from a single source.
            Term::Node(_) => 1,
        };
        let hops = 1 + slot.radius / self.avg_edge_weight.max(1);
        population.max(1).saturating_mul(hops)
    }
}

/// A normalized query: deduplicated coverage slots plus a combine program.
///
/// Invariants (enforced by [`QueryPlan::lower`] and checked on decode):
/// `slots` is non-empty, every slot is referenced by the program, and every
/// program index is `< slots.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Distinct `(term, radius)` coverages, in first-occurrence order.
    slots: Vec<DTerm>,
    /// Slot index of the program's first operand `X₁`.
    first: u32,
    /// The operator chain `θ₁ X_{i₁} θ₂ X_{i₂} …` over slot indexes.
    ops: Vec<(SetOp, u32)>,
}

impl QueryPlan {
    /// Lower a D-function, deduplicating identical `(term, radius)` terms
    /// into shared slots.
    pub fn lower(f: &DFunction) -> Self {
        let mut slots: Vec<DTerm> = Vec::with_capacity(f.num_terms());
        let slot_of = |slots: &mut Vec<DTerm>, t: &DTerm| -> u32 {
            match slots.iter().position(|s| s == t) {
                Some(i) => i as u32,
                None => {
                    slots.push(*t);
                    (slots.len() - 1) as u32
                }
            }
        };
        let first = slot_of(&mut slots, &f.first);
        let ops = f.rest.iter().map(|(op, t)| (*op, slot_of(&mut slots, t))).collect();
        QueryPlan { slots, first, ops }
    }

    /// The deduplicated coverage slots, in first-occurrence order.
    pub fn slots(&self) -> &[DTerm] {
        &self.slots
    }

    /// Number of distinct coverages to compute (`≤` the D-function's term
    /// count).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of operands in the combine program (the D-function's `k`).
    pub fn num_operands(&self) -> usize {
        1 + self.ops.len()
    }

    /// Largest radius across slots (used for `maxR` admission and §5.5
    /// bi-level routing).
    pub fn max_radius(&self) -> u64 {
        self.slots.iter().map(|s| s.radius).max().unwrap_or(0)
    }

    /// Iterate the distinct query locations (`Term::Node` slots).
    pub fn locations(&self) -> impl Iterator<Item = disks_roadnet::NodeId> + '_ {
        self.slots.iter().filter_map(|s| match s.term {
            Term::Node(n) => Some(n),
            Term::Keyword(_) => None,
        })
    }

    /// The single slot index when the program has exactly one operand (the
    /// common 1-keyword SGKQ / RKQ shape) — callers can then use the
    /// coverage directly instead of cloning it through [`Self::combine`].
    pub fn single_slot(&self) -> Option<u32> {
        if self.ops.is_empty() {
            Some(self.first)
        } else {
            None
        }
    }

    /// Theorem 5 pre-dispatch cost estimate: the summed slot costs (distinct
    /// coverages × expected coverage size). Deduplicated slots are charged
    /// once, mirroring what a worker actually evaluates. Always ≥ 1, so an
    /// admitted query is never free under the pressure gauge.
    pub fn estimated_cost(&self, params: &CostParams) -> u64 {
        self.slots.iter().map(|s| params.slot_cost(s)).fold(0u64, u64::saturating_add).max(1)
    }

    /// Run the combine program over per-slot coverages. `coverages[i]` must
    /// be the coverage of `slots()[i]`; all bitsets must share a capacity.
    ///
    /// Left-associated chains of ∩/− only shrink the accumulator, so once it
    /// empties with no ∪ remaining the rest of the program is skipped — the
    /// word kernels report liveness for free.
    pub fn combine<C: std::ops::Deref<Target = BitSet>>(&self, coverages: &[C]) -> BitSet {
        assert_eq!(coverages.len(), self.slots.len(), "one coverage per slot required");
        let last_union = self.ops.iter().rposition(|&(op, _)| op == SetOp::Union);
        let mut acc: BitSet = coverages[self.first as usize].clone();
        for (i, &(op, slot)) in self.ops.iter().enumerate() {
            let rhs = &*coverages[slot as usize];
            let live = match op {
                SetOp::Union => {
                    acc.union_with(rhs);
                    true
                }
                SetOp::Intersect => acc.intersect_with(rhs),
                SetOp::Subtract => acc.subtract(rhs),
            };
            if !live && last_union.is_none_or(|u| u <= i) {
                break; // only ∩/− remain: the result stays empty
            }
        }
        acc
    }
}

/// A merged batch of [`QueryPlan`]s sharing one deduplicated slot table —
/// the payload of a cross-query batched dispatch. Slot indices in each
/// per-query program refer to the *shared* table, so a worker evaluates
/// each distinct `(term, radius)` coverage once per batch and runs every
/// program against the shared results.
///
/// Invariants (enforced by [`SuperPlan::merge`] and checked on decode):
/// `slots` and `programs` are non-empty and every program index is
/// `< slots.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperPlan {
    /// Distinct `(term, radius)` coverages across the batch, in
    /// first-occurrence order.
    slots: Vec<DTerm>,
    /// One combine program per query, in batch order, over shared slots.
    programs: Vec<Program>,
}

/// One query's combine program inside a [`SuperPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct Program {
    first: u32,
    ops: Vec<(SetOp, u32)>,
}

impl SuperPlan {
    /// Merge admitted plans into one super-plan, deduplicating slots across
    /// queries and remapping each program onto the shared table.
    ///
    /// # Panics
    /// Panics if `plans` is empty.
    pub fn merge(plans: &[QueryPlan]) -> Self {
        assert!(!plans.is_empty(), "cannot merge an empty batch");
        let mut slots: Vec<DTerm> = Vec::new();
        let shared = |slots: &mut Vec<DTerm>, t: &DTerm| -> u32 {
            match slots.iter().position(|s| s == t) {
                Some(i) => i as u32,
                None => {
                    slots.push(*t);
                    (slots.len() - 1) as u32
                }
            }
        };
        let programs = plans
            .iter()
            .map(|p| {
                let map: Vec<u32> = p.slots.iter().map(|t| shared(&mut slots, t)).collect();
                Program {
                    first: map[p.first as usize],
                    ops: p.ops.iter().map(|&(op, i)| (op, map[i as usize])).collect(),
                }
            })
            .collect();
        SuperPlan { slots, programs }
    }

    /// Recover the per-query plans, each with its own slot table in
    /// first-occurrence order. `split(merge(plans)) == plans` exactly, so
    /// workers evaluating split plans (against a batch-shared coverage
    /// store) reproduce unbatched evaluation bit for bit.
    pub fn split(&self) -> Vec<QueryPlan> {
        self.programs
            .iter()
            .map(|prog| {
                let mut slots: Vec<DTerm> = Vec::new();
                let local = |slots: &mut Vec<DTerm>, gi: u32| -> u32 {
                    let t = self.slots[gi as usize];
                    match slots.iter().position(|s| *s == t) {
                        Some(i) => i as u32,
                        None => {
                            slots.push(t);
                            (slots.len() - 1) as u32
                        }
                    }
                };
                let first = local(&mut slots, prog.first);
                let ops = prog.ops.iter().map(|&(op, i)| (op, local(&mut slots, i))).collect();
                QueryPlan { slots, first, ops }
            })
            .collect()
    }

    /// Number of queries in the batch.
    pub fn num_queries(&self) -> usize {
        self.programs.len()
    }

    /// The shared deduplicated slot table.
    pub fn slots(&self) -> &[DTerm] {
        &self.slots
    }

    /// Number of distinct coverages to compute for the whole batch.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Largest radius across all shared slots (used for §5.5 bi-level
    /// routing of the batch).
    pub fn max_radius(&self) -> u64 {
        self.slots.iter().map(|s| s.radius).max().unwrap_or(0)
    }
}

/// Coordinator-side registry of **global slot ids**: a dense id per distinct
/// `(term, radius)` spec, stable for the cluster's lifetime. Ids are
/// fragment-stable — the spec, not any per-worker state, defines the id — so
/// the same id means the same coverage slot on every machine, and a worker
/// that learns the binding once (from a full-spec entry) can resolve compact
/// references forever after, across cache evictions (an evicted coverage is
/// recomputed from the remembered spec, not NACKed).
#[derive(Debug, Default)]
pub struct SlotIdTable {
    ids: std::collections::HashMap<DTerm, u32>,
}

impl SlotIdTable {
    pub fn new() -> Self {
        SlotIdTable::default()
    }

    /// The global id for a slot spec, assigning the next dense id on first
    /// sight.
    pub fn id_of(&mut self, slot: &DTerm) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(*slot).or_insert(next)
    }

    /// Number of distinct slot specs seen so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// One slot of an [`ElidedSuperPlan`]: either the full `(term, radius)` spec
/// (teaching the receiving worker the id→spec binding) or a bare reference
/// to an id the coordinator believes the worker already knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElidedSlot {
    Full { id: u32, spec: DTerm },
    Cached { id: u32 },
}

impl ElidedSlot {
    pub fn id(&self) -> u32 {
        match *self {
            ElidedSlot::Full { id, .. } | ElidedSlot::Cached { id } => id,
        }
    }
}

/// A [`SuperPlan`] with known-cached slots elided to compact id references
/// and the combine programs packed into narrow (u16/u8) fields — the payload
/// of a `BatchRef` dispatch frame. Decoding enforces the same invariants as
/// `SuperPlan` (non-empty slots/programs, every program index in range);
/// resolving id references happens worker-side against its slot directory,
/// with unknown ids reported back as a typed `SlotUnknown` NACK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElidedSuperPlan {
    slots: Vec<ElidedSlot>,
    programs: Vec<Program>,
}

/// The worker-side result of resolving an [`ElidedSuperPlan`] against its
/// id→spec directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedBatch {
    /// The reconstructed super-plan. Slots whose id was unknown hold a
    /// placeholder spec; they are only reachable from `affected` programs,
    /// which the worker must NACK instead of evaluating.
    pub plan: SuperPlan,
    /// Referenced slot ids absent from the directory (sorted, deduplicated).
    pub unknown: Vec<u32>,
    /// Per query (batch order): does its program reference an unknown slot?
    pub affected: Vec<bool>,
}

impl SuperPlan {
    /// Elide this super-plan against a per-worker `believed` cached-id set.
    /// Returns `None` when the plan does not fit the compact encoding
    /// (≥ 2¹⁶ slots or programs, or a program with > 255 operators) — the
    /// caller falls back to the plain full-spec `Batch` frame.
    pub fn try_elide(
        &self,
        table: &mut SlotIdTable,
        believed: &std::collections::HashSet<u32>,
    ) -> Option<ElidedSuperPlan> {
        if self.slots.len() > u16::MAX as usize || self.programs.len() > u16::MAX as usize {
            return None;
        }
        if self.programs.iter().any(|p| p.ops.len() > u8::MAX as usize) {
            return None;
        }
        let slots = self
            .slots
            .iter()
            .map(|s| {
                let id = table.id_of(s);
                if believed.contains(&id) {
                    ElidedSlot::Cached { id }
                } else {
                    ElidedSlot::Full { id, spec: *s }
                }
            })
            .collect();
        Some(ElidedSuperPlan { slots, programs: self.programs.clone() })
    }
}

impl ElidedSuperPlan {
    /// Number of queries in the batch.
    pub fn num_queries(&self) -> usize {
        self.programs.len()
    }

    /// Global ids of every slot in the frame, in slot order.
    pub fn slot_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.slots.iter().map(ElidedSlot::id)
    }

    /// How many slots shipped as bare references (elided specs).
    pub fn num_elided(&self) -> usize {
        self.slots.iter().filter(|s| matches!(s, ElidedSlot::Cached { .. })).count()
    }

    /// Resolve id references against a worker's id→spec directory. Full
    /// entries teach the directory; unknown references are reported in
    /// `unknown` with the programs that touch them flagged `affected`.
    pub fn resolve(&self, directory: &mut std::collections::HashMap<u32, DTerm>) -> ResolvedBatch {
        let mut unknown = Vec::new();
        let mut missing = vec![false; self.slots.len()];
        let slots: Vec<DTerm> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| match *s {
                ElidedSlot::Full { id, spec } => {
                    directory.insert(id, spec);
                    spec
                }
                ElidedSlot::Cached { id } => match directory.get(&id) {
                    Some(spec) => *spec,
                    None => {
                        missing[i] = true;
                        unknown.push(id);
                        // Placeholder; never evaluated (the program is NACKed).
                        DTerm { term: Term::Keyword(disks_roadnet::KeywordId(u32::MAX)), radius: 0 }
                    }
                },
            })
            .collect();
        unknown.sort_unstable();
        unknown.dedup();
        let affected = self
            .programs
            .iter()
            .map(|p| {
                std::iter::once(p.first)
                    .chain(p.ops.iter().map(|&(_, i)| i))
                    .any(|i| missing[i as usize])
            })
            .collect();
        ResolvedBatch {
            plan: SuperPlan { slots, programs: self.programs.clone() },
            unknown,
            affected,
        }
    }
}

impl Encode for ElidedSuperPlan {
    fn encode(&self, buf: &mut impl BufMut) {
        (self.slots.len() as u16).encode(buf);
        for s in &self.slots {
            match *s {
                ElidedSlot::Full { id, spec } => {
                    0u8.encode(buf);
                    id.encode(buf);
                    spec.encode(buf);
                }
                ElidedSlot::Cached { id } => {
                    1u8.encode(buf);
                    id.encode(buf);
                }
            }
        }
        (self.programs.len() as u16).encode(buf);
        for p in &self.programs {
            (p.first as u16).encode(buf);
            (p.ops.len() as u8).encode(buf);
            for &(op, idx) in &p.ops {
                op.encode(buf);
                (idx as u16).encode(buf);
            }
        }
    }
}
impl Decode for ElidedSuperPlan {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let ns = u16::decode(buf)? as usize;
        if ns == 0 {
            return Err(DecodeError::LengthOutOfRange { context: "ElidedSuperPlan.slots", len: 0 });
        }
        let mut slots = Vec::with_capacity(ns);
        for _ in 0..ns {
            slots.push(match u8::decode(buf)? {
                0 => ElidedSlot::Full { id: u32::decode(buf)?, spec: DTerm::decode(buf)? },
                1 => ElidedSlot::Cached { id: u32::decode(buf)? },
                tag => return Err(DecodeError::BadTag { context: "ElidedSlot", tag }),
            });
        }
        let np = u16::decode(buf)? as usize;
        if np == 0 {
            return Err(DecodeError::LengthOutOfRange {
                context: "ElidedSuperPlan.programs",
                len: 0,
            });
        }
        let mut programs = Vec::with_capacity(np);
        for _ in 0..np {
            let first = u16::decode(buf)? as u32;
            let n_ops = u8::decode(buf)? as usize;
            let mut ops = Vec::with_capacity(n_ops);
            for _ in 0..n_ops {
                ops.push((SetOp::decode(buf)?, u16::decode(buf)? as u32));
            }
            for idx in std::iter::once(first).chain(ops.iter().map(|&(_, i)| i)) {
                if (idx as usize) >= ns {
                    return Err(DecodeError::LengthOutOfRange {
                        context: "ElidedSuperPlan slot index",
                        len: u64::from(idx),
                    });
                }
            }
            programs.push(Program { first, ops });
        }
        Ok(ElidedSuperPlan { slots, programs })
    }
}

impl Encode for SuperPlan {
    fn encode(&self, buf: &mut impl BufMut) {
        self.slots.encode(buf);
        (self.programs.len() as u32).encode(buf);
        for p in &self.programs {
            p.first.encode(buf);
            p.ops.encode(buf);
        }
    }
}
impl Decode for SuperPlan {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let slots = Vec::<DTerm>::decode(buf)?;
        if slots.is_empty() {
            return Err(DecodeError::LengthOutOfRange { context: "SuperPlan.slots", len: 0 });
        }
        let n = u32::decode(buf)? as usize;
        if n == 0 {
            return Err(DecodeError::LengthOutOfRange { context: "SuperPlan.programs", len: 0 });
        }
        let bound = slots.len() as u64;
        let mut programs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let first = u32::decode(buf)?;
            let ops = Vec::<(SetOp, u32)>::decode(buf)?;
            for idx in std::iter::once(first).chain(ops.iter().map(|&(_, i)| i)) {
                if u64::from(idx) >= bound {
                    return Err(DecodeError::LengthOutOfRange {
                        context: "SuperPlan slot index",
                        len: u64::from(idx),
                    });
                }
            }
            programs.push(Program { first, ops });
        }
        Ok(SuperPlan { slots, programs })
    }
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.slots.iter().enumerate() {
            write!(f, "#{i}=R({}, {}); ", s.term, s.radius)?;
        }
        write!(f, "#{}", self.first)?;
        for (op, slot) in &self.ops {
            write!(f, " {op} #{slot}")?;
        }
        Ok(())
    }
}

impl Encode for QueryPlan {
    fn encode(&self, buf: &mut impl BufMut) {
        self.slots.encode(buf);
        self.first.encode(buf);
        self.ops.encode(buf);
    }
}
impl Decode for QueryPlan {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let slots = Vec::<DTerm>::decode(buf)?;
        if slots.is_empty() {
            return Err(DecodeError::LengthOutOfRange { context: "QueryPlan.slots", len: 0 });
        }
        let first = u32::decode(buf)?;
        let ops = Vec::<(SetOp, u32)>::decode(buf)?;
        let n = slots.len() as u64;
        for idx in std::iter::once(first).chain(ops.iter().map(|&(_, i)| i)) {
            if u64::from(idx) >= n {
                return Err(DecodeError::LengthOutOfRange {
                    context: "QueryPlan slot index",
                    len: u64::from(idx),
                });
            }
        }
        Ok(QueryPlan { slots, first, ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_roadnet::{KeywordId, NodeId};
    use std::sync::Arc;

    fn set(cap: usize, elems: &[usize]) -> Arc<BitSet> {
        let mut s = BitSet::new(cap);
        for &e in elems {
            s.insert(e);
        }
        Arc::new(s)
    }

    #[test]
    fn lowering_dedupes_repeated_terms() {
        // R(a, 5) ∩ R(b, 5) ∪ R(a, 5): three operands, two slots.
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 5)
            .then(SetOp::Intersect, Term::Keyword(KeywordId(1)), 5)
            .then(SetOp::Union, Term::Keyword(KeywordId(0)), 5);
        let plan = QueryPlan::lower(&f);
        assert_eq!(plan.num_slots(), 2);
        assert_eq!(plan.num_operands(), 3);
        assert_eq!(plan.ops, vec![(SetOp::Intersect, 1), (SetOp::Union, 0)]);
    }

    #[test]
    fn same_term_different_radius_gets_distinct_slots() {
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 5).then(
            SetOp::Union,
            Term::Keyword(KeywordId(0)),
            9,
        );
        let plan = QueryPlan::lower(&f);
        assert_eq!(plan.num_slots(), 2);
        assert_eq!(plan.max_radius(), 9);
    }

    #[test]
    fn combine_matches_dfunction_combine() {
        // (X1 − X2) ∪ X1: exercises a repeated operand through one slot.
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 3)
            .then(SetOp::Subtract, Term::Keyword(KeywordId(1)), 2)
            .then(SetOp::Union, Term::Keyword(KeywordId(0)), 3);
        let x1 = set(6, &[0, 1, 4]);
        let x2 = set(6, &[1, 2]);
        let expect = f.combine(&[(*x1).clone(), (*x2).clone(), (*x1).clone()]);
        let plan = QueryPlan::lower(&f);
        let got = plan.combine(&[x1, x2]);
        assert_eq!(got, expect);
    }

    #[test]
    fn locations_yields_node_slots() {
        let f = DFunction::single(Term::Node(NodeId(7)), 4).then(
            SetOp::Intersect,
            Term::Keyword(KeywordId(1)),
            0,
        );
        let plan = QueryPlan::lower(&f);
        assert_eq!(plan.locations().collect::<Vec<_>>(), vec![NodeId(7)]);
    }

    #[test]
    fn codec_round_trip() {
        use bytes::BytesMut;
        let f = DFunction::single(Term::Keyword(KeywordId(2)), 10)
            .then(SetOp::Union, Term::Node(NodeId(5)), 0)
            .then(SetOp::Subtract, Term::Keyword(KeywordId(2)), 10);
        let plan = QueryPlan::lower(&f);
        let mut buf = BytesMut::new();
        plan.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(QueryPlan::decode(&mut bytes).unwrap(), plan);
    }

    #[test]
    fn decode_rejects_out_of_range_slot_index() {
        use bytes::BytesMut;
        let plan = QueryPlan {
            slots: vec![DTerm { term: Term::Keyword(KeywordId(0)), radius: 1 }],
            first: 3, // invalid: only one slot
            ops: Vec::new(),
        };
        let mut buf = BytesMut::new();
        plan.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(matches!(
            QueryPlan::decode(&mut bytes),
            Err(DecodeError::LengthOutOfRange { context: "QueryPlan slot index", .. })
        ));
    }

    #[test]
    fn decode_rejects_empty_plan() {
        use bytes::BytesMut;
        let plan = QueryPlan { slots: Vec::new(), first: 0, ops: Vec::new() };
        let mut buf = BytesMut::new();
        plan.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(QueryPlan::decode(&mut bytes).is_err());
    }

    #[test]
    fn single_slot_detects_one_operand_plans() {
        let one = QueryPlan::lower(&DFunction::single(Term::Keyword(KeywordId(3)), 7));
        assert_eq!(one.single_slot(), Some(0));
        let two = QueryPlan::lower(&DFunction::single(Term::Keyword(KeywordId(3)), 7).then(
            SetOp::Union,
            Term::Keyword(KeywordId(4)),
            7,
        ));
        assert_eq!(two.single_slot(), None);
    }

    #[test]
    fn combine_short_circuits_only_when_no_union_remains() {
        // (X1 ∩ X2) ∪ X3 with X1 ∩ X2 = ∅: the ∪ must still apply.
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 1)
            .then(SetOp::Intersect, Term::Keyword(KeywordId(1)), 1)
            .then(SetOp::Union, Term::Keyword(KeywordId(2)), 1);
        let plan = QueryPlan::lower(&f);
        let got = plan.combine(&[set(8, &[0, 1]), set(8, &[2, 3]), set(8, &[5])]);
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![5]);
    }

    fn batch_of_plans() -> Vec<QueryPlan> {
        // Three queries sharing slots across the batch: R(k0,5) appears in
        // all three, R(k1,5) in two, and one query repeats a slot itself.
        let fs = [
            DFunction::single(Term::Keyword(KeywordId(0)), 5).then(
                SetOp::Intersect,
                Term::Keyword(KeywordId(1)),
                5,
            ),
            DFunction::single(Term::Keyword(KeywordId(1)), 5)
                .then(SetOp::Subtract, Term::Keyword(KeywordId(0)), 5)
                .then(SetOp::Union, Term::Keyword(KeywordId(1)), 5),
            DFunction::single(Term::Keyword(KeywordId(0)), 5).then(
                SetOp::Union,
                Term::Keyword(KeywordId(2)),
                9,
            ),
        ];
        fs.iter().map(QueryPlan::lower).collect()
    }

    #[test]
    fn merge_shares_slots_and_split_round_trips() {
        let plans = batch_of_plans();
        let sp = SuperPlan::merge(&plans);
        // 3 distinct (term, radius) pairs across 5 plan slots.
        assert_eq!(sp.num_slots(), 3);
        assert_eq!(sp.num_queries(), 3);
        assert_eq!(sp.max_radius(), 9);
        assert_eq!(sp.split(), plans);
    }

    #[test]
    fn merged_programs_combine_identically_over_shared_slots() {
        let plans = batch_of_plans();
        let sp = SuperPlan::merge(&plans);
        let shared: Vec<Arc<BitSet>> =
            sp.slots().iter().enumerate().map(|(i, _)| set(8, &[i, i + 2, 7 - i])).collect();
        for (plan, rebuilt) in plans.iter().zip(sp.split()) {
            let local: Vec<Arc<BitSet>> = rebuilt
                .slots()
                .iter()
                .map(|t| {
                    let gi = sp.slots().iter().position(|s| s == t).unwrap();
                    Arc::clone(&shared[gi])
                })
                .collect();
            // The rebuilt plan over batch-shared coverages equals the
            // original plan over its own coverages.
            let own: Vec<Arc<BitSet>> = plan
                .slots()
                .iter()
                .map(|t| {
                    let gi = sp.slots().iter().position(|s| s == t).unwrap();
                    Arc::clone(&shared[gi])
                })
                .collect();
            assert_eq!(rebuilt.combine(&local), plan.combine(&own));
        }
    }

    #[test]
    fn super_plan_codec_round_trip() {
        use bytes::BytesMut;
        let sp = SuperPlan::merge(&batch_of_plans());
        let mut buf = BytesMut::new();
        sp.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(SuperPlan::decode(&mut bytes).unwrap(), sp);
    }

    #[test]
    fn estimated_cost_charges_deduplicated_slots_once() {
        let params = CostParams::new(vec![40, 10], 100, 5);
        // R(k0,10) ∩ R(k1,10) ∪ R(k0,10): k0 slot shared, charged once.
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 10)
            .then(SetOp::Intersect, Term::Keyword(KeywordId(1)), 10)
            .then(SetOp::Union, Term::Keyword(KeywordId(0)), 10);
        let plan = QueryPlan::lower(&f);
        // hops = 1 + 10/5 = 3; cost = 40*3 + 10*3, not 40*3*2 + 10*3.
        assert_eq!(plan.estimated_cost(&params), 40 * 3 + 10 * 3);
    }

    #[test]
    fn estimated_cost_monotone_in_radius_and_frequency() {
        let params = CostParams::new(vec![7, 70], 1000, 4);
        let cost = |kw: u32, r: u64| {
            QueryPlan::lower(&DFunction::single(Term::Keyword(KeywordId(kw)), r))
                .estimated_cost(&params)
        };
        for r in 0..64 {
            assert!(cost(0, r + 1) >= cost(0, r), "radius monotonicity at r={r}");
            assert!(cost(1, r) >= cost(0, r), "frequency monotonicity at r={r}");
        }
    }

    #[test]
    fn estimated_cost_floors_at_one_and_caps_population() {
        // Unknown keyword and node slots still cost at least 1.
        let params = CostParams::new(vec![], 10, 0);
        let unknown = QueryPlan::lower(&DFunction::single(Term::Keyword(KeywordId(9)), 0));
        assert_eq!(unknown.estimated_cost(&params), 1);
        let node = QueryPlan::lower(&DFunction::single(Term::Node(NodeId(3)), 8));
        assert!(node.estimated_cost(&params) >= 1);
        // A frequency claiming more nodes than exist is clamped.
        let inflated = CostParams::new(vec![u64::MAX], 10, 1);
        let kw = QueryPlan::lower(&DFunction::single(Term::Keyword(KeywordId(0)), 0));
        assert_eq!(kw.estimated_cost(&inflated), 10);
    }

    #[test]
    fn slot_id_table_assigns_stable_dense_ids() {
        let a = DTerm { term: Term::Keyword(KeywordId(0)), radius: 5 };
        let b = DTerm { term: Term::Keyword(KeywordId(0)), radius: 9 };
        let mut table = SlotIdTable::new();
        assert_eq!(table.id_of(&a), 0);
        assert_eq!(table.id_of(&b), 1);
        assert_eq!(table.id_of(&a), 0, "repeat lookups are stable");
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn elide_round_trips_and_resolves_exactly() {
        use std::collections::{HashMap, HashSet};
        let plans = batch_of_plans();
        let sp = SuperPlan::merge(&plans);
        let mut table = SlotIdTable::new();
        // Cold coordinator view: everything ships full-spec.
        let cold = sp.try_elide(&mut table, &HashSet::new()).unwrap();
        assert_eq!(cold.num_elided(), 0);
        let mut dir = HashMap::new();
        let r = cold.resolve(&mut dir);
        assert!(r.unknown.is_empty());
        assert!(r.affected.iter().all(|&a| !a));
        assert_eq!(r.plan, sp);
        assert_eq!(r.plan.split(), plans);
        // Warm view: every id believed cached → every spec elided; the
        // directory the cold frame taught resolves them all.
        let believed: HashSet<u32> = cold.slot_ids().collect();
        let warm = sp.try_elide(&mut table, &believed).unwrap();
        assert_eq!(warm.num_elided(), sp.num_slots());
        let r2 = warm.resolve(&mut dir);
        assert!(r2.unknown.is_empty());
        assert_eq!(r2.plan, sp);
        // A fresh (respawned) directory NACKs every referenced id.
        let mut fresh = HashMap::new();
        let r3 = warm.resolve(&mut fresh);
        let mut want: Vec<u32> = believed.into_iter().collect();
        want.sort_unstable();
        assert_eq!(r3.unknown, want);
        assert!(r3.affected.iter().all(|&a| a));
    }

    #[test]
    fn partially_unknown_references_flag_only_touching_programs() {
        use std::collections::{HashMap, HashSet};
        let plans = batch_of_plans();
        let sp = SuperPlan::merge(&plans);
        let mut table = SlotIdTable::new();
        let all: HashSet<u32> =
            (0..sp.num_slots() as u32).map(|i| table.id_of(&sp.slots()[i as usize])).collect();
        let warm = sp.try_elide(&mut table, &all).unwrap();
        // Teach the directory all but the *last* shared slot (k2, radius 9 —
        // referenced only by the third query).
        let mut dir = HashMap::new();
        for (i, s) in sp.slots().iter().enumerate().take(sp.num_slots() - 1) {
            dir.insert(i as u32, *s);
        }
        let r = warm.resolve(&mut dir);
        assert_eq!(r.unknown, vec![(sp.num_slots() - 1) as u32]);
        assert_eq!(r.affected, vec![false, false, true]);
        // Unaffected programs split out bit-identical to the originals.
        let split = r.plan.split();
        assert_eq!(split[0], plans[0]);
        assert_eq!(split[1], plans[1]);
    }

    #[test]
    fn elided_codec_round_trips_and_shrinks_warm_frames() {
        use bytes::BytesMut;
        use std::collections::HashSet;
        let sp = SuperPlan::merge(&batch_of_plans());
        let mut table = SlotIdTable::new();
        let cold = sp.try_elide(&mut table, &HashSet::new()).unwrap();
        let believed: HashSet<u32> = cold.slot_ids().collect();
        let warm = sp.try_elide(&mut table, &believed).unwrap();
        for plan in [&cold, &warm] {
            let mut buf = BytesMut::new();
            plan.encode(&mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(&ElidedSuperPlan::decode(&mut bytes).unwrap(), plan);
            assert!(!bytes.has_remaining());
        }
        let len = |p: &dyn Fn(&mut BytesMut)| {
            let mut buf = BytesMut::new();
            p(&mut buf);
            buf.len()
        };
        let plain = len(&|b: &mut BytesMut| sp.encode(b));
        let cold_len = len(&|b: &mut BytesMut| cold.encode(b));
        let warm_len = len(&|b: &mut BytesMut| warm.encode(b));
        // Even the cold elided frame beats the plain frame (narrow program
        // fields); the warm frame drops the 13-byte specs too.
        assert!(cold_len < plain, "cold {cold_len} vs plain {plain}");
        assert!(warm_len < cold_len, "warm {warm_len} vs cold {cold_len}");
    }

    #[test]
    fn elided_decode_rejects_out_of_range_index_and_bad_tag() {
        use bytes::BytesMut;
        let bad = ElidedSuperPlan {
            slots: vec![ElidedSlot::Cached { id: 0 }],
            programs: vec![Program { first: 7, ops: Vec::new() }],
        };
        let mut buf = BytesMut::new();
        bad.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(matches!(
            ElidedSuperPlan::decode(&mut bytes),
            Err(DecodeError::LengthOutOfRange { context: "ElidedSuperPlan slot index", .. })
        ));
        // A slot tag outside {0, 1} is rejected.
        let mut buf = BytesMut::new();
        1u16.encode(&mut buf);
        9u8.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(matches!(
            ElidedSuperPlan::decode(&mut bytes),
            Err(DecodeError::BadTag { context: "ElidedSlot", tag: 9 })
        ));
    }

    #[test]
    fn super_plan_decode_rejects_out_of_range_index() {
        use bytes::BytesMut;
        let sp = SuperPlan {
            slots: vec![DTerm { term: Term::Keyword(KeywordId(0)), radius: 1 }],
            programs: vec![Program { first: 9, ops: Vec::new() }],
        };
        let mut buf = BytesMut::new();
        sp.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(matches!(
            SuperPlan::decode(&mut bytes),
            Err(DecodeError::LengthOutOfRange { context: "SuperPlan slot index", .. })
        ));
    }
}
