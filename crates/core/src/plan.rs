//! Query planning: lowering D-functions into normalized [`QueryPlan`]s.
//!
//! A plan is the coordinator-side, wire-shippable form of a query. It
//! separates *what must be computed* — the deduplicated `(term, radius)`
//! **slots**, each a keyword coverage `R(term, r) ∩ P` — from *how results
//! combine* — a left-associated operator **program** over slot indexes.
//!
//! Deduplication is what makes the slot the unit of caching: a Zipf-skewed
//! stream repeats the same `(keyword, radius)` pairs constantly, and a plan
//! referencing slot `#i` twice costs one Dijkstra, not two. Lemma 1 is
//! unaffected: the program is evaluated per fragment over local coverages,
//! and the union over fragments is taken by the coordinator exactly as for
//! the original D-function.

use bytes::{Buf, BufMut};

use disks_roadnet::codec::{Decode, Encode};
use disks_roadnet::DecodeError;

use crate::bitset::BitSet;
use crate::dfunc::{DFunction, DTerm, SetOp, Term};

/// A normalized query: deduplicated coverage slots plus a combine program.
///
/// Invariants (enforced by [`QueryPlan::lower`] and checked on decode):
/// `slots` is non-empty, every slot is referenced by the program, and every
/// program index is `< slots.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Distinct `(term, radius)` coverages, in first-occurrence order.
    slots: Vec<DTerm>,
    /// Slot index of the program's first operand `X₁`.
    first: u32,
    /// The operator chain `θ₁ X_{i₁} θ₂ X_{i₂} …` over slot indexes.
    ops: Vec<(SetOp, u32)>,
}

impl QueryPlan {
    /// Lower a D-function, deduplicating identical `(term, radius)` terms
    /// into shared slots.
    pub fn lower(f: &DFunction) -> Self {
        let mut slots: Vec<DTerm> = Vec::with_capacity(f.num_terms());
        let slot_of = |slots: &mut Vec<DTerm>, t: &DTerm| -> u32 {
            match slots.iter().position(|s| s == t) {
                Some(i) => i as u32,
                None => {
                    slots.push(*t);
                    (slots.len() - 1) as u32
                }
            }
        };
        let first = slot_of(&mut slots, &f.first);
        let ops = f.rest.iter().map(|(op, t)| (*op, slot_of(&mut slots, t))).collect();
        QueryPlan { slots, first, ops }
    }

    /// The deduplicated coverage slots, in first-occurrence order.
    pub fn slots(&self) -> &[DTerm] {
        &self.slots
    }

    /// Number of distinct coverages to compute (`≤` the D-function's term
    /// count).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of operands in the combine program (the D-function's `k`).
    pub fn num_operands(&self) -> usize {
        1 + self.ops.len()
    }

    /// Largest radius across slots (used for `maxR` admission and §5.5
    /// bi-level routing).
    pub fn max_radius(&self) -> u64 {
        self.slots.iter().map(|s| s.radius).max().unwrap_or(0)
    }

    /// Iterate the distinct query locations (`Term::Node` slots).
    pub fn locations(&self) -> impl Iterator<Item = disks_roadnet::NodeId> + '_ {
        self.slots.iter().filter_map(|s| match s.term {
            Term::Node(n) => Some(n),
            Term::Keyword(_) => None,
        })
    }

    /// Run the combine program over per-slot coverages. `coverages[i]` must
    /// be the coverage of `slots()[i]`; all bitsets must share a capacity.
    pub fn combine<C: std::ops::Deref<Target = BitSet>>(&self, coverages: &[C]) -> BitSet {
        assert_eq!(coverages.len(), self.slots.len(), "one coverage per slot required");
        let mut acc: BitSet = coverages[self.first as usize].clone();
        for &(op, slot) in &self.ops {
            let rhs = &*coverages[slot as usize];
            match op {
                SetOp::Union => acc.union_with(rhs),
                SetOp::Intersect => acc.intersect_with(rhs),
                SetOp::Subtract => acc.subtract(rhs),
            }
        }
        acc
    }
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.slots.iter().enumerate() {
            write!(f, "#{i}=R({}, {}); ", s.term, s.radius)?;
        }
        write!(f, "#{}", self.first)?;
        for (op, slot) in &self.ops {
            write!(f, " {op} #{slot}")?;
        }
        Ok(())
    }
}

impl Encode for QueryPlan {
    fn encode(&self, buf: &mut impl BufMut) {
        self.slots.encode(buf);
        self.first.encode(buf);
        self.ops.encode(buf);
    }
}
impl Decode for QueryPlan {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let slots = Vec::<DTerm>::decode(buf)?;
        if slots.is_empty() {
            return Err(DecodeError::LengthOutOfRange { context: "QueryPlan.slots", len: 0 });
        }
        let first = u32::decode(buf)?;
        let ops = Vec::<(SetOp, u32)>::decode(buf)?;
        let n = slots.len() as u64;
        for idx in std::iter::once(first).chain(ops.iter().map(|&(_, i)| i)) {
            if u64::from(idx) >= n {
                return Err(DecodeError::LengthOutOfRange {
                    context: "QueryPlan slot index",
                    len: u64::from(idx),
                });
            }
        }
        Ok(QueryPlan { slots, first, ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_roadnet::{KeywordId, NodeId};
    use std::sync::Arc;

    fn set(cap: usize, elems: &[usize]) -> Arc<BitSet> {
        let mut s = BitSet::new(cap);
        for &e in elems {
            s.insert(e);
        }
        Arc::new(s)
    }

    #[test]
    fn lowering_dedupes_repeated_terms() {
        // R(a, 5) ∩ R(b, 5) ∪ R(a, 5): three operands, two slots.
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 5)
            .then(SetOp::Intersect, Term::Keyword(KeywordId(1)), 5)
            .then(SetOp::Union, Term::Keyword(KeywordId(0)), 5);
        let plan = QueryPlan::lower(&f);
        assert_eq!(plan.num_slots(), 2);
        assert_eq!(plan.num_operands(), 3);
        assert_eq!(plan.ops, vec![(SetOp::Intersect, 1), (SetOp::Union, 0)]);
    }

    #[test]
    fn same_term_different_radius_gets_distinct_slots() {
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 5).then(
            SetOp::Union,
            Term::Keyword(KeywordId(0)),
            9,
        );
        let plan = QueryPlan::lower(&f);
        assert_eq!(plan.num_slots(), 2);
        assert_eq!(plan.max_radius(), 9);
    }

    #[test]
    fn combine_matches_dfunction_combine() {
        // (X1 − X2) ∪ X1: exercises a repeated operand through one slot.
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 3)
            .then(SetOp::Subtract, Term::Keyword(KeywordId(1)), 2)
            .then(SetOp::Union, Term::Keyword(KeywordId(0)), 3);
        let x1 = set(6, &[0, 1, 4]);
        let x2 = set(6, &[1, 2]);
        let expect = f.combine(&[(*x1).clone(), (*x2).clone(), (*x1).clone()]);
        let plan = QueryPlan::lower(&f);
        let got = plan.combine(&[x1, x2]);
        assert_eq!(got, expect);
    }

    #[test]
    fn locations_yields_node_slots() {
        let f = DFunction::single(Term::Node(NodeId(7)), 4).then(
            SetOp::Intersect,
            Term::Keyword(KeywordId(1)),
            0,
        );
        let plan = QueryPlan::lower(&f);
        assert_eq!(plan.locations().collect::<Vec<_>>(), vec![NodeId(7)]);
    }

    #[test]
    fn codec_round_trip() {
        use bytes::BytesMut;
        let f = DFunction::single(Term::Keyword(KeywordId(2)), 10)
            .then(SetOp::Union, Term::Node(NodeId(5)), 0)
            .then(SetOp::Subtract, Term::Keyword(KeywordId(2)), 10);
        let plan = QueryPlan::lower(&f);
        let mut buf = BytesMut::new();
        plan.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(QueryPlan::decode(&mut bytes).unwrap(), plan);
    }

    #[test]
    fn decode_rejects_out_of_range_slot_index() {
        use bytes::BytesMut;
        let plan = QueryPlan {
            slots: vec![DTerm { term: Term::Keyword(KeywordId(0)), radius: 1 }],
            first: 3, // invalid: only one slot
            ops: Vec::new(),
        };
        let mut buf = BytesMut::new();
        plan.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(matches!(
            QueryPlan::decode(&mut bytes),
            Err(DecodeError::LengthOutOfRange { context: "QueryPlan slot index", .. })
        ));
    }

    #[test]
    fn decode_rejects_empty_plan() {
        use bytes::BytesMut;
        let plan = QueryPlan { slots: Vec::new(), first: 0, ops: Vec::new() };
        let mut buf = BytesMut::new();
        plan.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(QueryPlan::decode(&mut bytes).is_err());
    }
}
