//! Keyword coverage terms and **D-functions** (§3.1).
//!
//! A D-function is a left-associated chain
//! `F(X₁,…,X_k) = X₁ θ₁ X₂ θ₂ … θ_{k-1} X_k` where each `Xᵢ` is a keyword
//! coverage `R(termᵢ, rᵢ)` and each `θᵢ ∈ {∪, ∩, −}`. Lemma 1 shows `F`
//! distributes over fragments: `F(X₁,…) = ⋃ᵢ F(X₁ ∩ Uᵢ, …)` — the basis of
//! zero-communication distributed evaluation.

use bytes::{Buf, BufMut};

use disks_roadnet::codec::{Decode, Encode};
use disks_roadnet::{DecodeError, KeywordId, NodeId};

use crate::bitset::BitSet;

/// A set operator `θ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOp {
    Union,
    Intersect,
    Subtract,
}

impl std::fmt::Display for SetOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetOp::Union => write!(f, "∪"),
            SetOp::Intersect => write!(f, "∩"),
            SetOp::Subtract => write!(f, "−"),
        }
    }
}

impl Encode for SetOp {
    fn encode(&self, buf: &mut impl BufMut) {
        let tag: u8 = match self {
            SetOp::Union => 0,
            SetOp::Intersect => 1,
            SetOp::Subtract => 2,
        };
        tag.encode(buf);
    }
}
impl Decode for SetOp {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(SetOp::Union),
            1 => Ok(SetOp::Intersect),
            2 => Ok(SetOp::Subtract),
            tag => Err(DecodeError::BadTag { context: "SetOp", tag }),
        }
    }
}

/// What a coverage is computed *from*: a keyword, or a node id treated as a
/// keyword (§3.1 uses node-id terms to express RKQ query locations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    Keyword(KeywordId),
    Node(NodeId),
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Term::Keyword(k) => write!(f, "{k}"),
            Term::Node(n) => write!(f, "{n}"),
        }
    }
}

impl Encode for Term {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Term::Keyword(k) => {
                0u8.encode(buf);
                k.encode(buf);
            }
            Term::Node(n) => {
                1u8.encode(buf);
                n.encode(buf);
            }
        }
    }
}
impl Decode for Term {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Term::Keyword(KeywordId::decode(buf)?)),
            1 => Ok(Term::Node(NodeId::decode(buf)?)),
            tag => Err(DecodeError::BadTag { context: "Term", tag }),
        }
    }
}

/// One coverage variable `Xᵢ = R(term, radius)` of a D-function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DTerm {
    pub term: Term,
    pub radius: u64,
}

impl Encode for DTerm {
    fn encode(&self, buf: &mut impl BufMut) {
        self.term.encode(buf);
        self.radius.encode(buf);
    }
}
impl Decode for DTerm {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(DTerm { term: Term::decode(buf)?, radius: u64::decode(buf)? })
    }
}

/// A D-function: `first θ₁ rest[0] θ₂ rest[1] …`, evaluated left to right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DFunction {
    pub first: DTerm,
    pub rest: Vec<(SetOp, DTerm)>,
}

impl DFunction {
    /// A single-term function `R(term, radius)`.
    pub fn single(term: Term, radius: u64) -> Self {
        DFunction { first: DTerm { term, radius }, rest: Vec::new() }
    }

    /// Chain another coverage onto the function.
    pub fn then(mut self, op: SetOp, term: Term, radius: u64) -> Self {
        self.rest.push((op, DTerm { term, radius }));
        self
    }

    /// The intersection of equal-radius keyword coverages — the plain SGKQ
    /// lowering `⋂ᵢ R(ωᵢ, r)`.
    pub fn intersection_of(keywords: &[KeywordId], radius: u64) -> Self {
        assert!(!keywords.is_empty(), "at least one keyword required");
        let mut f = DFunction::single(Term::Keyword(keywords[0]), radius);
        for &k in &keywords[1..] {
            f = f.then(SetOp::Intersect, Term::Keyword(k), radius);
        }
        f
    }

    /// All terms, in order.
    pub fn terms(&self) -> impl Iterator<Item = &DTerm> {
        std::iter::once(&self.first).chain(self.rest.iter().map(|(_, t)| t))
    }

    /// Number of coverage variables `k`.
    pub fn num_terms(&self) -> usize {
        1 + self.rest.len()
    }

    /// Largest radius across terms (used for `maxR` routing, §5.5).
    pub fn max_radius(&self) -> u64 {
        self.terms().map(|t| t.radius).max().unwrap_or(0)
    }

    /// Evaluate the operator chain over already-computed coverages, in term
    /// order. `coverages.len()` must equal `num_terms()` and all bitsets
    /// must share a capacity.
    pub fn combine(&self, coverages: &[BitSet]) -> BitSet {
        assert_eq!(coverages.len(), self.num_terms(), "one coverage per term required");
        let mut acc = coverages[0].clone();
        for (i, (op, _)) in self.rest.iter().enumerate() {
            let rhs = &coverages[i + 1];
            match op {
                SetOp::Union => acc.union_with(rhs),
                SetOp::Intersect => {
                    acc.intersect_with(rhs);
                }
                SetOp::Subtract => {
                    acc.subtract(rhs);
                }
            }
        }
        acc
    }
}

impl std::fmt::Display for DFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R({}, {})", self.first.term, self.first.radius)?;
        for (op, t) in &self.rest {
            write!(f, " {op} R({}, {})", t.term, t.radius)?;
        }
        Ok(())
    }
}

impl Encode for DFunction {
    fn encode(&self, buf: &mut impl BufMut) {
        self.first.encode(buf);
        self.rest.encode(buf);
    }
}
impl Decode for DFunction {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(DFunction { first: DTerm::decode(buf)?, rest: Vec::<(SetOp, DTerm)>::decode(buf)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(cap: usize, elems: &[usize]) -> BitSet {
        let mut s = BitSet::new(cap);
        for &e in elems {
            s.insert(e);
        }
        s
    }

    #[test]
    fn combine_left_associates() {
        // (X1 ∪ X2) ∩ X3 with X1={0}, X2={1,2}, X3={2,3} → {2}
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 1)
            .then(SetOp::Union, Term::Keyword(KeywordId(1)), 1)
            .then(SetOp::Intersect, Term::Keyword(KeywordId(2)), 1);
        let out = f.combine(&[set(5, &[0]), set(5, &[1, 2]), set(5, &[2, 3])]);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn subtraction_expresses_far_away_queries() {
        // Paper Q2: R(mall, 0) − R(pizza, 1km).
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 0).then(
            SetOp::Subtract,
            Term::Keyword(KeywordId(1)),
            1000,
        );
        let out = f.combine(&[set(4, &[0, 1, 2]), set(4, &[1])]);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(f.max_radius(), 1000);
    }

    #[test]
    fn intersection_of_builds_sgkq_chain() {
        let ks = [KeywordId(3), KeywordId(1), KeywordId(4)];
        let f = DFunction::intersection_of(&ks, 7);
        assert_eq!(f.num_terms(), 3);
        assert!(f.rest.iter().all(|(op, _)| *op == SetOp::Intersect));
        assert!(f.terms().all(|t| t.radius == 7));
    }

    #[test]
    fn lemma1_distributivity_on_explicit_sets() {
        // Paper Example 4: U = {A..E}=0..5, U1={0,1}, U2={2,3,4},
        // X1={0,1,2,3}, X2={1,2,3,4}, F = X1 ∩ X2.
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 1).then(
            SetOp::Intersect,
            Term::Keyword(KeywordId(1)),
            1,
        );
        let x1 = set(5, &[0, 1, 2, 3]);
        let x2 = set(5, &[1, 2, 3, 4]);
        let whole = f.combine(&[x1.clone(), x2.clone()]);

        let u1 = set(5, &[0, 1]);
        let u2 = set(5, &[2, 3, 4]);
        let mut per_fragment = BitSet::new(5);
        for u in [&u1, &u2] {
            let mut x1f = x1.clone();
            x1f.intersect_with(u);
            let mut x2f = x2.clone();
            x2f.intersect_with(u);
            per_fragment.union_with(&f.combine(&[x1f, x2f]));
        }
        assert_eq!(whole, per_fragment);
        assert_eq!(whole.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn display_is_readable() {
        let f = DFunction::single(Term::Keyword(KeywordId(0)), 3).then(
            SetOp::Subtract,
            Term::Node(NodeId(9)),
            5,
        );
        assert_eq!(f.to_string(), "R(kw#0, 3) − R(n9, 5)");
    }

    #[test]
    fn codec_round_trip() {
        use bytes::BytesMut;
        let f = DFunction::single(Term::Keyword(KeywordId(2)), 10)
            .then(SetOp::Union, Term::Node(NodeId(5)), 0)
            .then(SetOp::Subtract, Term::Keyword(KeywordId(7)), 99);
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(DFunction::decode(&mut bytes).unwrap(), f);
    }

    #[test]
    #[should_panic(expected = "one coverage per term")]
    fn combine_arity_mismatch_panics() {
        let f = DFunction::intersection_of(&[KeywordId(0), KeywordId(1)], 1);
        let _ = f.combine(&[set(3, &[0])]);
    }
}
