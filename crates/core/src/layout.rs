//! The workload-aware layout switch (DESIGN.md §6i).
//!
//! `DISKS_LAYOUT` selects between the two layout regimes:
//!
//! * `static` (the default, and any unrecognized value) — every layout
//!   decision is made exactly as before this knob existed: the bi-level
//!   split comes from the static [`IndexConfig`](crate::IndexConfig),
//!   cache admission is plain LRU, placement heat defaults to uniform.
//!   This path is bit-identical to the pre-layout system.
//! * `workload` — consumers that hold a
//!   [`LayoutProfile`](disks_partition::LayoutProfile) feed it into their
//!   layout decisions (observed-radius bi-level split, heat-aware cache
//!   admission via its default threshold, profile-seeded placement).
//!
//! The mode is read per decision point rather than cached globally so
//! tests and the bench harness can flip it between cluster builds.

/// Which layout regime the process runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutMode {
    /// Data-only layout, bit-identical to the historical behaviour.
    #[default]
    Static,
    /// Query-log-driven layout.
    Workload,
}

impl LayoutMode {
    /// Parse `DISKS_LAYOUT`: `workload` (any case) selects
    /// [`LayoutMode::Workload`]; `static`, unset, or anything else is
    /// [`LayoutMode::Static`].
    pub fn from_env() -> Self {
        match std::env::var("DISKS_LAYOUT") {
            Ok(v) if v.eq_ignore_ascii_case("workload") => LayoutMode::Workload,
            _ => LayoutMode::Static,
        }
    }

    pub fn is_workload(self) -> bool {
        self == LayoutMode::Workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_static() {
        // The test environment leaves DISKS_LAYOUT unset (the CI workload
        // lane runs the whole suite with it set, exercising the other arm).
        if std::env::var("DISKS_LAYOUT").is_err() {
            assert_eq!(LayoutMode::from_env(), LayoutMode::Static);
            assert!(!LayoutMode::from_env().is_workload());
        }
    }
}
