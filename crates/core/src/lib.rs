//! # The NPD-index and query engine — the paper's primary contribution.
//!
//! This crate implements Sections 3–5 of *"Distributed Spatial Keyword
//! Querying on Road Networks"* (EDBT 2014):
//!
//! * [`dfunc`] — the *keyword coverage* operation `R(ω, r)` and
//!   **D-functions** `F(X₁,…,X_k) = X₁ θ₁ … θ_{k-1} X_k` over coverages
//!   (θ ∈ {∪, ∩, −}), including Lemma 1 (distributed evaluation).
//! * [`query`] — Spatial Group Keyword Queries (SGKQ), Range Keyword Queries
//!   (RKQ), and the generalized Q-class (Definition 8), each lowered to a
//!   D-function.
//! * [`index`] — the **NPD-index** per fragment: the `SC` shortcut component
//!   (Rules 1/3, Theorems 1–2) and the `DL` distance-list component
//!   (Rules 2/4, Theorems 3–4), built with the backward portal-source search
//!   of Algorithm 1, with `maxR` pruning (§3.7) and persistence.
//! * [`plan`] — normalized query plans: deduplicated `(term, radius)`
//!   coverage slots plus a combine program over slot indexes, the unit the
//!   coordinator admits/ships and the cluster layer caches.
//! * [`engine`] — the per-fragment query engine of Algorithm 2: extended
//!   fragment construction and per-term coverage Dijkstra, instrumented with
//!   the Theorem 5 cost model.
//! * [`coverage`] — centralized whole-graph evaluation used as ground truth
//!   and as the "1 fragment" baseline.
//! * [`bilevel`] — the §5.5 bi-level index that routes queries with
//!   `r > maxR` to an unbounded secondary index.

pub mod bilevel;
pub mod bitset;
pub mod coverage;
pub mod dfunc;
pub mod directed;
pub mod engine;
pub mod error;
pub mod index;
pub mod layout;
pub mod plan;
pub mod query;
pub mod topk;

pub use bilevel::{observed_split, BiLevelIndex};
pub use coverage::CentralizedCoverage;
pub use dfunc::{DFunction, DTerm, SetOp, Term};
pub use directed::{
    build_directed_index, directed_sgkq_centralized, directed_sgkq_distributed,
    DirectedFragmentEngine, DirectedNpdIndex, DirectedPartition,
};
pub use engine::{CoverageStore, FragmentEngine, NoCache, QueryCost, SlotCost};
pub use error::{IndexError, QueryError};
pub use index::{
    build_all_indexes, build_index, build_index_with_threads, build_naive_index, DlScope,
    IndexConfig, IndexStats, NpdIndex,
};
pub use layout::LayoutMode;
pub use plan::{
    CostParams, ElidedSlot, ElidedSuperPlan, QueryPlan, ResolvedBatch, SlotIdTable, SuperPlan,
};
pub use query::{QClassQuery, RangeKeywordQuery, SgkQuery};
pub use topk::{centralized_topk, merge_topk, Ranked, ScoreCombine, TopKQuery};
