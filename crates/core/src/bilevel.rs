//! The §5.5 bi-level index.
//!
//! `maxR` caps the radii a bounded index can serve. For the rare query with
//! `r > maxR` the paper proposes holding **two** indexes per machine: a
//! bounded primary (small, serves most queries) and an unbounded secondary.
//! [`BiLevelIndex`] wraps two [`FragmentEngine`]s and routes each D-function
//! by its largest radius.

use disks_partition::{FragmentId, LayoutProfile, Partitioning};
use disks_roadnet::{NodeId, RoadNetwork, INF};

use crate::dfunc::DFunction;
use crate::engine::{CoverageStore, FragmentEngine, NoCache, QueryCost};
use crate::error::{IndexError, QueryError};
use crate::index::{build_index, IndexConfig, NpdIndex};
use crate::plan::QueryPlan;

/// Quantile of the observed radius distribution the workload-aware split
/// sizes the primary for: the primary admits (at least) this share of the
/// observed query weight, the unbounded secondary absorbs the tail.
pub const SPLIT_QUANTILE: f64 = 0.90;

/// The workload-aware primary `maxR` (DESIGN.md §6i): the smallest observed
/// radius covering [`SPLIT_QUANTILE`] of the profile's query weight,
/// clamped to `[1, static_max_r]` — the observed split only ever *shrinks*
/// the primary relative to the static configuration, and an empty profile
/// falls back to the static value.
pub fn observed_split(profile: &LayoutProfile, static_max_r: u64) -> u64 {
    match profile.radius_quantile(SPLIT_QUANTILE) {
        Some(r) => r.clamp(1, static_max_r),
        None => static_max_r,
    }
}

/// Which level served a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The bounded (`maxR`) primary index.
    Primary,
    /// The unbounded secondary index.
    Secondary,
}

/// A bounded primary + unbounded secondary engine pair for one fragment.
pub struct BiLevelIndex {
    primary: FragmentEngine,
    secondary: FragmentEngine,
    max_r: u64,
}

impl BiLevelIndex {
    /// Build both indexes for `fragment` and wrap them in engines.
    pub fn build(
        net: &RoadNetwork,
        partitioning: &Partitioning,
        fragment: FragmentId,
        config: &IndexConfig,
    ) -> Result<Self, IndexError> {
        assert!(config.max_r != INF, "bi-level needs a finite primary maxR");
        let primary_idx = build_index(net, partitioning, fragment, config);
        let secondary_cfg = IndexConfig { max_r: INF, ..*config };
        let secondary_idx = build_index(net, partitioning, fragment, &secondary_cfg);
        Self::from_indexes(net, partitioning, &primary_idx, &secondary_idx)
    }

    /// Workload-aware build: the primary's `maxR` is the
    /// [`observed_split`] of `profile`'s radius distribution instead of
    /// the static `config.max_r` (which remains the upper clamp and the
    /// fallback for an empty profile). The routing threshold still serves
    /// every admitted radius exactly, so results are identical to the
    /// static build — only which level answers, and the primary's size,
    /// change.
    pub fn build_with_profile(
        net: &RoadNetwork,
        partitioning: &Partitioning,
        fragment: FragmentId,
        config: &IndexConfig,
        profile: &LayoutProfile,
    ) -> Result<Self, IndexError> {
        let cfg = IndexConfig { max_r: observed_split(profile, config.max_r), ..*config };
        Self::build(net, partitioning, fragment, &cfg)
    }

    /// Mode-dispatched build: `DISKS_LAYOUT=workload` routes to
    /// [`Self::build_with_profile`], while the default `static` mode calls
    /// [`Self::build`] with `config` untouched — bit-identical to the
    /// pre-layout behaviour.
    pub fn build_auto(
        net: &RoadNetwork,
        partitioning: &Partitioning,
        fragment: FragmentId,
        config: &IndexConfig,
        profile: &LayoutProfile,
    ) -> Result<Self, IndexError> {
        if crate::layout::LayoutMode::from_env().is_workload() {
            Self::build_with_profile(net, partitioning, fragment, config, profile)
        } else {
            Self::build(net, partitioning, fragment, config)
        }
    }

    /// Wrap pre-built indexes (primary bounded, secondary unbounded).
    pub fn from_indexes(
        net: &RoadNetwork,
        partitioning: &Partitioning,
        primary: &NpdIndex,
        secondary: &NpdIndex,
    ) -> Result<Self, IndexError> {
        assert_eq!(primary.fragment(), secondary.fragment(), "fragment mismatch");
        assert_eq!(secondary.max_r(), INF, "secondary must be unbounded");
        Ok(BiLevelIndex {
            max_r: primary.max_r(),
            primary: FragmentEngine::new(net, partitioning, primary)?,
            secondary: FragmentEngine::new(net, partitioning, secondary)?,
        })
    }

    /// The primary's `maxR` routing threshold.
    pub fn max_r(&self) -> u64 {
        self.max_r
    }

    /// The fragment both engines serve.
    pub fn fragment(&self) -> FragmentId {
        self.primary.fragment()
    }

    /// DL scope shared by both engines.
    pub fn dl_scope(&self) -> crate::index::DlScope {
        self.primary.dl_scope()
    }

    /// Top-k, routed by the query horizon (§5.5 routing applies to any
    /// radius-bounded computation).
    pub fn topk_local(
        &mut self,
        q: &crate::topk::TopKQuery,
    ) -> Result<(Vec<crate::topk::Ranked>, QueryCost), QueryError> {
        if q.horizon <= self.max_r {
            self.primary.topk_local(q)
        } else {
            self.secondary.topk_local(q)
        }
    }

    /// Evaluate, routing by the query's largest radius.
    pub fn evaluate(
        &mut self,
        f: &DFunction,
    ) -> Result<(Vec<NodeId>, QueryCost, ServedBy), QueryError> {
        let plan = QueryPlan::lower(f);
        let (r, c) = self.evaluate_plan_with_cache(&plan, &mut NoCache)?;
        let served =
            if plan.max_radius() <= self.max_r { ServedBy::Primary } else { ServedBy::Secondary };
        Ok((r, c, served))
    }

    /// The engine that would serve a plan with the given max radius (§5.5
    /// routing). Coverage is exact on either level for any radius it
    /// admits, so cache entries keyed only by `(term, radius)` stay valid
    /// across levels.
    pub fn engine_for(&mut self, max_radius: u64) -> &mut FragmentEngine {
        if max_radius <= self.max_r {
            &mut self.primary
        } else {
            &mut self.secondary
        }
    }

    /// Immutable-routing twin of [`Self::engine_for`], for read-only slot
    /// evaluation (the worker pool shares the routed engine across threads).
    pub fn engine_for_ref(&self, max_radius: u64) -> &FragmentEngine {
        if max_radius <= self.max_r {
            &self.primary
        } else {
            &self.secondary
        }
    }

    /// Evaluate a normalized plan, routing by its max radius and consulting
    /// `store` per coverage slot.
    pub fn evaluate_plan_with_cache(
        &mut self,
        plan: &QueryPlan,
        store: &mut dyn CoverageStore,
    ) -> Result<(Vec<NodeId>, QueryCost), QueryError> {
        self.engine_for(plan.max_radius()).evaluate_plan_with_cache(plan, store)
    }

    /// [`FragmentEngine::evaluate_plan_prefetched`] routed by max radius —
    /// the commit half of the worker pool's two-phase batch protocol.
    pub fn evaluate_plan_prefetched(
        &mut self,
        plan: &QueryPlan,
        store: &mut dyn CoverageStore,
        prefetched: &std::collections::HashMap<
            (crate::dfunc::Term, u64),
            (std::sync::Arc<crate::bitset::BitSet>, QueryCost),
        >,
    ) -> Result<(Vec<NodeId>, QueryCost), QueryError> {
        self.engine_for(plan.max_radius()).evaluate_plan_prefetched(plan, store, prefetched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CentralizedCoverage;
    use crate::dfunc::Term;
    use disks_partition::{MultilevelPartitioner, Partitioner};
    use disks_roadnet::generator::GridNetworkConfig;
    use disks_roadnet::KeywordId;

    fn top_keyword(net: &RoadNetwork) -> KeywordId {
        let freqs = net.keyword_frequencies();
        KeywordId((0..freqs.len()).max_by_key(|&k| freqs[k]).unwrap() as u32)
    }

    #[test]
    fn routes_small_radii_to_primary_and_large_to_secondary() {
        let net = GridNetworkConfig::tiny(50).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let e = net.avg_edge_weight();
        let cfg = IndexConfig::with_max_r(4 * e);
        let kw = top_keyword(&net);
        let mut central = CentralizedCoverage::new(&net);

        let mut got_small: Vec<NodeId> = Vec::new();
        let mut got_large: Vec<NodeId> = Vec::new();
        for f in p.fragment_ids() {
            let mut bi = BiLevelIndex::build(&net, &p, f, &cfg).unwrap();
            let small = DFunction::single(Term::Keyword(kw), 2 * e);
            let (r, _, served) = bi.evaluate(&small).unwrap();
            assert_eq!(served, ServedBy::Primary);
            got_small.extend(r);
            let large = DFunction::single(Term::Keyword(kw), 20 * e);
            let (r, _, served) = bi.evaluate(&large).unwrap();
            assert_eq!(served, ServedBy::Secondary);
            got_large.extend(r);
        }
        got_small.sort_unstable();
        got_large.sort_unstable();
        assert_eq!(
            got_small,
            central.evaluate(&DFunction::single(Term::Keyword(kw), 2 * e)).unwrap()
        );
        assert_eq!(
            got_large,
            central.evaluate(&DFunction::single(Term::Keyword(kw), 20 * e)).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "finite primary maxR")]
    fn unbounded_primary_rejected() {
        let net = GridNetworkConfig::tiny(51).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let _ = BiLevelIndex::build(&net, &p, FragmentId(0), &IndexConfig::unbounded());
    }

    #[test]
    fn observed_split_follows_the_radius_quantile() {
        let mut profile = LayoutProfile::new();
        assert_eq!(observed_split(&profile, 500), 500, "empty profile → static cap");
        // 90 queries at r=40, 10 at r=400: the 0.9 quantile is 40.
        profile.record_radius(40, 90);
        profile.record_radius(400, 10);
        assert_eq!(observed_split(&profile, 500), 40);
        // The static config stays an upper clamp.
        assert_eq!(observed_split(&profile, 25), 25);
        // A tail-heavy profile keeps a large primary.
        let mut tail = LayoutProfile::new();
        tail.record_radius(400, 100);
        assert_eq!(observed_split(&tail, 500), 400);
    }

    #[test]
    fn profile_build_shrinks_the_primary_without_changing_answers() {
        let net = GridNetworkConfig::tiny(53).generate();
        let p = MultilevelPartitioner::default().partition(&net, 3);
        let e = net.avg_edge_weight();
        let cfg = IndexConfig::with_max_r(20 * e);
        let kw = top_keyword(&net);
        // Observed workload: almost everything at 2e, a sliver at 20e.
        let mut profile = LayoutProfile::new();
        profile.record_radius(2 * e, 95);
        profile.record_radius(20 * e, 5);
        let mut central = CentralizedCoverage::new(&net);
        let mut got: Vec<NodeId> = Vec::new();
        for f in p.fragment_ids() {
            let mut bi = BiLevelIndex::build_with_profile(&net, &p, f, &cfg, &profile).unwrap();
            assert_eq!(bi.max_r(), 2 * e, "split picked from the observed distribution");
            // A radius beyond the observed split now routes to the
            // secondary — and the answer is still exact.
            let q = DFunction::single(Term::Keyword(kw), 4 * e);
            let (r, _, served) = bi.evaluate(&q).unwrap();
            assert_eq!(served, ServedBy::Secondary);
            got.extend(r);
        }
        got.sort_unstable();
        assert_eq!(got, central.evaluate(&DFunction::single(Term::Keyword(kw), 4 * e)).unwrap());
    }

    #[test]
    fn auto_build_defaults_to_the_static_split() {
        if std::env::var("DISKS_LAYOUT").is_ok_and(|v| v.eq_ignore_ascii_case("workload")) {
            return; // the CI workload lane exercises the other arm
        }
        let net = GridNetworkConfig::tiny(54).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let e = net.avg_edge_weight();
        let cfg = IndexConfig::with_max_r(10 * e);
        let mut profile = LayoutProfile::new();
        profile.record_radius(e, 100);
        let bi = BiLevelIndex::build_auto(&net, &p, FragmentId(0), &cfg, &profile).unwrap();
        assert_eq!(bi.max_r(), 10 * e, "static mode ignores the profile");
    }

    #[test]
    fn boundary_radius_goes_to_primary() {
        let net = GridNetworkConfig::tiny(52).generate();
        let p = MultilevelPartitioner::default().partition(&net, 2);
        let e = net.avg_edge_weight();
        let cfg = IndexConfig::with_max_r(3 * e);
        let kw = top_keyword(&net);
        let mut bi = BiLevelIndex::build(&net, &p, FragmentId(0), &cfg).unwrap();
        let f = DFunction::single(Term::Keyword(kw), 3 * e);
        let (_, _, served) = bi.evaluate(&f).unwrap();
        assert_eq!(served, ServedBy::Primary);
    }
}
