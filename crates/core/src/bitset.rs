//! Fixed-capacity bitset used for per-fragment coverage sets.
//!
//! Coverages are dense subsets of a fragment's (local) node ids; the
//! D-function operators ∪, ∩, − become word-wise `|`, `&`, `& !` — the
//! trivial "second step" of the paper's two-step framework.

/// A fixed-capacity bitset over `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Capacity (number of addressable elements).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Resident bytes of the backing storage (used for cache accounting).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.len() * 8
    }

    /// Insert `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity()`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bitset index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union. Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection. Panics on capacity mismatch.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place subtraction (`self − other`). Panics on capacity mismatch.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterate set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn set_operations_match_semantics() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        for i in [1, 3, 5, 7] {
            a.insert(i);
        }
        for i in [3, 4, 5, 6] {
            b.insert(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5, 6, 7]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 5]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_capacities_panic() {
        let mut a = BitSet::new(4);
        let b = BitSet::new(5);
        a.union_with(&b);
    }

    #[test]
    fn empty_capacity_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }
}
