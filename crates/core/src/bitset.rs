//! Fixed-capacity bitset used for per-fragment coverage sets.
//!
//! Coverages are dense subsets of a fragment's (local) node ids; the
//! D-function operators ∪, ∩, − become word-wise `|`, `&`, `& !` — the
//! trivial "second step" of the paper's two-step framework.
//!
//! The word loops live in [`kernels`] so the combine stage of both the
//! single-query and the batched dispatch paths share one implementation,
//! and so they can be tested directly against per-bit references.

/// Word-level kernels over raw `u64` slices — the hot loops of the combine
/// stage, unrolled four words at a time. All kernels require equal-length
/// slices; the in-place ∩ and − kernels report whether any bit survives so
/// callers can short-circuit dead operator chains without a second pass.
pub mod kernels {
    /// `dst |= src`, word-wise.
    pub fn or_into(dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "word slice length mismatch");
        let mut d = dst.chunks_exact_mut(4);
        let mut s = src.chunks_exact(4);
        for (dw, sw) in (&mut d).zip(&mut s) {
            dw[0] |= sw[0];
            dw[1] |= sw[1];
            dw[2] |= sw[2];
            dw[3] |= sw[3];
        }
        for (a, &b) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *a |= b;
        }
    }

    /// `dst &= src`, word-wise. Returns `true` if any bit survives.
    pub fn and_into(dst: &mut [u64], src: &[u64]) -> bool {
        assert_eq!(dst.len(), src.len(), "word slice length mismatch");
        let mut live = 0u64;
        let mut d = dst.chunks_exact_mut(4);
        let mut s = src.chunks_exact(4);
        for (dw, sw) in (&mut d).zip(&mut s) {
            dw[0] &= sw[0];
            dw[1] &= sw[1];
            dw[2] &= sw[2];
            dw[3] &= sw[3];
            live |= dw[0] | dw[1] | dw[2] | dw[3];
        }
        for (a, &b) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *a &= b;
            live |= *a;
        }
        live != 0
    }

    /// `dst &= !src` (subtraction), word-wise. Returns `true` if any bit
    /// survives.
    pub fn andnot_into(dst: &mut [u64], src: &[u64]) -> bool {
        assert_eq!(dst.len(), src.len(), "word slice length mismatch");
        let mut live = 0u64;
        let mut d = dst.chunks_exact_mut(4);
        let mut s = src.chunks_exact(4);
        for (dw, sw) in (&mut d).zip(&mut s) {
            dw[0] &= !sw[0];
            dw[1] &= !sw[1];
            dw[2] &= !sw[2];
            dw[3] &= !sw[3];
            live |= dw[0] | dw[1] | dw[2] | dw[3];
        }
        for (a, &b) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *a &= !b;
            live |= *a;
        }
        live != 0
    }

    /// Whether `a ∩ b` is non-empty, short-circuiting on the first
    /// intersecting chunk.
    pub fn intersects(a: &[u64], b: &[u64]) -> bool {
        assert_eq!(a.len(), b.len(), "word slice length mismatch");
        let mut ac = a.chunks_exact(4);
        let mut bc = b.chunks_exact(4);
        for (aw, bw) in (&mut ac).zip(&mut bc) {
            if (aw[0] & bw[0]) | (aw[1] & bw[1]) | (aw[2] & bw[2]) | (aw[3] & bw[3]) != 0 {
                return true;
            }
        }
        ac.remainder().iter().zip(bc.remainder()).any(|(&x, &y)| x & y != 0)
    }

    /// Number of set bits.
    pub fn popcount(a: &[u64]) -> usize {
        a.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set, short-circuiting.
    pub fn any(a: &[u64]) -> bool {
        a.iter().any(|&w| w != 0)
    }
}

/// A fixed-capacity bitset over `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Capacity (number of addressable elements).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Resident bytes of the backing storage (used for cache accounting).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.len() * 8
    }

    /// Insert `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity()`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bitset index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        kernels::popcount(&self.words)
    }

    pub fn is_empty(&self) -> bool {
        !kernels::any(&self.words)
    }

    /// In-place union. Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        kernels::or_into(&mut self.words, &other.words);
    }

    /// In-place intersection. Returns `true` if any element survives.
    /// Panics on capacity mismatch.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        kernels::and_into(&mut self.words, &other.words)
    }

    /// In-place subtraction (`self − other`). Returns `true` if any element
    /// survives. Panics on capacity mismatch.
    pub fn subtract(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        kernels::andnot_into(&mut self.words, &other.words)
    }

    /// Whether `self ∩ other` is non-empty, without materializing the
    /// intersection. Panics on capacity mismatch.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        kernels::intersects(&self.words, &other.words)
    }

    /// Iterate set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn set_operations_match_semantics() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        for i in [1, 3, 5, 7] {
            a.insert(i);
        }
        for i in [3, 4, 5, 6] {
            b.insert(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5, 6, 7]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 5]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_capacities_panic() {
        let mut a = BitSet::new(4);
        let b = BitSet::new(5);
        a.union_with(&b);
    }

    #[test]
    fn empty_capacity_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn intersects_matches_materialized_intersection() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        a.insert(3);
        a.insert(150);
        b.insert(150);
        assert!(a.intersects(&b));
        let mut c = BitSet::new(200);
        c.insert(151);
        assert!(!a.intersects(&c));
        assert!(!BitSet::new(200).intersects(&a));
    }
}

/// The kernels verified against naive per-bit references over random word
/// slices — empty, full, and unaligned-tail lengths included (lengths that
/// are not multiples of the 4-word unroll exercise the remainder loops).
#[cfg(test)]
mod kernel_proptests {
    use super::kernels;
    use proptest::prelude::*;

    /// Deterministic word patterns from a seed: mixes empty, full, and
    /// pseudo-random words so boundary patterns appear often.
    fn words_from_seed(mut seed: u64, len: usize) -> Vec<u64> {
        (0..len)
            .map(|_| {
                // splitmix64 step
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                match z % 4 {
                    0 => 0,
                    1 => u64::MAX,
                    _ => z,
                }
            })
            .collect()
    }

    fn bit(words: &[u64], i: usize) -> bool {
        words[i / 64] & (1u64 << (i % 64)) != 0
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Lengths 0..=9 cover the empty slice, sub-unroll slices, exact
        // multiples of the 4-word unroll, and unaligned tails.
        #[test]
        fn kernels_match_per_bit_references(seed in 0u64..10_000, len in 0usize..10) {
            let a = words_from_seed(seed, len);
            let b = words_from_seed(seed ^ 0xDEAD_BEEF, len);

            let mut or = a.clone();
            kernels::or_into(&mut or, &b);
            let mut and = a.clone();
            let and_live = kernels::and_into(&mut and, &b);
            let mut sub = a.clone();
            let sub_live = kernels::andnot_into(&mut sub, &b);

            for i in 0..len * 64 {
                prop_assert_eq!(bit(&or, i), bit(&a, i) | bit(&b, i));
                prop_assert_eq!(bit(&and, i), bit(&a, i) & bit(&b, i));
                prop_assert_eq!(bit(&sub, i), bit(&a, i) & !bit(&b, i));
            }
            prop_assert_eq!(and_live, (0..len * 64).any(|i| bit(&and, i)));
            prop_assert_eq!(sub_live, (0..len * 64).any(|i| bit(&sub, i)));
            prop_assert_eq!(
                kernels::intersects(&a, &b),
                (0..len * 64).any(|i| bit(&a, i) && bit(&b, i))
            );
            prop_assert_eq!(kernels::popcount(&a), (0..len * 64).filter(|&i| bit(&a, i)).count());
            prop_assert_eq!(kernels::any(&a), (0..len * 64).any(|i| bit(&a, i)));
        }

        #[test]
        fn kernels_handle_empty_and_full_slices(len in 0usize..10) {
            let zeros = vec![0u64; len];
            let ones = vec![u64::MAX; len];

            let mut dst = zeros.clone();
            kernels::or_into(&mut dst, &ones);
            prop_assert_eq!(&dst, &ones);
            let live = kernels::and_into(&mut dst, &zeros);
            prop_assert_eq!(&dst, &zeros);
            prop_assert!(!live);
            let mut full = ones.clone();
            let live = kernels::andnot_into(&mut full, &zeros);
            prop_assert_eq!(&full, &ones);
            prop_assert_eq!(live, len > 0);
            prop_assert_eq!(kernels::intersects(&ones, &zeros), false);
            prop_assert_eq!(kernels::intersects(&ones, &ones), len > 0);
            prop_assert_eq!(kernels::popcount(&ones), len * 64);
            prop_assert_eq!(kernels::any(&zeros), false);
        }
    }
}
