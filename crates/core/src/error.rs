//! Error types for NPD-index construction and querying.

use std::fmt;

use disks_roadnet::{DecodeError, NodeId};

/// Errors raised while building or loading an NPD-index.
#[derive(Debug)]
pub enum IndexError {
    /// A shortcut distance overflowed the fragment-graph weight width.
    WeightOverflow { distance: u64 },
    /// Binary decoding of a persisted index failed.
    Decode(DecodeError),
    /// The persisted index does not match the partitioning it is loaded for.
    FragmentMismatch { expected: u32, found: u32 },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::WeightOverflow { distance } => {
                write!(f, "shortcut distance {distance} exceeds the u32 weight width")
            }
            IndexError::Decode(e) => write!(f, "index decode error: {e}"),
            IndexError::FragmentMismatch { expected, found } => {
                write!(f, "index is for fragment {found}, expected {expected}")
            }
            IndexError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Decode(e) => Some(e),
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for IndexError {
    fn from(e: DecodeError) -> Self {
        IndexError::Decode(e)
    }
}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> Self {
        IndexError::Io(e)
    }
}

/// Errors raised at query time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query radius exceeds the index `maxR` (route through a
    /// [`crate::BiLevelIndex`] instead, §5.5).
    RadiusExceedsMaxR { r: u64, max_r: u64 },
    /// A D-function with no terms.
    EmptyQuery,
    /// A `Term::Node` query location that the DL component does not index
    /// (it is neither in this fragment nor an indexed external node under
    /// the configured [`crate::DlScope`]).
    UnindexedQueryLocation(NodeId),
    /// Engine materialization failed (e.g. a shortcut weight overflow) while
    /// serving the query.
    Engine(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::RadiusExceedsMaxR { r, max_r } => {
                write!(f, "query radius {r} exceeds index maxR {max_r}")
            }
            QueryError::EmptyQuery => write!(f, "query has no terms"),
            QueryError::UnindexedQueryLocation(n) => {
                write!(f, "query location {n} is not indexed by the DL component")
            }
            QueryError::Engine(msg) => write!(f, "engine error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}
