//! Error types for NPD-index construction and querying.

use std::fmt;

use bytes::{Buf, BufMut};

use disks_roadnet::codec::{Decode, Encode};
use disks_roadnet::{DecodeError, NodeId};

/// Errors raised while building or loading an NPD-index.
#[derive(Debug)]
pub enum IndexError {
    /// A shortcut distance overflowed the fragment-graph weight width.
    WeightOverflow { distance: u64 },
    /// Binary decoding of a persisted index failed.
    Decode(DecodeError),
    /// The persisted index does not match the partitioning it is loaded for.
    FragmentMismatch { expected: u32, found: u32 },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::WeightOverflow { distance } => {
                write!(f, "shortcut distance {distance} exceeds the u32 weight width")
            }
            IndexError::Decode(e) => write!(f, "index decode error: {e}"),
            IndexError::FragmentMismatch { expected, found } => {
                write!(f, "index is for fragment {found}, expected {expected}")
            }
            IndexError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Decode(e) => Some(e),
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for IndexError {
    fn from(e: DecodeError) -> Self {
        IndexError::Decode(e)
    }
}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> Self {
        IndexError::Io(e)
    }
}

/// Errors raised at query time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query radius exceeds the index `maxR` (route through a
    /// [`crate::BiLevelIndex`] instead, §5.5).
    RadiusExceedsMaxR { r: u64, max_r: u64 },
    /// A D-function with no terms.
    EmptyQuery,
    /// A `Term::Node` query location that the DL component does not index
    /// (it is neither in this fragment nor an indexed external node under
    /// the configured [`crate::DlScope`]).
    UnindexedQueryLocation(NodeId),
    /// Engine materialization failed (e.g. a shortcut weight overflow) while
    /// serving the query.
    Engine(String),
    /// A worker panicked while evaluating the task (caught by the worker
    /// supervisor and shipped back typed). Fragment tasks are stateless, so
    /// the coordinator may retry.
    WorkerPanic(String),
    /// The listed fragments never answered within the configured deadline,
    /// across `attempts` dispatch attempts.
    WorkerTimeout { fragments: Vec<u32>, attempts: u32 },
    /// Admission control shed the query before dispatch: its estimated cost
    /// would push some worker past the configured in-flight budget. The
    /// client should back off for at least `retry_after_millis` (grows
    /// monotonically with the measured pressure at shed time). Shedding
    /// happens coordinator-side, so a shed query costs zero wire bytes.
    Overloaded { retry_after_millis: u64 },
    /// A slot-reference NACK: the worker received an elided plan referencing
    /// global slot ids it has never been taught the `(term, radius)` spec
    /// for (it respawned since the coordinator last sent the full spec).
    /// Retryable — the coordinator falls back to a full-spec re-dispatch,
    /// so correctness never depends on the coordinator's view being fresh.
    SlotUnknown { ids: Vec<u32> },
}

impl QueryError {
    /// Whether re-dispatching the same fragment task can plausibly succeed.
    ///
    /// Fragment tasks are stateless and idempotent, so transient failures
    /// (a panicking or stalled worker) are retryable; semantic rejections
    /// (radius over `maxR`, empty query, unindexed location) are
    /// deterministic and retrying them is futile. `Overloaded` is not
    /// *immediately* retryable — the same submission would be shed again;
    /// the client must wait out `retry_after_millis` first.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            QueryError::WorkerPanic(_)
                | QueryError::WorkerTimeout { .. }
                | QueryError::SlotUnknown { .. }
        )
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::RadiusExceedsMaxR { r, max_r } => {
                write!(f, "query radius {r} exceeds index maxR {max_r}")
            }
            QueryError::EmptyQuery => write!(f, "query has no terms"),
            QueryError::UnindexedQueryLocation(n) => {
                write!(f, "query location {n} is not indexed by the DL component")
            }
            QueryError::Engine(msg) => write!(f, "engine error: {msg}"),
            QueryError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            QueryError::WorkerTimeout { fragments, attempts } => {
                write!(f, "fragments {fragments:?} unresponsive after {attempts} attempts")
            }
            QueryError::Overloaded { retry_after_millis } => {
                write!(f, "cluster overloaded; retry after {retry_after_millis}ms")
            }
            QueryError::SlotUnknown { ids } => {
                write!(f, "worker does not know slot ids {ids:?}; re-send full specs")
            }
        }
    }
}

impl std::error::Error for QueryError {}

// Wire codec for `QueryError` so `Response::Failed` carries the typed error
// end-to-end instead of a display string the coordinator would have to sniff.
impl Encode for QueryError {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            QueryError::RadiusExceedsMaxR { r, max_r } => {
                0u8.encode(buf);
                r.encode(buf);
                max_r.encode(buf);
            }
            QueryError::EmptyQuery => 1u8.encode(buf),
            QueryError::UnindexedQueryLocation(n) => {
                2u8.encode(buf);
                n.encode(buf);
            }
            QueryError::Engine(msg) => {
                3u8.encode(buf);
                msg.encode(buf);
            }
            QueryError::WorkerPanic(msg) => {
                4u8.encode(buf);
                msg.encode(buf);
            }
            QueryError::WorkerTimeout { fragments, attempts } => {
                5u8.encode(buf);
                fragments.encode(buf);
                attempts.encode(buf);
            }
            QueryError::Overloaded { retry_after_millis } => {
                6u8.encode(buf);
                retry_after_millis.encode(buf);
            }
            QueryError::SlotUnknown { ids } => {
                7u8.encode(buf);
                ids.encode(buf);
            }
        }
    }
}
impl Decode for QueryError {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => {
                Ok(QueryError::RadiusExceedsMaxR { r: u64::decode(buf)?, max_r: u64::decode(buf)? })
            }
            1 => Ok(QueryError::EmptyQuery),
            2 => Ok(QueryError::UnindexedQueryLocation(NodeId::decode(buf)?)),
            3 => Ok(QueryError::Engine(String::decode(buf)?)),
            4 => Ok(QueryError::WorkerPanic(String::decode(buf)?)),
            5 => Ok(QueryError::WorkerTimeout {
                fragments: Vec::decode(buf)?,
                attempts: u32::decode(buf)?,
            }),
            6 => Ok(QueryError::Overloaded { retry_after_millis: u64::decode(buf)? }),
            7 => Ok(QueryError::SlotUnknown { ids: Vec::decode(buf)? }),
            tag => Err(DecodeError::BadTag { context: "QueryError", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn query_error_round_trips() {
        let cases = vec![
            QueryError::RadiusExceedsMaxR { r: 77, max_r: 42 },
            QueryError::EmptyQuery,
            QueryError::UnindexedQueryLocation(NodeId(9)),
            QueryError::Engine("overflow".into()),
            QueryError::WorkerPanic("index out of bounds".into()),
            QueryError::WorkerTimeout { fragments: vec![1, 3], attempts: 3 },
            QueryError::Overloaded { retry_after_millis: 12 },
            QueryError::SlotUnknown { ids: vec![0, 7, 31] },
        ];
        for e in cases {
            let mut buf = BytesMut::new();
            e.encode(&mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(QueryError::decode(&mut bytes).unwrap(), e);
            assert!(!bytes.has_remaining(), "full consumption for {e}");
        }
    }

    #[test]
    fn retryability_classification() {
        assert!(QueryError::WorkerPanic("x".into()).is_retryable());
        assert!(QueryError::WorkerTimeout { fragments: vec![0], attempts: 1 }.is_retryable());
        assert!(QueryError::SlotUnknown { ids: vec![4] }.is_retryable());
        assert!(!QueryError::EmptyQuery.is_retryable());
        assert!(!QueryError::RadiusExceedsMaxR { r: 2, max_r: 1 }.is_retryable());
        assert!(!QueryError::Engine("x".into()).is_retryable());
        assert!(!QueryError::Overloaded { retry_after_millis: 5 }.is_retryable());
    }
}
