//! Top-k group keyword queries — an extension answering the paper's open
//! question ("it remains open whether other types of queries can benefit
//! from NPD-index", §8).
//!
//! A [`TopKQuery`] ranks nodes by an aggregate of their distances to each
//! query keyword and returns the best `k`:
//!
//! * [`ScoreCombine::Max`] — `score(A) = maxᵢ d(A, ωᵢ)`: the radius of the
//!   smallest "ball" around `A` touching every keyword (the ranked analogue
//!   of SGKQ: `score(A) ≤ r ⟺ A ∈ ⋂ R(ωᵢ, r)`).
//! * [`ScoreCombine::Sum`] — `score(A) = Σᵢ d(A, ωᵢ)`: total travel cost to
//!   visit one instance of each keyword from `A` (a collective-style cost).
//!
//! The NPD-index machinery applies unchanged: each fragment computes its
//! local per-term **distance tables** with exactly the seeded Dijkstra of
//! Alg. 2 (the coverage computation with distances kept), aggregates, and
//! ships only its local top-k; the coordinator merges k-way. Scores are
//! exact for every node with all term distances ≤ `horizon`, which must be
//! ≤ the index `maxR`; nodes beyond the horizon are not ranked (the same
//! contract the paper's bounded index offers coverage queries).

use bytes::{Buf, BufMut};

use disks_roadnet::codec::{Decode, Encode};
use disks_roadnet::{DecodeError, KeywordId, NodeId, RoadNetwork};

use crate::coverage::CentralizedCoverage;
use crate::dfunc::Term;
use crate::error::QueryError;

/// Distance aggregation across the query keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreCombine {
    /// `maxᵢ d(A, ωᵢ)` — ranked SGKQ.
    Max,
    /// `Σᵢ d(A, ωᵢ)` — collective travel cost.
    Sum,
}

impl ScoreCombine {
    #[inline]
    pub(crate) fn fold(self, acc: u64, d: u64) -> u64 {
        match self {
            ScoreCombine::Max => acc.max(d),
            ScoreCombine::Sum => acc.saturating_add(d),
        }
    }
}

/// A top-k group keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKQuery {
    pub keywords: Vec<KeywordId>,
    pub k: usize,
    /// Per-term distance horizon; must be ≤ the index `maxR`. Nodes with
    /// any term distance beyond the horizon are not ranked.
    pub horizon: u64,
    pub combine: ScoreCombine,
}

impl TopKQuery {
    pub fn new(
        mut keywords: Vec<KeywordId>,
        k: usize,
        horizon: u64,
        combine: ScoreCombine,
    ) -> Self {
        keywords.sort_unstable();
        keywords.dedup();
        TopKQuery { keywords, k, horizon, combine }
    }
}

impl Encode for ScoreCombine {
    fn encode(&self, buf: &mut impl BufMut) {
        let tag: u8 = match self {
            ScoreCombine::Max => 0,
            ScoreCombine::Sum => 1,
        };
        tag.encode(buf);
    }
}
impl Decode for ScoreCombine {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(ScoreCombine::Max),
            1 => Ok(ScoreCombine::Sum),
            tag => Err(DecodeError::BadTag { context: "ScoreCombine", tag }),
        }
    }
}

impl Encode for TopKQuery {
    fn encode(&self, buf: &mut impl BufMut) {
        self.keywords.encode(buf);
        (self.k as u64).encode(buf);
        self.horizon.encode(buf);
        self.combine.encode(buf);
    }
}
impl Decode for TopKQuery {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(TopKQuery {
            keywords: Vec::decode(buf)?,
            k: u64::decode(buf)? as usize,
            horizon: u64::decode(buf)?,
            combine: ScoreCombine::decode(buf)?,
        })
    }
}

/// A ranked result: `(score, node)`, ordered by score then node id (the
/// deterministic tie-break used by both the distributed and centralized
/// paths, so results are comparable bit-for-bit).
pub type Ranked = (u64, NodeId);

/// Merge locally ranked lists into the global top-k.
pub fn merge_topk(mut lists: Vec<Vec<Ranked>>, k: usize) -> Vec<Ranked> {
    let mut all: Vec<Ranked> = lists.drain(..).flatten().collect();
    all.sort_unstable();
    all.dedup(); // fragments are disjoint, but be robust to overlap
    all.truncate(k);
    all
}

/// Centralized ground-truth top-k (whole-graph distance tables).
pub fn centralized_topk(net: &RoadNetwork, q: &TopKQuery) -> Result<Vec<Ranked>, QueryError> {
    if q.keywords.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    let mut eval = CentralizedCoverage::new(net);
    let mut scores: Vec<Option<u64>> = vec![Some(0); net.num_nodes()];
    for &kw in &q.keywords {
        let table = eval.distance_table(Term::Keyword(kw));
        for (i, slot) in scores.iter_mut().enumerate() {
            if let Some(acc) = *slot {
                match table.get(&NodeId(i as u32)) {
                    Some(&d) if d <= q.horizon => *slot = Some(q.combine.fold(acc, d)),
                    _ => *slot = None,
                }
            }
        }
    }
    let mut ranked: Vec<Ranked> = scores
        .into_iter()
        .enumerate()
        .filter_map(|(i, s)| s.map(|score| (score, NodeId(i as u32))))
        .collect();
    ranked.sort_unstable();
    ranked.truncate(q.k);
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disks_roadnet::graph::figure1_network;

    #[test]
    fn centralized_topk_on_figure1() {
        let (net, names) = figure1_network();
        let museum = net.vocab().get("museum").unwrap();
        let school = net.vocab().get("school").unwrap();
        // Max-scores: A: max(0, 4)=4; B: max(2,2)=2; C: max(4,4)=4;
        // D: max(4,0)=4; E: max(1,3)=3.
        let q = TopKQuery::new(vec![museum, school], 3, 100, ScoreCombine::Max);
        let top = centralized_topk(&net, &q).unwrap();
        assert_eq!(top[0], (2, names["B"]));
        assert_eq!(top[1], (3, names["E"]));
        assert_eq!(top[2].0, 4); // three nodes tie at 4; smallest id wins
                                 // Sum-scores: A: 4; B: 4; C: 8; D: 4; E: 4.
        let q = TopKQuery::new(vec![museum, school], 5, 100, ScoreCombine::Sum);
        let top = centralized_topk(&net, &q).unwrap();
        assert_eq!(top[0].0, 4);
        assert_eq!(top.last().unwrap(), &(8, names["C"]));
    }

    #[test]
    fn horizon_excludes_far_nodes() {
        let (net, names) = figure1_network();
        let school = net.vocab().get("school").unwrap();
        // d(·, school): A0 B2 C4 D4 E1. Horizon 2 keeps A, B, E only.
        let q = TopKQuery::new(vec![school], 10, 2, ScoreCombine::Max);
        let top = centralized_topk(&net, &q).unwrap();
        let nodes: Vec<NodeId> = top.iter().map(|&(_, n)| n).collect();
        assert_eq!(nodes, vec![names["A"], names["E"], names["B"]]);
    }

    #[test]
    fn merge_topk_orders_and_truncates() {
        let a = vec![(3u64, NodeId(5)), (7, NodeId(1))];
        let b = vec![(1u64, NodeId(9)), (3, NodeId(2))];
        let merged = merge_topk(vec![a, b], 3);
        assert_eq!(merged, vec![(1, NodeId(9)), (3, NodeId(2)), (3, NodeId(5))]);
    }

    #[test]
    fn empty_keywords_rejected() {
        let (net, _) = figure1_network();
        let q = TopKQuery::new(vec![], 3, 10, ScoreCombine::Max);
        assert!(matches!(centralized_topk(&net, &q), Err(QueryError::EmptyQuery)));
    }

    #[test]
    fn query_codec_round_trip() {
        use bytes::BytesMut;
        let q = TopKQuery::new(vec![KeywordId(3), KeywordId(1)], 7, 99, ScoreCombine::Sum);
        let mut buf = BytesMut::new();
        q.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(TopKQuery::decode(&mut bytes).unwrap(), q);
    }

    #[test]
    fn duplicate_keywords_deduped() {
        let q = TopKQuery::new(
            vec![KeywordId(2), KeywordId(2), KeywordId(1)],
            3,
            10,
            ScoreCombine::Sum,
        );
        assert_eq!(q.keywords, vec![KeywordId(1), KeywordId(2)]);
    }
}
