//! Bitset combine-stage microbench: the word-wise ∪ / ∩ / − kernels and the
//! short-circuit probes (`intersects`, `popcount`) that back the
//! D-function operator chains.
//!
//! These are the per-slot "second step" loops every query pays after its
//! coverages are in hand, serial and parallel alike — the parallel
//! evaluation pool (DESIGN.md §6k) changes who computes coverages, not how
//! they combine, so this is the fixed per-query floor the thread pool
//! amortises the Dijkstra cost against.
//!
//! Run with: `cargo bench -p disks-core --bench bitset_kernels`

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use disks_core::bitset::{kernels, BitSet};

/// Deterministic pseudo-random words (splitmix64) so densities are stable
/// across runs without pulling in an RNG.
fn words(n: usize, seed: u64, keep_every: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|i| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            // Sparse variant: most words zero, mimicking a small coverage
            // inside a large fragment.
            if keep_every > 1 && !(i as u64).is_multiple_of(keep_every) {
                0
            } else {
                z
            }
        })
        .collect()
}

fn bench_word_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset_kernels");
    group.sample_size(20);
    // Fragment sizes in words: 1 Ki words = 64 Ki nodes covers the bench
    // presets; 16 Ki words = 1 Mi nodes is BRI-scale.
    for &nwords in &[1usize << 10, 1 << 14] {
        let a = words(nwords, 0xA11CE, 1);
        let sparse = words(nwords, 0xB0B, 16);
        group.bench_with_input(BenchmarkId::new("or_into", nwords), &nwords, |b, _| {
            let mut dst = a.clone();
            b.iter(|| {
                kernels::or_into(&mut dst, &sparse);
                black_box(dst[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("and_into", nwords), &nwords, |b, _| {
            let mut dst = a.clone();
            b.iter(|| {
                let alive = kernels::and_into(&mut dst, &a);
                black_box(alive)
            });
        });
        group.bench_with_input(BenchmarkId::new("andnot_into", nwords), &nwords, |b, _| {
            let mut dst = a.clone();
            b.iter(|| {
                let alive = kernels::andnot_into(&mut dst, &sparse);
                black_box(alive)
            });
        });
        group.bench_with_input(BenchmarkId::new("intersects", nwords), &nwords, |b, _| {
            b.iter(|| black_box(kernels::intersects(&a, &sparse)));
        });
        group.bench_with_input(BenchmarkId::new("popcount", nwords), &nwords, |b, _| {
            b.iter(|| black_box(kernels::popcount(&a)));
        });
    }
    group.finish();
}

fn bench_bitset_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset_ops");
    group.sample_size(20);
    let nbits = 1usize << 20;
    let mut dense = BitSet::new(nbits);
    let mut sparse = BitSet::new(nbits);
    for i in (0..nbits).step_by(3) {
        dense.insert(i);
    }
    for i in (0..nbits).step_by(97) {
        sparse.insert(i);
    }
    group.bench_with_input(BenchmarkId::new("union_with", nbits), &nbits, |b, _| {
        let mut dst = dense.clone();
        b.iter(|| {
            dst.union_with(&sparse);
            black_box(dst.is_empty())
        });
    });
    group.bench_with_input(BenchmarkId::new("intersect_with", nbits), &nbits, |b, _| {
        let mut dst = dense.clone();
        b.iter(|| black_box(dst.intersect_with(&sparse)));
    });
    group.bench_with_input(BenchmarkId::new("count", nbits), &nbits, |b, _| {
        b.iter(|| black_box(dense.count()));
    });
    group.finish();
}

criterion_group!(bitsets, bench_word_kernels, bench_bitset_ops);
criterion_main!(bitsets);
