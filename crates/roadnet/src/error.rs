//! Error types for the road-network substrate.

use std::fmt;

/// Errors raised while building, loading, or validating a road network.
#[derive(Debug)]
pub enum RoadNetError {
    /// An edge referenced a node id that was never added.
    UnknownNode(u32),
    /// An edge weight of zero (or otherwise invalid) was supplied.
    InvalidWeight { a: u32, b: u32, weight: u32 },
    /// A self-loop `(a, a)` was supplied.
    SelfLoop(u32),
    /// The graph failed a structural validation check.
    Validation(String),
    /// Text or binary input could not be parsed.
    Parse(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for RoadNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadNetError::UnknownNode(n) => write!(f, "unknown node id {n}"),
            RoadNetError::InvalidWeight { a, b, weight } => {
                write!(f, "invalid weight {weight} on edge ({a}, {b}); weights must be positive")
            }
            RoadNetError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
            RoadNetError::Validation(msg) => write!(f, "graph validation failed: {msg}"),
            RoadNetError::Parse(msg) => write!(f, "parse error: {msg}"),
            RoadNetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for RoadNetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RoadNetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RoadNetError {
    fn from(e: std::io::Error) -> Self {
        RoadNetError::Io(e)
    }
}

/// Errors raised while decoding the hand-written binary formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes remained than the decoder needed.
    UnexpectedEof { needed: usize, remaining: usize },
    /// A tag byte did not correspond to any known variant.
    BadTag { context: &'static str, tag: u8 },
    /// A length prefix exceeded a sanity bound.
    LengthOutOfRange { context: &'static str, len: u64 },
    /// Bytes were not valid UTF-8 where a string was expected.
    BadUtf8,
    /// A magic header or version did not match.
    BadHeader { expected: u32, found: u32 },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of input: needed {needed} bytes, {remaining} remain")
            }
            DecodeError::BadTag { context, tag } => {
                write!(f, "invalid tag byte {tag:#04x} while decoding {context}")
            }
            DecodeError::LengthOutOfRange { context, len } => {
                write!(f, "length {len} out of range while decoding {context}")
            }
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in encoded string"),
            DecodeError::BadHeader { expected, found } => {
                write!(
                    f,
                    "bad magic/version header: expected {expected:#010x}, found {found:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}
